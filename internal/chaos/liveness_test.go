package chaos

import (
	"fmt"
	"os"
	"testing"
	"time"

	"ndsm/internal/simtime"
)

// killSchedule is a hand-built schedule that crash-kills a supplier for a
// fixed window, with nothing else going on — the cleanest stage for watching
// the detector work.
func killSchedule(target string, fromTick, ticks int, tickEvery time.Duration) Schedule {
	return Schedule{{
		At:       time.Duration(fromTick) * tickEvery,
		Fault:    FaultCrashSupplier,
		Target:   target,
		Duration: time.Duration(ticks) * tickEvery,
	}}
}

func TestLivenessWorldSuspectsKilledSupplier(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	cfg := ScenarioConfig{
		Seed:      1,
		Ticks:     30,
		TickEvery: tickEvery,
		// Kill the initially bound supplier (s0 has the best advertised
		// reliability, so the consumer starts on it) for 15 ticks.
		Schedule: killSchedule("s0", 5, 15, tickEvery),
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestLivenessDetectorCatchesKill drives the world directly (not through
// RunScenario) to inspect the detector traces tick by tick.
func TestLivenessDetectorCatchesKill(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	vclock := simtime.NewVirtual(time.Unix(0, 0))
	w, err := NewWorld(WorldConfig{
		Seed:      1,
		TickEvery: tickEvery,
		Clock:     vclock,
		Liveness:  true,
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer w.Close() //nolint:errcheck

	engine := NewEngine(vclock)
	w.RegisterInjectors(engine)
	const killAt, killTicks, total = 5, 15, 25
	engine.Load(killSchedule("s0", killAt, killTicks, tickEvery))

	for i := 0; i < total; i++ {
		vclock.Advance(tickEvery)
		if err := engine.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		w.Tick(i)
	}
	if err := engine.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	if w.Health() == nil {
		t.Fatal("liveness world has no monitor")
	}
	sus := w.SuspectedTrace()
	bound := w.BoundTrace()
	if len(sus) != total || len(bound) != total {
		t.Fatalf("trace lengths %d/%d, want %d", len(sus), len(bound), total)
	}

	// The detector must suspect s0 within the suspect-before-violate budget
	// of the kill, and hold the suspicion until the revive.
	detectedAt := -1
	for i := killAt; i < killAt+killTicks && i < total; i++ {
		if sus[i]["s0"] {
			detectedAt = i
			break
		}
	}
	if detectedAt < 0 {
		t.Fatalf("s0 never suspected while dead; trace: %v", sus[killAt:killAt+killTicks])
	}
	if detectedAt > killAt+8 {
		t.Errorf("s0 suspected only at tick %d, budget was tick %d", detectedAt, killAt+8)
	}

	// Once suspected, the binding must have moved off the corpse by the end
	// of the next tick and stayed off until the revive.
	for i := detectedAt + 1; i < killAt+killTicks && i < total; i++ {
		if bound[i] == "s0" {
			t.Errorf("tick %d still bound to suspected dead s0", i)
		}
	}

	// After the revive and fresh heartbeats, suspicion must clear — the
	// detector is allowed to be wrong but not forever.
	end := len(sus) - 1
	if sus[end]["s0"] {
		t.Errorf("s0 still suspected at final tick, %d ticks after revive", end-(killAt+killTicks))
	}
}

// TestLivenessReducesDeadAttempts is the E11 core claim at unit scale: under
// an identical seeded kill schedule, the detector-on world sends strictly
// fewer requests at dead suppliers than the detector-off baseline.
//
// The schedule kills the two best-reliability suppliers permanently
// (Duration 0 reverts only at Finish). Without a detector their hour-long
// leases keep them listed, QoS selection keeps preferring them over the live
// but lower-ranked s2, and single-peer exclusion makes the binding ping-pong
// between the two corpses for the rest of the run. With the detector on, both
// are suspected within a few ticks and the binding settles on s2.
func TestLivenessReducesDeadAttempts(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	const ticks = 40
	schedule := Schedule{
		{At: 5 * tickEvery, Fault: FaultCrashSupplier, Target: "s0"},
		{At: 15 * tickEvery, Fault: FaultCrashSupplier, Target: "s1"},
	}
	run := func(disable bool) *ScenarioResult {
		res, err := RunScenario(ScenarioConfig{
			Seed:            9,
			Ticks:           ticks,
			TickEvery:       tickEvery,
			Schedule:        schedule,
			DisableLiveness: disable,
		})
		if err != nil {
			t.Fatalf("scenario (disable=%v): %v", disable, err)
		}
		return res
	}
	on := run(false)
	off := run(true)
	t.Logf("dead attempts: liveness on=%d, off=%d; ok ticks on=%d off=%d",
		on.DeadAttempts, off.DeadAttempts, on.TicksOK, off.TicksOK)
	if on.DeadAttempts >= off.DeadAttempts {
		t.Errorf("liveness did not reduce dead-peer attempts: on=%d off=%d",
			on.DeadAttempts, off.DeadAttempts)
	}
	for _, v := range on.Violations {
		t.Errorf("liveness-on violation: %s", v)
	}
}

// TestLivenessSoak is the acceptance-gate soak: >=20 seeds of the standard
// scenario with liveness on, every invariant (including
// suspect-before-violate) clean, every violation reproducible by seed.
func TestLivenessSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed soak skipped in short mode")
	}
	report, err := Soak(SoakConfig{
		Scenarios: 20,
		BaseSeed:  101,
		Scenario:  ScenarioConfig{Ticks: 60, Windows: 4},
		// With NDSM_CHAOS_TRACE_DIR set (CI exports it), every scenario runs
		// traced and any reproducing failure seed dumps its full causal
		// timeline there — uploaded as a workflow artifact on failure.
		TraceDir: os.Getenv("NDSM_CHAOS_TRACE_DIR"),
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	clean := 0
	for _, res := range report.Results {
		if len(res.Violations) == 0 {
			clean++
		}
	}
	for _, v := range report.Violations() {
		t.Errorf("soak violation: %s", v)
	}
	t.Logf("liveness soak: %d/%d scenarios clean", clean, len(report.Results))
}

// TestWorldTracesAlign guards the per-tick bookkeeping: every trace the
// invariants consume must have exactly one entry per tick.
func TestWorldTracesAlign(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Seed: 3, Ticks: 20, Windows: 2})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if got := len(res.OKByTick); got != res.Ticks {
		t.Fatalf("OKByTick has %d entries, want %d", got, res.Ticks)
	}
	for i, ok := range res.OKByTick {
		_ = fmt.Sprintf("%d:%v", i, ok) // trace is serializable per tick
	}
}
