package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/slo"
)

// TestAlertLatencyAroundPartition drives an SLO world through one supplier
// partition and checks the alerting plane end to end: the freshness
// objective for the silenced supplier climbs to critical within the bound,
// the transition cuts a flight-recorder bundle, and after the heal the alert
// steps back down to ok through hysteresis.
func TestAlertLatencyAroundPartition(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	vclock := simtime.NewVirtual(time.Unix(0, 0))
	w, err := NewWorld(WorldConfig{
		Seed:      1,
		TickEvery: tickEvery,
		Clock:     vclock,
		SLO:       true,
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer w.Close() //nolint:errcheck

	engine := NewEngine(vclock)
	w.RegisterInjectors(engine)
	const total = 60
	sched := partitionSchedule("s2", 5, 25, tickEvery)
	cutAt := w.TickOf(sched[0].At)
	healTick := w.TickOf(sched[0].At + sched[0].Duration)
	engine.Load(sched)

	for i := 0; i < total; i++ {
		vclock.Advance(tickEvery)
		if err := engine.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		w.Tick(i)
	}
	if err := engine.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	trace := w.AlertTrace()
	if len(trace) != total {
		t.Fatalf("alert trace has %d entries, want %d", len(trace), total)
	}
	key := sloKey(FreshnessObjective, "s2")

	// Before the cut: ok. Within the alert bound of the cut: critical.
	for i := 0; i < cutAt; i++ {
		if trace[i][key] != slo.OK {
			t.Fatalf("s2 freshness %v at tick %d, before the partition", trace[i][key], i)
		}
	}
	const bound = 10
	critAt := -1
	for i := cutAt; i <= cutAt+bound; i++ {
		if trace[i][key] == slo.Critical {
			critAt = i
			break
		}
	}
	if critAt < 0 {
		t.Fatalf("s2 freshness never critical within %d ticks of the cut; trace: %v",
			bound, severityTrace(trace, key, cutAt, cutAt+bound))
	}

	// Critical holds (no flapping) until the heal.
	for i := critAt; i < healTick; i++ {
		if trace[i][key] != slo.Critical {
			t.Fatalf("s2 freshness dropped to %v at tick %d while still partitioned", trace[i][key], i)
		}
	}

	// After the heal the alert decays back to ok — through warning, never
	// skipping straight down — within the window plus hysteresis.
	recoverBy := healTick + sloWindowTicks + 2*sloClearAfter + 4
	okAt := -1
	for i := healTick; i <= recoverBy && i < total; i++ {
		if trace[i][key] == slo.OK {
			okAt = i
			break
		}
	}
	if okAt < 0 {
		t.Fatalf("s2 freshness never recovered to ok by tick %d; trace: %v",
			recoverBy, severityTrace(trace, key, healTick, recoverBy))
	}

	// The critical transition cut exactly the post-mortem bundle wiring
	// promises: trigger names the objective and node, windows carry burns.
	rec := w.FlightRecorder()
	if rec == nil || rec.Len() == 0 {
		t.Fatal("critical transition cut no flight bundle")
	}
	b := rec.Bundles()[0]
	if b.Trigger.Objective != FreshnessObjective || b.Trigger.Node != "s2" {
		t.Fatalf("bundle trigger %+v", b.Trigger)
	}
	if b.Trigger.Windows["burnLong"] < 2 {
		t.Fatalf("bundle burn %v, want >= crit burn 2", b.Trigger.Windows)
	}
	// The bundle caught the aggregator mid-incident: s2 stale, others fresh.
	staleSeen := false
	for _, nf := range b.Telemetry {
		if nf.Node == "s2" && !nf.Fresh {
			staleSeen = true
		}
	}
	if !staleSeen {
		t.Fatalf("bundle telemetry does not show s2 stale: %+v", b.Telemetry)
	}

	// The invariant agrees with the direct reading.
	events := engine.Events()
	if v := (AlertLatency{Bound: bound}).Check(w, events); len(v) != 0 {
		t.Fatalf("alert-latency violations on a detected run: %v", v)
	}
}

// TestAlertLatencyScenarioCrash runs a supplier crash through RunScenario
// with SLO on: every invariant including alert-latency must judge the run
// clean (the crash is detected in time), and the scenario surfaces the alert
// transitions.
func TestAlertLatencyScenarioCrash(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	res, err := RunScenario(ScenarioConfig{
		Seed:      4,
		Ticks:     60,
		TickEvery: tickEvery,
		SLO:       true,
		Schedule: Schedule{{
			At:       8 * tickEvery,
			Fault:    FaultCrashSupplier,
			Target:   "s2",
			Duration: 30 * tickEvery,
		}},
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	sawCritical := false
	for _, tr := range res.Alerts {
		if tr.Objective == FreshnessObjective && tr.Node == "s2" && tr.To == slo.Critical {
			sawCritical = true
		}
	}
	if !sawCritical {
		t.Fatalf("crash produced no critical freshness transition; alerts: %+v", res.Alerts)
	}
}

// TestAlertLatencyFlightDump forces a violating SLO run (an impossible
// 1-tick alert bound) and checks the black box lands on disk next to the
// causal trace, as one parseable bundle document.
func TestAlertLatencyFlightDump(t *testing.T) {
	const tickEvery = 50 * time.Millisecond
	dir := t.TempDir()
	res, err := RunScenario(ScenarioConfig{
		Seed:       5,
		Ticks:      50,
		TickEvery:  tickEvery,
		SLO:        true,
		AlertBound: 1, // unmeetable: staleness marking alone takes ~3 ticks
		Schedule:   partitionSchedule("s2", 5, 30, tickEvery),
		TraceDir:   dir,
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("1-tick alert bound was met; the forced violation vanished")
	}
	if res.FlightFile == "" {
		t.Fatal("violating SLO run dumped no flight file")
	}
	if filepath.Base(res.FlightFile) != "chaos-flight-5.json" {
		t.Fatalf("flight file named %s", res.FlightFile)
	}
	raw, err := os.ReadFile(res.FlightFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bundles []json.RawMessage `json:"bundles"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	if len(doc.Bundles) == 0 {
		t.Fatal("flight dump holds no bundles despite a critical alert")
	}
	if res.TraceFile == "" {
		t.Fatal("violating traced run dumped no causal trace")
	}
}

// TestCalmWorldNoAlerts is the false-positive soak: 20 seeds of a fault-free
// SLO world (overload workload on, so ratio objectives see live traffic)
// must produce zero alert transitions — burn-rate alerting that pages on a
// calm cluster is worse than none.
func TestCalmWorldNoAlerts(t *testing.T) {
	seeds := 20
	ticks := 40
	if testing.Short() {
		seeds, ticks = 3, 25
	}
	report, err := Soak(SoakConfig{
		Scenarios: seeds,
		BaseSeed:  501,
		Scenario: ScenarioConfig{
			Ticks:    ticks,
			SLO:      true,
			Overload: true,
			NoFaults: true,
		},
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	for _, res := range report.Results {
		for _, v := range res.Violations {
			t.Errorf("seed %d violation on a calm world: %s", res.Seed, v)
		}
		for _, tr := range res.Alerts {
			t.Errorf("seed %d false-positive alert: %s/%s %s -> %s (burn %.2f)",
				res.Seed, tr.Objective, tr.Node, tr.From, tr.To, tr.BurnLong)
		}
	}
}

// TestSLOScenarioSmoke is the CI smoke: one seeded SLO+overload scenario
// through a generated fault schedule, judged by the full invariant set
// including alert-latency.
func TestSLOScenarioSmoke(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Seed:     13,
		Ticks:    40,
		Windows:  3,
		SLO:      true,
		Overload: true,
		TraceDir: os.Getenv("NDSM_CHAOS_TRACE_DIR"),
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// severityTrace renders one alert key's severities over [from, to] for
// failure messages.
func severityTrace(trace []map[string]slo.Severity, key string, from, to int) []slo.Severity {
	var out []slo.Severity
	for i := from; i <= to && i < len(trace); i++ {
		if i >= 0 {
			out = append(out, trace[i][key])
		}
	}
	return out
}
