package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/discovery/cluster"
	"ndsm/internal/endpoint"
	"ndsm/internal/flightrec"
	"ndsm/internal/health"
	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/qos"
	"ndsm/internal/recovery"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/slo"
	"ndsm/internal/svcdesc"
	"ndsm/internal/telemetry"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// WorldConfig sizes a chaos world.
type WorldConfig struct {
	// Seed fixes the substrate's loss/jitter RNG.
	Seed int64
	// Suppliers is how many supplier nodes serve the service (default 3).
	Suppliers int
	// Service is the service name suppliers offer (default "svc/chaos").
	Service string
	// TickEvery is the virtual time one workload tick represents; fault
	// schedule offsets are mapped to tick indices through it (default 50ms).
	TickEvery time.Duration
	// Clock is the schedule clock (a *simtime.Virtual in tests). It times the
	// adaptive registry's health probes; the data path runs on wall time so
	// request timeouts fire while the driving goroutine is blocked inside a
	// tick.
	Clock simtime.Clock
	// RequestTimeout is the consumer's real-time benefit deadline per
	// request (default 120ms).
	RequestTimeout time.Duration
	// CollectWindow is the flood discovery reply-collection window
	// (default 25ms, real time).
	CollectWindow time.Duration
	// Dir is the root for per-supplier WAL directories. Empty means a fresh
	// temporary directory, removed on Close.
	Dir string
	// Liveness enables the health layer: supplier leases shrink to a few
	// ticks and are renewed every tick (heartbeats piggybacked on the
	// discovery traffic that already flows), and the consumer runs a
	// failure detector + per-peer circuit breaker on the schedule clock, so
	// killed suppliers are suspected, skipped, and fast-failed instead of
	// re-selected. Off, the world behaves exactly like the detector-less
	// stack (hour-long leases, reactive rebinds only) — the baseline E11
	// measures against.
	Liveness bool
	// Tracer, when set, is shared by every component in the world — radio
	// hops, discovery (central and flood), bindings, nodes, the health
	// layer — so one consumer request yields a single connected causal tree
	// across all simulated nodes. Nil leaves tracing off (process default).
	Tracer *trace.Tracer
	// Telemetry turns on the cluster telemetry plane: the consumer node
	// hosts an aggregator on its existing listener, every live supplier
	// publishes one in-band report per tick (schedule-clock timestamps),
	// and the world records each supplier's end-of-tick freshness verdict —
	// the trace the telemetry-freshness invariant checks around partitions.
	Telemetry bool
	// RegistryCluster, when >= 2, replaces the single registry node with a
	// replicated sharded cluster of that many members ("registry0" ..
	// "registryN-1"): every endpoint resolves through a scatter-gather
	// cluster resolver instead of one central client, the consumer
	// additionally runs a lookup lease cache sized in ticks (TTL one tick,
	// stale window four), and the world drives one anti-entropy round per
	// member per tick. 0 or 1 keeps the classic single-registry world.
	RegistryCluster int
	// ReplicationFactor is the cluster's owner-set size R (default 2;
	// cluster worlds only).
	ReplicationFactor int
	// Overload turns on the priority-lane overload workload: every supplier
	// runs lane-aware admission control (a small MaxInFlight pool with one
	// slot reserved for the control lane), serves a slow bulk topic, and each
	// tick the consumer floods the bound supplier with a burst of bulk-lane
	// requests alongside exactly one control-lane probe. The per-tick
	// control/bulk outcomes are the trace the priority-isolation invariant
	// judges: bulk may shed freely, but no control probe may shed on a tick
	// where bulk traffic was admitted.
	Overload bool
	// SLO turns on the alerting plane (implies Telemetry): the consumer runs
	// a burn-rate engine over the aggregator, self-ingesting one report per
	// tick with its own workload counters (control-probe outcomes, lookup
	// outcomes, bulk admit/shed totals) so ratio objectives have series to
	// judge. Objectives installed: telemetry-freshness over every reporting
	// node, control-deadline-miss in overload worlds, and lookup-availability
	// in cluster worlds. The engine evaluates once per tick; the per-tick
	// severity trace is what the alert-latency invariant checks, and every
	// transition to critical cuts a flight-recorder bundle.
	SLO bool
	// SpanCollector, when set alongside SLO, feeds recent spans into the
	// flight recorder's bundles (RunScenario passes its trace collector
	// through when TraceDir is configured).
	SpanCollector *trace.Collector
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.SLO {
		c.Telemetry = true
	}
	if c.Suppliers <= 0 {
		c.Suppliers = 3
	}
	if c.Service == "" {
		c.Service = "svc/chaos"
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = simtime.Real{}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Millisecond
	}
	if c.CollectWindow <= 0 {
		c.CollectWindow = 25 * time.Millisecond
	}
	if c.RegistryCluster >= 2 && c.ReplicationFactor <= 0 {
		c.ReplicationFactor = cluster.DefaultReplicationFactor
	}
	return c
}

// RegistryID is the centralized registry's node ID in a World.
const RegistryID = "registry"

// ConsumerID is the consumer's node ID in a World.
const ConsumerID = "consumer"

// clientTimeout bounds each centralized-registry exchange so that lost reply
// datagrams fail the call instead of hanging it (real time).
const clientTimeout = 150 * time.Millisecond

// keySetState is the suppliers' recoverable state machine: the set of
// operation keys applied. Its whole point is comparability — after a WAL
// crash-replay cycle the recovered set must still contain every key the
// consumer holds an ack for.
type keySetState struct {
	mu   sync.Mutex
	keys map[string]bool
}

func newKeySetState() *keySetState { return &keySetState{keys: make(map[string]bool)} }

// Apply implements recovery.StateMachine.
func (s *keySetState) Apply(data []byte) error {
	s.mu.Lock()
	s.keys[string(data)] = true
	s.mu.Unlock()
	return nil
}

// Snapshot implements recovery.StateMachine.
func (s *keySetState) Snapshot() ([]byte, error) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.keys))
	for k := range s.keys {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return json.Marshal(keys)
}

// Restore implements recovery.StateMachine.
func (s *keySetState) Restore(snapshot []byte) error {
	var keys []string
	if err := json.Unmarshal(snapshot, &keys); err != nil {
		return err
	}
	s.mu.Lock()
	s.keys = make(map[string]bool, len(keys))
	for _, k := range keys {
		s.keys[k] = true
	}
	s.mu.Unlock()
	return nil
}

// Has reports whether a key was applied.
func (s *keySetState) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keys[key]
}

// worldNode is one full middleware endpoint: radio mux, sim transport,
// flood agent + central client composed adaptively, and the core node.
type worldNode struct {
	mux      *netmux.Mux
	tr       *transport.Sim
	adaptive *discovery.Adaptive
	node     *core.Node
}

// World is the standard chaos scenario: one consumer, one centralized
// registry, and N suppliers of the same service with distinct advertised
// reliabilities (so QoS selection is never a tie), all within radio range on
// a netsim field. Every endpoint runs the real stack — netmux under a sim
// transport, adaptive discovery over a central client plus a flood agent —
// so injected faults exercise the same code paths the experiments measure.
type World struct {
	cfg WorldConfig
	dir string
	// ownDir marks a World-created temp dir (removed on Close).
	ownDir bool

	Net *netsim.Network

	registryMux    *netmux.Mux
	registryTr     *transport.Sim
	registryServer *discovery.Server

	// Cluster-mode registry plane (empty unless WorldConfig.RegistryCluster).
	clusterMembers []string
	clusterNodes   []*cluster.Node
	clusterMuxes   []*netmux.Mux
	clusterTrs     []*transport.Sim
	clusterProbe   discovery.Resolver // consumer's cached cluster view

	nodes    map[string]*worldNode // consumer + suppliers
	binding  *core.Binding
	probe    discovery.Resolver // the consumer's registry view, for lookup probes
	supplier []string           // supplier IDs in creation order
	health   *health.Monitor    // consumer's liveness monitor (nil unless Liveness)

	// Telemetry plane (nil/empty unless WorldConfig.Telemetry).
	agg        *telemetry.Aggregator
	publishers map[string]*telemetry.Publisher
	pubCallers map[string]*endpoint.Caller

	// Overload plane (nil/empty unless WorldConfig.Overload): per-supplier
	// bulk and control callers owned by the consumer, plus each supplier's
	// wide-event recorder — the server-side request log the tail-capture
	// invariant audits against the consumer's observed sheds.
	overBulk map[string]*endpoint.Caller
	overCtl  map[string]*endpoint.Caller
	reqlogs  map[string]*reqlog.Recorder

	// SLO plane (nil unless WorldConfig.SLO).
	sloEngine *slo.Engine
	flight    *flightrec.Recorder
	sloSeq    uint64

	mu            sync.Mutex
	managers      map[string]*recovery.Manager
	states        map[string]*keySetState
	dead          map[string]bool // suppliers currently crash-killed
	deadRegistry  map[string]bool // cluster members currently crash-killed
	tickOK        []bool
	lookupOK      []bool
	clusterOK     []bool            // per-tick cached cluster-resolver probe outcomes
	freshness     []map[string]bool // per-tick aggregator freshness per supplier
	preBound      []string          // peer the binding pointed at entering each tick
	bound         []string          // peer the binding pointed at leaving each tick
	suspected     []map[string]bool // per-tick detector verdict per supplier
	openCircuits  []map[string]bool // per-tick breaker-open flag per supplier
	deadAttempts  int64
	acked         []string
	ackedBy       map[string][]string
	walViolations []string
	ctlOKTrace    []bool                    // per-tick control probe success (overload worlds)
	ctlShedTrace  []bool                    // per-tick control probe shed verdict
	bulkAdmitTick []int                     // per-tick bulk requests admitted and served
	bulkShedTick  []int                     // per-tick bulk requests shed
	alertTrace    []map[string]slo.Severity // per-tick severity per "objective/node" (SLO worlds)
	alertTrans    []slo.Transition          // every alert transition over the run (SLO worlds)
}

// muxDatagram presents one netmux protocol channel as the sim transport's
// DatagramService, so the transport and the flood discovery agent share the
// node's single radio.
type muxDatagram struct{ mux *netmux.Mux }

func (m muxDatagram) Send(from, to netsim.NodeID, data []byte) error {
	return m.mux.Network().Send(from, to, data)
}

func (m muxDatagram) Recv(id netsim.NodeID) (<-chan netsim.Packet, error) {
	if id != m.mux.ID() {
		return nil, fmt.Errorf("chaos: mux for %s asked to receive for %s", m.mux.ID(), id)
	}
	return m.mux.Channel(transport.ProtoSim), nil
}

// NewWorld builds and starts the scenario world.
func NewWorld(cfg WorldConfig) (*World, error) {
	cfg = cfg.withDefaults()
	w := &World{
		cfg:          cfg,
		dir:          cfg.Dir,
		nodes:        make(map[string]*worldNode),
		managers:     make(map[string]*recovery.Manager),
		states:       make(map[string]*keySetState),
		dead:         make(map[string]bool),
		deadRegistry: make(map[string]bool),
		ackedBy:      make(map[string][]string),
		reqlogs:      make(map[string]*reqlog.Recorder),
	}
	if w.dir == "" {
		dir, err := os.MkdirTemp("", "ndsm-chaos-*")
		if err != nil {
			return nil, fmt.Errorf("chaos: temp dir: %w", err)
		}
		w.dir = dir
		w.ownDir = true
	}
	if err := w.build(); err != nil {
		_ = w.Close()
		return nil, err
	}
	return w, nil
}

func (w *World) build() error {
	cfg := w.cfg
	// The radio runs on wall time (latency spikes are real delays) while the
	// fault schedule runs on cfg.Clock; energy is unlimited so the only
	// deaths are the injected ones.
	w.Net = netsim.New(netsim.Config{
		Range:     500,
		InboxSize: 1024,
		Unlimited: true,
		Seed:      cfg.Seed,
		Tracer:    cfg.Tracer,
	})

	if cfg.RegistryCluster >= 2 {
		// Replicated sharded registry: N members, each a full cluster node
		// (shard table + gossip) on its own radio. Anti-entropy is driven
		// synchronously by the world — one SyncNow per live member per tick —
		// so gossip progress is deterministic against the fault schedule.
		for i := 0; i < cfg.RegistryCluster; i++ {
			w.clusterMembers = append(w.clusterMembers, fmt.Sprintf("registry%d", i))
		}
		for i, id := range w.clusterMembers {
			if err := w.Net.AddNode(netsim.NodeID(id), netsim.Position{X: float64(-10 * (i + 1)), Y: 10}); err != nil {
				return err
			}
			mux, err := netmux.New(w.Net, netsim.NodeID(id))
			if err != nil {
				return err
			}
			w.clusterMuxes = append(w.clusterMuxes, mux)
			tr, err := transport.NewSim(muxDatagram{mux}, netsim.NodeID(id), nil)
			if err != nil {
				return err
			}
			w.clusterTrs = append(w.clusterTrs, tr)
			l, err := tr.Listen(id)
			if err != nil {
				return err
			}
			node, err := cluster.NewNode(tr, l, cluster.NodeOptions{
				Self:              id,
				Members:           w.clusterMembers,
				ReplicationFactor: cfg.ReplicationFactor,
				// Lease clocks run on the schedule clock, like the classic
				// store; gossip exchanges are data-path traffic and time out
				// in wall time like every registry call.
				Clock:         cfg.Clock,
				DefaultTTL:    time.Hour,
				GossipTimeout: clientTimeout,
				Tracer:        cfg.Tracer,
			})
			if err != nil {
				return err
			}
			w.clusterNodes = append(w.clusterNodes, node)
		}
	} else {
		// Registry node: mux -> sim transport -> store server.
		if err := w.Net.AddNode(RegistryID, netsim.Position{X: 0, Y: 10}); err != nil {
			return err
		}
		mux, err := netmux.New(w.Net, RegistryID)
		if err != nil {
			return err
		}
		w.registryMux = mux
		tr, err := transport.NewSim(muxDatagram{mux}, RegistryID, nil)
		if err != nil {
			return err
		}
		w.registryTr = tr
		l, err := tr.Listen(RegistryID)
		if err != nil {
			return err
		}
		// The store runs on the schedule clock so short liveness leases expire in
		// virtual time, in lockstep with the fault schedule. The hour default
		// keeps detector-less worlds lease-stable, exactly as before.
		w.registryServer = discovery.NewServer(discovery.NewStore(cfg.Clock, time.Hour), l)
		w.registryServer.SetTracer(cfg.Tracer)
	}

	// The liveness layer is the consumer's: heartbeats arrive through its
	// lookup results (lease renewals the suppliers push every tick), timed on
	// the schedule clock. Thresholds are sized in ticks: a killed supplier's
	// lease (2.5 ticks) outlives at most two renewal gaps, so its last
	// observed heartbeat is at most ~1.5 ticks after the kill, and the
	// fixed-timeout fallback (3.5 ticks) turns the ensuing silence into
	// suspicion by roughly five ticks — inside the suspect-before-violate
	// bound with margin.
	leaseTTL := time.Hour
	if cfg.Liveness {
		leaseTTL = 5 * cfg.TickEvery / 2
		w.health = health.NewMonitor(health.Options{
			Clock:            cfg.Clock,
			WindowSize:       16,
			MinSamples:       3,
			PhiThreshold:     3,
			FallbackTimeout:  7 * cfg.TickEvery / 2,
			FailureThreshold: 2,
			OpenTimeout:      4 * cfg.TickEvery,
			HalfOpenProbes:   1,
			Name:             "chaos.health",
			Tracer:           cfg.Tracer,
		})
	}

	// Consumer and suppliers all run the full adaptive stack.
	mkEndpoint := func(id string, x float64, h *health.Monitor) (*worldNode, error) {
		if err := w.Net.AddNode(netsim.NodeID(id), netsim.Position{X: x, Y: 0}); err != nil {
			return nil, err
		}
		mux, err := netmux.New(w.Net, netsim.NodeID(id))
		if err != nil {
			return nil, err
		}
		tr, err := transport.NewSim(muxDatagram{mux}, netsim.NodeID(id), nil)
		if err != nil {
			mux.Close()
			return nil, err
		}
		agent := discovery.NewAgent(mux, discovery.AgentConfig{
			QueryTTL:      2,
			CollectWindow: cfg.CollectWindow,
			MaxResults:    cfg.Suppliers,
		})
		agent.SetTracer(cfg.Tracer)
		var central discovery.Resolver
		if len(w.clusterMembers) > 0 {
			cres, err := cluster.NewResolver(tr, cluster.ResolverOptions{
				Members:           w.clusterMembers,
				ReplicationFactor: cfg.ReplicationFactor,
			})
			if err != nil {
				mux.Close()
				return nil, err
			}
			cres.SetCallTimeout(clientTimeout, nil)
			cres.SetTracer(cfg.Tracer)
			// The lease cache sits on the consumer's lookup path: one tick
			// of freshness, four of stale-serve-while-revalidate. Suspicion
			// invalidations (forwarded down the watched -> adaptive ->
			// cached stack) keep a suspected corpse from riding out the
			// stale window.
			cached := discovery.NewCached(cres, discovery.CacheOptions{
				Clock:    cfg.Clock,
				TTL:      cfg.TickEvery,
				StaleFor: 4 * cfg.TickEvery,
			})
			if id == ConsumerID {
				w.clusterProbe = cached
			}
			central = cached
		} else {
			client := discovery.NewClient(tr, RegistryID)
			client.SetCallTimeout(clientTimeout, nil)
			client.SetTracer(cfg.Tracer)
			central = client
		}
		adaptive := discovery.NewAdaptive(central, agent,
			func() int { return w.Net.Density(netsim.NodeID(id)) },
			discovery.DensityPolicy(1), cfg.Clock)
		nodeCfg := core.Config{Name: id, Transport: tr, Registry: adaptive, Health: h, Tracer: cfg.Tracer}
		if cfg.Overload && id != ConsumerID {
			// Lane-aware admission on every supplier: a tiny pool, one slot
			// reserved for the control lane, a short benefit-aware queue. The
			// per-tick bulk burst is sized to drown the shared slots, so
			// isolation — not raw capacity — is what keeps control probes on
			// time. Expiry/benefit decisions run on wall time, like the data
			// path the deadlines belong to.
			nodeCfg.MaxInFlight = overloadMaxInFlight
			nodeCfg.Lanes = &endpoint.LaneConfig{
				Quota:      map[endpoint.Lane]int{endpoint.LaneControl: 1},
				QueueDepth: overloadQueueDepth,
				Clock:      simtime.Real{},
			}
			// Every overloaded supplier keeps a wide-event recorder sized so
			// the tail ring outlives the run: at most
			// ticks*(overloadBulkBurst+1) sheds can ever occur, far under the
			// ring's 3/4 share of the capacity, so "shed but evicted" cannot
			// fake a tail-capture violation. Healthy traffic (workload writes,
			// telemetry publishes) is sampled hard — exemplars are the point.
			rl := reqlog.New(reqlog.Options{
				Capacity:    8192,
				SampleEvery: 256,
				Registry:    obs.NewRegistry(),
			})
			nodeCfg.ReqLog = rl
			w.reqlogs[id] = rl
		}
		node, err := core.NewNode(nodeCfg)
		if err != nil {
			_ = adaptive.Close()
			_ = tr.Close()
			mux.Close()
			return nil, err
		}
		wn := &worldNode{mux: mux, tr: tr, adaptive: adaptive, node: node}
		w.nodes[id] = wn
		return wn, nil
	}

	for i := 0; i < cfg.Suppliers; i++ {
		id := fmt.Sprintf("s%d", i)
		wn, err := mkEndpoint(id, float64(10+5*i), nil)
		if err != nil {
			return err
		}
		state := newKeySetState()
		mgr, err := recovery.NewManager(filepath.Join(w.dir, id), state, recovery.WALOptions{})
		if err != nil {
			return err
		}
		w.managers[id] = mgr
		w.states[id] = state
		w.supplier = append(w.supplier, id)

		sid := id
		desc := &svcdesc.Description{
			Name: cfg.Service,
			// Distinct reliabilities keep QoS selection tie-free, which keeps
			// rebind decisions — and therefore invariant verdicts —
			// deterministic across runs.
			Reliability: 0.90 - 0.02*float64(i),
			PowerLevel:  1,
			TTL:         leaseTTL,
		}
		handler := func(payload []byte) ([]byte, error) {
			m := w.manager(sid)
			if m == nil {
				return nil, errors.New("chaos: supplier storage offline")
			}
			if _, err := m.Log(string(payload), payload); err != nil {
				return nil, err
			}
			// The ack names the supplier so the consumer can attribute it.
			return []byte(sid), nil
		}
		if err := wn.node.Serve(desc, handler); err != nil {
			return err
		}
		if cfg.Overload {
			// The bulk topic simulates a slow background transfer: each call
			// parks an admission slot for a few milliseconds of wall time, so
			// a burst of them saturates the shared pool. The control topic
			// answers immediately — a control probe only misses if admission
			// sheds or the network eats it.
			wn.node.HandleTopic(BulkTopic, func(req *wire.Message) (*wire.Message, error) {
				time.Sleep(overloadBulkWork)
				return &wire.Message{Kind: wire.KindReply, Payload: []byte(sid)}, nil
			})
			wn.node.HandleTopic(CtlTopic, func(req *wire.Message) (*wire.Message, error) {
				return &wire.Message{Kind: wire.KindReply, Payload: []byte(sid)}, nil
			})
		}
	}

	consumer, err := mkEndpoint(ConsumerID, 5, w.health)
	if err != nil {
		return err
	}
	// Probe through the node's registry view: with liveness on it is the
	// health-watched adaptive, so every per-tick probe doubles as the
	// detector's heartbeat source.
	w.probe = consumer.node.Registry()
	spec := &qos.Spec{
		Query: svcdesc.Query{Name: cfg.Service},
		Benefit: qos.Benefit{
			FullUntil: cfg.RequestTimeout / 2,
			ZeroAfter: cfg.RequestTimeout,
		},
	}
	binding, err := consumer.node.Bind(spec, core.BindOptions{})
	if err != nil {
		return fmt.Errorf("chaos: bind: %w", err)
	}
	w.binding = binding

	if cfg.Telemetry {
		if err := w.buildTelemetry(consumer); err != nil {
			return err
		}
	}
	if cfg.SLO {
		if err := w.buildSLO(); err != nil {
			return err
		}
	}
	if cfg.Overload {
		// Per-supplier caller pairs, classified once at construction the way
		// a real control plane and a real bulk pipeline would be: every call
		// through them carries the lane in-band.
		w.overBulk = make(map[string]*endpoint.Caller, len(w.supplier))
		w.overCtl = make(map[string]*endpoint.Caller, len(w.supplier))
		for _, id := range w.supplier {
			bc, err := endpoint.NewCaller(consumer.tr, id, endpoint.CallerOptions{
				Redial: true, Lane: endpoint.LaneBulk,
			})
			if err != nil {
				return fmt.Errorf("chaos: overload bulk caller %s: %w", id, err)
			}
			w.overBulk[id] = bc
			cc, err := endpoint.NewCaller(consumer.tr, id, endpoint.CallerOptions{
				Redial: true, Lane: endpoint.LaneControl,
			})
			if err != nil {
				return fmt.Errorf("chaos: overload control caller %s: %w", id, err)
			}
			w.overCtl[id] = cc
		}
	}
	return nil
}

// Overload workload sizing: the per-tick bulk burst (overloadBulkBurst)
// must exceed the shared admission slots plus the bulk queue
// (overloadMaxInFlight - 1 reserved + overloadQueueDepth) so every tick
// genuinely sheds bulk, and overloadBulkWork must be long enough that the
// burst still occupies the pool when the control probe lands.
const (
	// BulkTopic is the overload world's slow background-transfer topic.
	BulkTopic = "chaos/bulk"
	// CtlTopic is the overload world's fast control-probe topic.
	CtlTopic = "chaos/ctl"

	overloadMaxInFlight = 4
	overloadQueueDepth  = 2
	overloadBulkBurst   = 10
	overloadBulkWork    = 5 * time.Millisecond
	overloadTimeout     = 100 * time.Millisecond
)

// publishTimeout bounds each in-band telemetry send (real time, like the
// rest of the data path): a partitioned supplier's report burns at most this
// long before the tick moves on.
const publishTimeout = 100 * time.Millisecond

// buildTelemetry hosts the aggregator on the consumer's existing listener
// and gives every supplier an in-band publisher: reports are requests on
// telemetry.Topic over the same sim transport the workload uses. Staleness
// is sized in ticks (2.5×TickEvery ≈ two missed publishes), on the schedule
// clock, so freshness verdicts are deterministic in virtual time.
func (w *World) buildTelemetry(consumer *worldNode) error {
	w.agg = telemetry.NewAggregator(telemetry.AggregatorOptions{
		Clock:      w.cfg.Clock,
		StaleAfter: 5 * w.cfg.TickEvery / 2,
	})
	consumer.node.HandleTopic(telemetry.Topic, w.agg.Handler())
	w.publishers = make(map[string]*telemetry.Publisher, len(w.supplier))
	w.pubCallers = make(map[string]*endpoint.Caller, len(w.supplier))
	for _, id := range w.supplier {
		wn := w.nodes[id]
		caller, err := endpoint.NewCaller(wn.tr, ConsumerID, endpoint.CallerOptions{Redial: true})
		if err != nil {
			return fmt.Errorf("chaos: telemetry caller %s: %w", id, err)
		}
		w.pubCallers[id] = caller
		pub, err := telemetry.NewPublisher(telemetry.PublisherOptions{
			Node: id,
			// Each supplier reports its own (empty, isolated) registry:
			// the plane's freshness signal is what the chaos invariant
			// exercises, and tiny reports keep partition timeouts cheap.
			Registry: obs.NewRegistry(),
			Clock:    w.cfg.Clock,
			Send:     telemetry.CallerSend(caller, id, ConsumerID, publishTimeout),
		})
		if err != nil {
			return fmt.Errorf("chaos: telemetry publisher %s: %w", id, err)
		}
		w.publishers[id] = pub
	}
	return nil
}

// manager returns the supplier's current recovery manager.
func (w *World) manager(id string) *recovery.Manager {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.managers[id]
}

// SupplierIDs lists the supplier node IDs.
func (w *World) SupplierIDs() []string { return append([]string(nil), w.supplier...) }

// Binding exposes the consumer's binding (rebind counters etc.).
func (w *World) Binding() *core.Binding { return w.binding }

// TickEvery returns the virtual duration of one tick.
func (w *World) TickEvery() time.Duration { return w.cfg.TickEvery }

// TickOf maps a schedule offset to the index of the first tick that runs
// with the action applied (the driver advances the clock and steps the
// engine before each tick).
func (w *World) TickOf(at time.Duration) int {
	if at <= 0 {
		return 0
	}
	n := (int64(at) + int64(w.cfg.TickEvery) - 1) / int64(w.cfg.TickEvery)
	return int(n) - 1
}

// Tick runs one synchronous workload step: lease renewals from every live
// supplier (liveness worlds only — the heartbeat substrate), a consumer
// request (ack recorded on success, attributed to the answering supplier),
// and one discovery probe through the consumer's registry view.
func (w *World) Tick(i int) {
	if w.cfg.Liveness {
		w.renewLeases()
	}
	if len(w.clusterNodes) > 0 {
		w.syncCluster()
	}
	if w.agg != nil {
		w.publishTelemetry()
	}

	// The peer the binding points at entering the tick, and whether the
	// liveness layer would divert a request to it. Sampling Suspect here is
	// exact, not racy: the schedule clock only advances between ticks, so the
	// binding's own pre-request Suspect call sees the same verdict.
	pre := w.binding.Peer()
	preSuspected := w.health != nil && pre != "" && w.health.Suspect(pre)
	w.mu.Lock()
	preDead := w.dead[pre]
	w.mu.Unlock()

	key := fmt.Sprintf("op-%06d", i)
	out, err := w.binding.Request([]byte(key))
	ok := err == nil

	descs, lerr := w.probe.Lookup(&svcdesc.Query{Name: w.cfg.Service})
	found := lerr == nil && len(descs) > 0

	// In cluster worlds, also probe the cached cluster resolver directly
	// (no flood fallback): the trace the cluster-lookup-availability
	// invariant judges, and the load that exercises the lease cache.
	clusterFound := false
	if w.clusterProbe != nil {
		cdescs, cerr := w.clusterProbe.Lookup(&svcdesc.Query{Name: w.cfg.Service})
		clusterFound = cerr == nil && len(cdescs) > 0
	}

	// Overload workload: a bulk burst plus one control probe at the bound
	// supplier, after the tick's regular request so the two never contend.
	var ctlIssued, ctlOK, ctlShed bool
	var bulkAdm, bulkShed int
	if w.overBulk != nil {
		ctlIssued, ctlOK, ctlShed, bulkAdm, bulkShed = w.overloadStep(w.binding.Peer())
	}

	post := w.binding.Peer()
	var sus, open map[string]bool
	if w.health != nil {
		sus = make(map[string]bool, len(w.supplier))
		open = make(map[string]bool, len(w.supplier))
		for _, id := range w.supplier {
			sus[id] = w.health.Suspect(id)
			open[id] = w.health.State(id) == health.Open
		}
	}
	var fresh map[string]bool
	if w.agg != nil {
		fresh = make(map[string]bool, len(w.supplier))
		for _, id := range w.supplier {
			fresh[id] = w.agg.Fresh(id)
		}
	}

	w.mu.Lock()
	w.tickOK = append(w.tickOK, ok)
	w.lookupOK = append(w.lookupOK, found)
	if w.clusterProbe != nil {
		w.clusterOK = append(w.clusterOK, clusterFound)
	}
	w.freshness = append(w.freshness, fresh)
	w.preBound = append(w.preBound, pre)
	w.bound = append(w.bound, post)
	w.suspected = append(w.suspected, sus)
	w.openCircuits = append(w.openCircuits, open)
	if preDead && !preSuspected {
		// The workload aimed this tick's request at a dead supplier and the
		// liveness layer (if any) had not yet diverted it: a wasted attempt.
		w.deadAttempts++
	}
	if ok {
		w.acked = append(w.acked, key)
		by := string(out)
		w.ackedBy[by] = append(w.ackedBy[by], key)
	}
	if w.overBulk != nil {
		w.ctlOKTrace = append(w.ctlOKTrace, ctlOK)
		w.ctlShedTrace = append(w.ctlShedTrace, ctlShed)
		w.bulkAdmitTick = append(w.bulkAdmitTick, bulkAdm)
		w.bulkShedTick = append(w.bulkShedTick, bulkShed)
	}
	w.mu.Unlock()

	if w.sloEngine != nil {
		lookupVerdict := found
		if w.clusterProbe != nil {
			// Cluster worlds judge availability on the cached cluster path —
			// the mechanism under test — not the flood-backed full view.
			lookupVerdict = clusterFound
		}
		w.sloStep(tickCounters{
			ctlIssued: ctlIssued, ctlOK: ctlOK,
			lookupOK: lookupVerdict,
			bulkAdm:  bulkAdm, bulkShed: bulkShed,
		})
	}
}

// overloadStep drives one tick of the overload workload at target: a burst
// of overloadBulkBurst bulk-lane futures pipelined first, then exactly one
// control-lane probe while the burst still occupies the pool. Outcomes are
// classified client-side: a shed is the server's deliberate rejection; any
// other failure (radio loss, partition timeout, dead supplier) counts as
// neither admitted nor shed, so network faults cannot fake an isolation
// violation. Skipped (issued false, all zeros) when the binding points
// nowhere or at a crash-killed supplier — a skipped probe is not a deadline
// miss, so the control SLO only burns on genuine admission or network
// failures.
func (w *World) overloadStep(target string) (issued, ctlOK, ctlShed bool, admitted, shed int) {
	if target == "" {
		return
	}
	w.mu.Lock()
	deadNow := w.dead[target]
	w.mu.Unlock()
	if deadNow {
		return
	}
	bulk, ctl := w.overBulk[target], w.overCtl[target]
	if bulk == nil || ctl == nil {
		return
	}
	issued = true
	futs := make([]*endpoint.Future, 0, overloadBulkBurst)
	for i := 0; i < overloadBulkBurst; i++ {
		futs = append(futs, bulk.Go(&endpoint.Call{Topic: BulkTopic, Timeout: overloadTimeout}))
	}
	_, cerr := ctl.Do(&endpoint.Call{Topic: CtlTopic, Timeout: overloadTimeout})
	ctlOK = cerr == nil
	ctlShed = endpoint.IsShed(cerr)
	for _, f := range futs {
		_, err := f.Wait()
		switch {
		case err == nil:
			admitted++
		case endpoint.IsShed(err):
			shed++
		}
	}
	return
}

// ControlOKTrace returns, per tick, whether the overload world's control
// probe completed (empty unless WorldConfig.Overload).
func (w *World) ControlOKTrace() []bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]bool(nil), w.ctlOKTrace...)
}

// ControlShedTrace returns, per tick, whether the control probe was shed by
// the supplier's admission control (empty unless WorldConfig.Overload).
func (w *World) ControlShedTrace() []bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]bool(nil), w.ctlShedTrace...)
}

// BulkAdmitTrace returns, per tick, how many bulk-burst requests were
// admitted and served (empty unless WorldConfig.Overload).
func (w *World) BulkAdmitTrace() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int(nil), w.bulkAdmitTick...)
}

// BulkShedTrace returns, per tick, how many bulk-burst requests the
// supplier shed (empty unless WorldConfig.Overload).
func (w *World) BulkShedTrace() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int(nil), w.bulkShedTick...)
}

// ReqLogs returns each supplier's wide-event recorder (empty unless
// WorldConfig.Overload). Recorders stay readable after Close — the rings are
// plain memory — so invariants and artifact dumps run against the finished
// world.
func (w *World) ReqLogs() map[string]*reqlog.Recorder {
	out := make(map[string]*reqlog.Recorder, len(w.reqlogs))
	for id, rl := range w.reqlogs {
		out[id] = rl
	}
	return out
}

// ShedRecords returns every shed wide event retained across all supplier
// recorders — the server-side half of the tail-capture audit, and the body
// of the chaos-tail artifact a violating seed dumps.
func (w *World) ShedRecords() map[string][]reqlog.Record {
	out := make(map[string][]reqlog.Record)
	for id, rl := range w.reqlogs {
		if recs := rl.Snapshot(reqlog.Filter{Outcome: reqlog.OutcomeShed}); len(recs) > 0 {
			out[id] = recs
		}
	}
	return out
}

// renewLeases re-registers every live supplier's services concurrently,
// refreshing their short liveness leases. A crashed supplier's process cannot
// renew — lease expiry turns that silence into missing lookup entries, which
// the consumer's detector turns into suspicion.
func (w *World) renewLeases() {
	var wg sync.WaitGroup
	for _, id := range w.supplier {
		w.mu.Lock()
		deadNow := w.dead[id]
		w.mu.Unlock()
		if deadNow {
			continue
		}
		wn := w.nodes[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = wn.node.RenewLeases()
		}()
	}
	wg.Wait()
}

// syncCluster drives one anti-entropy round per live registry member
// (round-robin peer choice inside each member). Dead members neither
// initiate nor matter as targets: a round aimed at a corpse times out, is
// counted as a gossip error, and the member moves on next tick.
func (w *World) syncCluster() {
	for i, node := range w.clusterNodes {
		w.mu.Lock()
		deadNow := w.deadRegistry[w.clusterMembers[i]]
		w.mu.Unlock()
		if deadNow {
			continue
		}
		_ = node.SyncNow()
	}
}

// SettleCluster runs full-mesh anti-entropy rounds until quiescent —
// invariant checkers call it after the engine's reverts revived every
// member, so replication verdicts judge the converged steady state, not
// gossip still in flight.
func (w *World) SettleCluster() {
	for round := 0; round < 4; round++ {
		for _, node := range w.clusterNodes {
			for _, peer := range w.clusterMembers {
				if peer != node.Self() {
					_ = node.SyncWith(peer)
				}
			}
		}
	}
}

// ClusterMembers lists the registry cluster member IDs (empty for classic
// single-registry worlds).
func (w *World) ClusterMembers() []string { return append([]string(nil), w.clusterMembers...) }

// ClusterNodes exposes the cluster members (invariant checkers introspect
// replication through their tables).
func (w *World) ClusterNodes() []*cluster.Node {
	return append([]*cluster.Node(nil), w.clusterNodes...)
}

// ReplicationFactor returns the cluster's owner-set size (0 for classic
// worlds).
func (w *World) ReplicationFactor() int {
	if len(w.clusterMembers) == 0 {
		return 0
	}
	return w.cfg.ReplicationFactor
}

// ClusterLookupOK returns the per-tick cached cluster-resolver probe
// outcomes (empty for classic worlds).
func (w *World) ClusterLookupOK() []bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]bool(nil), w.clusterOK...)
}

// publishTelemetry ships one report from every live supplier, concurrently
// (a partitioned supplier burns its publishTimeout without stalling the
// others). Crash-killed suppliers stay silent — their process is gone, which
// is exactly the silence staleness marking exists to surface.
func (w *World) publishTelemetry() {
	var wg sync.WaitGroup
	for _, id := range w.supplier {
		w.mu.Lock()
		deadNow := w.dead[id]
		w.mu.Unlock()
		if deadNow {
			continue
		}
		pub := w.publishers[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = pub.Publish()
		}()
	}
	wg.Wait()
}

func (w *World) setDead(id string, dead bool) {
	w.mu.Lock()
	w.dead[id] = dead
	w.mu.Unlock()
}

// TickOK returns the per-tick request outcomes.
func (w *World) TickOK() []bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]bool(nil), w.tickOK...)
}

// LookupOK returns the per-tick discovery probe outcomes.
func (w *World) LookupOK() []bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]bool(nil), w.lookupOK...)
}

// Health returns the consumer's liveness monitor (nil unless the world was
// built with Liveness).
func (w *World) Health() *health.Monitor { return w.health }

// Aggregator returns the consumer-hosted telemetry aggregator (nil unless
// the world was built with Telemetry).
func (w *World) Aggregator() *telemetry.Aggregator { return w.agg }

// FreshTrace returns, per tick, the aggregator's end-of-tick freshness
// verdict per supplier (nil entries when the world runs without Telemetry).
func (w *World) FreshTrace() []map[string]bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]map[string]bool(nil), w.freshness...)
}

// DeadAttempts counts ticks whose request was aimed at a crash-killed
// supplier without the liveness layer having diverted it first — the waste
// metric experiment E11 compares across detector-on and detector-off runs.
func (w *World) DeadAttempts() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.deadAttempts
}

// AttemptedTrace returns, per tick, the supplier the binding pointed at
// entering the tick (before any proactive or reactive rebinds).
func (w *World) AttemptedTrace() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.preBound...)
}

// BoundTrace returns, per tick, the supplier the binding pointed at leaving
// the tick (after any rebinds the tick triggered).
func (w *World) BoundTrace() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.bound...)
}

// SuspectedTrace returns, per tick, the detector's end-of-tick verdict per
// supplier (nil entries when the world runs without liveness).
func (w *World) SuspectedTrace() []map[string]bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]map[string]bool(nil), w.suspected...)
}

// OpenCircuits returns, per tick, which suppliers' breakers were open at the
// end of the tick (nil entries when the world runs without liveness).
func (w *World) OpenCircuits() []map[string]bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]map[string]bool(nil), w.openCircuits...)
}

// Acked returns every operation key the consumer holds an ack for.
func (w *World) Acked() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.acked...)
}

// Durable reports whether any supplier's state machine holds the key.
func (w *World) Durable(key string) bool {
	w.mu.Lock()
	states := make([]*keySetState, 0, len(w.states))
	for _, s := range w.states {
		states = append(states, s)
	}
	w.mu.Unlock()
	for _, s := range states {
		if s.Has(key) {
			return true
		}
	}
	return false
}

// WALViolations returns replay-fidelity violations recorded by wal-crash
// injections.
func (w *World) WALViolations() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.walViolations...)
}

// RegisterInjectors wires every standard fault kind to this world.
func (w *World) RegisterInjectors(e *Engine) {
	e.Register(FaultLossBurst, InjectorFunc(func(target string) (func() error, error) {
		rate := 0.5
		if target != "" {
			if v, err := strconv.ParseFloat(target, 64); err == nil {
				rate = v
			}
		}
		prev := w.Net.SetLossRate(rate)
		return func() error { w.Net.SetLossRate(prev); return nil }, nil
	}))
	e.Register(FaultLatencySpike, InjectorFunc(func(target string) (func() error, error) {
		lat := 30 * time.Millisecond
		if target != "" {
			if v, err := time.ParseDuration(target); err == nil {
				lat = v
			}
		}
		prevLat, prevJit := w.Net.SetLatency(lat, lat/3)
		return func() error { w.Net.SetLatency(prevLat, prevJit); return nil }, nil
	}))
	e.Register(FaultPartition, InjectorFunc(func(target string) (func() error, error) {
		id := netsim.NodeID(target)
		w.Net.Isolate(id)
		return func() error { w.Net.Rejoin(id); return nil }, nil
	}))
	e.Register(FaultCrashSupplier, InjectorFunc(func(target string) (func() error, error) {
		id := netsim.NodeID(target)
		if err := w.Net.Kill(id); err != nil {
			return nil, err
		}
		w.setDead(target, true)
		return func() error {
			w.setDead(target, false)
			return w.Net.Revive(id)
		}, nil
	}))
	e.Register(FaultKillRegistry, InjectorFunc(func(string) (func() error, error) {
		if err := w.Net.Kill(RegistryID); err != nil {
			return nil, err
		}
		return func() error { return w.Net.Revive(RegistryID) }, nil
	}))
	e.Register(FaultKillRegistryNode, InjectorFunc(func(target string) (func() error, error) {
		id := netsim.NodeID(target)
		if err := w.Net.Kill(id); err != nil {
			return nil, err
		}
		w.mu.Lock()
		w.deadRegistry[target] = true
		w.mu.Unlock()
		return func() error {
			w.mu.Lock()
			w.deadRegistry[target] = false
			w.mu.Unlock()
			return w.Net.Revive(id)
		}, nil
	}))
	e.Register(FaultWALCrash, InjectorFunc(func(target string) (func() error, error) {
		return nil, w.walCrash(target)
	}))
}

// walCrash crash-cycles a supplier's durable storage: the manager is closed
// (simulated process death — in-memory state is discarded), reopened over
// the same directory, and recovered. Any acked operation missing from the
// recovered state is a replay-fidelity violation.
func (w *World) walCrash(id string) error {
	w.mu.Lock()
	mgr := w.managers[id]
	acked := append([]string(nil), w.ackedBy[id]...)
	w.mu.Unlock()
	if mgr == nil {
		return fmt.Errorf("chaos: wal-crash: unknown supplier %q", id)
	}
	_ = mgr.Close()

	state := newKeySetState()
	fresh, err := recovery.NewManager(filepath.Join(w.dir, id), state, recovery.WALOptions{})
	if err != nil {
		return fmt.Errorf("chaos: wal-crash reopen %s: %w", id, err)
	}
	if _, err := fresh.Recover(); err != nil {
		w.recordWALViolation(fmt.Sprintf("%s: replay failed: %v", id, err))
	}
	for _, key := range acked {
		if !state.Has(key) {
			w.recordWALViolation(fmt.Sprintf("%s: replay lost acked op %s", id, key))
		}
	}
	w.mu.Lock()
	w.managers[id] = fresh
	w.states[id] = state
	w.mu.Unlock()
	return nil
}

func (w *World) recordWALViolation(msg string) {
	w.mu.Lock()
	w.walViolations = append(w.walViolations, msg)
	w.mu.Unlock()
}

// Close tears the world down: workload, endpoints, registry, substrate,
// storage, and (when World-owned) the WAL directory.
func (w *World) Close() error {
	for _, pub := range w.publishers {
		_ = pub.Close()
	}
	for _, c := range w.pubCallers {
		_ = c.Close()
	}
	for _, c := range w.overBulk {
		_ = c.Close()
	}
	for _, c := range w.overCtl {
		_ = c.Close()
	}
	if w.binding != nil {
		_ = w.binding.Close()
	}
	for _, wn := range w.nodes {
		_ = wn.node.Close()
	}
	for _, wn := range w.nodes {
		_ = wn.adaptive.Close()
		_ = wn.tr.Close()
		wn.mux.Close()
	}
	if w.registryServer != nil {
		_ = w.registryServer.Close()
	}
	if w.registryTr != nil {
		_ = w.registryTr.Close()
	}
	if w.registryMux != nil {
		w.registryMux.Close()
	}
	for _, node := range w.clusterNodes {
		_ = node.Close()
	}
	for _, tr := range w.clusterTrs {
		_ = tr.Close()
	}
	for _, mux := range w.clusterMuxes {
		mux.Close()
	}
	if w.Net != nil {
		w.Net.Close()
	}
	w.mu.Lock()
	managers := make([]*recovery.Manager, 0, len(w.managers))
	for _, m := range w.managers {
		managers = append(managers, m)
	}
	w.mu.Unlock()
	for _, m := range managers {
		_ = m.Close()
	}
	if w.ownDir {
		_ = os.RemoveAll(w.dir)
	}
	return nil
}
