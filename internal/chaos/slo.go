package chaos

import (
	"fmt"

	"ndsm/internal/flightrec"
	"ndsm/internal/slo"
	"ndsm/internal/telemetry"
)

// SLO-plane sizing, all in ticks. Windows are deliberately short — a chaos
// run is 30-90 ticks, so an alert must form (and clear) well inside one
// fault window for the alert-latency invariant to have anything to judge.
const (
	sloWindowTicks      = 8
	sloShortWindowTicks = 2
	sloClearAfter       = 2
)

// Objective names the SLO world installs. Invariants and experiments key the
// alert trace by "<objective>/<node>".
const (
	FreshnessObjective = "telemetry-freshness"
	ControlObjective   = "control-deadline-miss"
	LookupObjective    = "lookup-availability"
)

// buildSLO assembles the consumer's burn-rate engine and flight recorder.
// The engine watches the same aggregator the telemetry plane fills; ratio
// objectives judge counters the consumer self-ingests each tick (sloStep),
// so replayed or stale supplier reports can never advance a window — the
// aggregator's seq monotonicity already rejected them.
func (w *World) buildSLO() error {
	eng, err := slo.New(slo.Options{
		Aggregator: w.agg,
		Clock:      w.cfg.Clock,
	})
	if err != nil {
		return fmt.Errorf("chaos: slo engine: %w", err)
	}
	tick := w.cfg.TickEvery
	objectives := []slo.Objective{{
		Name:        FreshnessObjective,
		Description: "every reporting node's telemetry stays fresh",
		Kind:        slo.KindFreshness,
		Window:      sloWindowTicks * tick,
		ShortWindow: sloShortWindowTicks * tick,
		Budget:      0.25, // a quarter of the window may be stale before burn 1
		WarnBurn:    1,
		CritBurn:    2, // critical: >= half the window stale, both windows
		ClearAfter:  sloClearAfter,
	}}
	if w.cfg.Overload {
		objectives = append(objectives, slo.Objective{
			Name:        ControlObjective,
			Description: "control-lane probes meet their deadline",
			Kind:        slo.KindRatio,
			Node:        ConsumerID,
			BadSeries:   "ctl.miss",
			TotalSeries: "ctl.total",
			Window:      sloWindowTicks * tick,
			ShortWindow: sloShortWindowTicks * tick,
			Budget:      0.1,
			WarnBurn:    1,
			CritBurn:    4,
			ClearAfter:  sloClearAfter,
		})
	}
	if w.cfg.RegistryCluster >= 2 {
		objectives = append(objectives, slo.Objective{
			Name:        LookupObjective,
			Description: "cached cluster lookups keep answering",
			Kind:        slo.KindRatio,
			Node:        ConsumerID,
			BadSeries:   "lookup.fail",
			TotalSeries: "lookup.total",
			Window:      (sloWindowTicks + 2) * tick,
			ShortWindow: sloShortWindowTicks * tick,
			// Mirrors the cluster-lookup-availability invariant: the
			// detection allowance after a member kill may fail a few probes
			// without an alert; only sustained unavailability (replication
			// actually broken) goes critical.
			Budget:     0.25,
			WarnBurn:   1,
			CritBurn:   2,
			ClearAfter: sloClearAfter,
		})
	}
	for _, o := range objectives {
		if err := eng.Add(o); err != nil {
			return fmt.Errorf("chaos: slo objective %s: %w", o.Name, err)
		}
	}

	w.flight = flightrec.NewRecorder(flightrec.Options{
		Clock: w.cfg.Clock,
		// One bundle per tick at most: a multi-node critical cascade within a
		// tick records once, with the rest counted as suppressed.
		MinInterval: tick,
		Spans:       w.cfg.SpanCollector,
		Health:      w.health,
		Aggregator:  w.agg,
	})
	eng.Alerts().Notify(func(t slo.Transition) {
		w.mu.Lock()
		w.alertTrans = append(w.alertTrans, t)
		w.mu.Unlock()
		if t.To == slo.Critical {
			w.flight.Snapshot(flightrec.Trigger{
				Objective: t.Objective,
				Node:      t.Node,
				Severity:  t.To.String(),
				Windows: map[string]float64{
					"burnLong":    t.BurnLong,
					"burnShort":   t.BurnShort,
					"badFraction": t.BadFraction,
				},
			})
		}
	})
	w.sloEngine = eng
	return nil
}

// tickCounters is one tick's workload outcome, folded into the consumer's
// self-ingested telemetry report.
type tickCounters struct {
	ctlIssued bool
	ctlOK     bool
	lookupOK  bool
	bulkAdm   int
	bulkShed  int
}

// sloStep runs the alerting plane's per-tick work: ingest the consumer's own
// counters, evaluate every objective once at the tick's clock, and append the
// severity snapshot the alert-latency invariant replays.
func (w *World) sloStep(c tickCounters) {
	w.sloSeq++
	counters := map[string]int64{"lookup.total": 1}
	if !c.lookupOK {
		counters["lookup.fail"] = 1
	}
	if c.ctlIssued {
		counters["ctl.total"] = 1
		if !c.ctlOK {
			counters["ctl.miss"] = 1
		}
	}
	if c.bulkAdm+c.bulkShed > 0 {
		counters["bulk.total"] = int64(c.bulkAdm + c.bulkShed)
		counters["bulk.shed"] = int64(c.bulkShed)
	}
	_ = w.agg.Ingest(&telemetry.Report{
		Node:     ConsumerID,
		Seq:      w.sloSeq,
		Time:     w.cfg.Clock.Now(),
		Counters: counters,
	})
	w.sloEngine.Evaluate()

	states := w.sloEngine.States()
	snap := make(map[string]slo.Severity, len(states))
	for _, st := range states {
		snap[st.Objective+"/"+st.Node] = st.Severity
	}
	w.mu.Lock()
	w.alertTrace = append(w.alertTrace, snap)
	w.mu.Unlock()
}

// SLO returns the consumer's burn-rate engine (nil unless the world was
// built with SLO).
func (w *World) SLO() *slo.Engine { return w.sloEngine }

// FlightRecorder returns the consumer's flight recorder (nil unless SLO).
func (w *World) FlightRecorder() *flightrec.Recorder { return w.flight }

// AlertTrace returns, per tick, the end-of-tick severity of every alert
// instance, keyed "<objective>/<node>" (empty unless SLO).
func (w *World) AlertTrace() []map[string]slo.Severity {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]map[string]slo.Severity(nil), w.alertTrace...)
}

// AlertTransitions returns every alert state change over the run, in order
// (empty unless SLO). A calm soak asserts this is empty.
func (w *World) AlertTransitions() []slo.Transition {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]slo.Transition(nil), w.alertTrans...)
}

// sloKey builds an alert-trace key.
func sloKey(objective, node string) string { return objective + "/" + node }

// freshnessCriticalWithin reports whether the freshness objective for node
// went critical in trace ticks [from, to].
func freshnessCriticalWithin(trace []map[string]slo.Severity, node string, from, to int) bool {
	key := sloKey(FreshnessObjective, node)
	for i := from; i <= to && i < len(trace); i++ {
		if i >= 0 && trace[i] != nil && trace[i][key] >= slo.Critical {
			return true
		}
	}
	return false
}
