package chaos

import (
	"os"
	"testing"
	"time"

	"ndsm/internal/simtime"
)

// TestOverloadWorldIsolatesControlLane drives a fault-free overload world
// and checks the tentpole property directly: every tick floods the bound
// supplier with a bulk burst that must shed, while the control probe's
// reserved slot keeps it admitted — zero control sheds, every probe served.
func TestOverloadWorldIsolatesControlLane(t *testing.T) {
	vclock := simtime.NewVirtual(time.Unix(0, 0))
	w, err := NewWorld(WorldConfig{
		Seed:      7,
		TickEvery: 50 * time.Millisecond,
		Clock:     vclock,
		Liveness:  true,
		Overload:  true,
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer w.Close() //nolint:errcheck

	const ticks = 12
	for i := 0; i < ticks; i++ {
		vclock.Advance(w.TickEvery())
		w.Tick(i)
	}

	ctlOK, ctlShed := w.ControlOKTrace(), w.ControlShedTrace()
	bulkAdm, bulkShed := w.BulkAdmitTrace(), w.BulkShedTrace()
	if len(ctlOK) != ticks || len(bulkAdm) != ticks {
		t.Fatalf("trace lengths %d/%d, want %d", len(ctlOK), len(bulkAdm), ticks)
	}
	okCtl, shedCtl, admitted, shedBulk := 0, 0, 0, 0
	for i := 0; i < ticks; i++ {
		if ctlOK[i] {
			okCtl++
		}
		if ctlShed[i] {
			shedCtl++
		}
		admitted += bulkAdm[i]
		shedBulk += bulkShed[i]
	}
	if shedCtl != 0 {
		t.Fatalf("%d/%d control probes shed; the reservation must hold them all", shedCtl, ticks)
	}
	if okCtl != ticks {
		t.Fatalf("%d/%d control probes served on a fault-free network", okCtl, ticks)
	}
	// The burst (10) overflows shared slots (3) + bulk queue (2): every tick
	// must both serve and shed bulk work.
	if admitted == 0 || shedBulk == 0 {
		t.Fatalf("bulk admitted=%d shed=%d; the burst must both serve and shed", admitted, shedBulk)
	}
	if v := (PriorityIsolation{}).Check(w, nil); len(v) != 0 {
		t.Fatalf("priority-isolation violations on a clean run: %v", v)
	}

	// Tail capture: every client-observed shed must be retained server-side
	// as a wide event with its topic and reason attached.
	if v := (TailCapture{}).Check(w, nil); len(v) != 0 {
		t.Fatalf("tail-capture violations on a clean run: %v", v)
	}
	retained := 0
	for id, recs := range w.ShedRecords() {
		for _, rec := range recs {
			if rec.Topic != BulkTopic && rec.Topic != CtlTopic {
				t.Fatalf("%s retained a shed on unexpected topic %q", id, rec.Topic)
			}
			if rec.Lane == "" || rec.ShedReason == "" {
				t.Fatalf("%s shed record missing lane/reason: %+v", id, rec)
			}
		}
		retained += len(recs)
	}
	if retained < shedBulk {
		t.Fatalf("tail rings retain %d sheds, consumer observed %d", retained, shedBulk)
	}
}

// TestOverloadScenarioShort is the CI smoke: one seeded overload scenario
// through the full fault schedule, judged by the standard invariant set plus
// priority-isolation.
func TestOverloadScenarioShort(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Seed:     11,
		Ticks:    30,
		Windows:  3,
		Overload: true,
		TraceDir: os.Getenv("NDSM_CHAOS_TRACE_DIR"),
	})
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestOverloadSoak is the acceptance soak: 20 seeds of the overload world,
// each with its own generated fault schedule, all clean on
// priority-isolation (and every other invariant).
func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed soak skipped in short mode")
	}
	report, err := Soak(SoakConfig{
		Scenarios: 20,
		BaseSeed:  401,
		Scenario:  ScenarioConfig{Ticks: 60, Windows: 4, Overload: true},
		TraceDir:  os.Getenv("NDSM_CHAOS_TRACE_DIR"),
	})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	clean := 0
	for _, res := range report.Results {
		if len(res.Violations) == 0 {
			clean++
		}
	}
	for _, v := range report.Violations() {
		t.Errorf("soak violation: %s", v)
	}
	t.Logf("overload soak: %d/%d scenarios clean", clean, len(report.Results))
}
