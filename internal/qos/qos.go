// Package qos implements the paper's Quality of Service management (§3.4):
//
//   - consumer-side specifications: required service attributes plus a
//     time-constraint *benefit function* (full benefit up to one delay bound,
//     decaying to zero at another — real-time vs. e-mail style needs),
//   - supplier-side properties: advertised reliability, power level and
//     availability windows (carried in svcdesc.Description),
//   - spatial QoS: proximity as a scored preference, distinct from the hard
//     distance constraints a query can impose ("nearest best-matched
//     printer"),
//   - a utility scorer and ranker that selects the best supplier for a
//     consumer under all dimensions at once,
//   - an achieved-QoS tracker that measures what a binding actually
//     delivered, feeding graceful-degradation decisions in the kernel.
package qos

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ndsm/internal/svcdesc"
)

// Benefit is a time-constraint benefit function: full benefit for delays up
// to FullUntil, linearly decaying to zero at ZeroAfter. The zero value means
// "no time constraint" (benefit 1 at any delay).
type Benefit struct {
	FullUntil time.Duration
	ZeroAfter time.Duration
}

// Validate checks that the decay interval is well formed.
func (b Benefit) Validate() error {
	if b.FullUntil < 0 || b.ZeroAfter < 0 {
		return errors.New("qos: negative benefit bound")
	}
	if b.ZeroAfter != 0 && b.ZeroAfter < b.FullUntil {
		return fmt.Errorf("qos: ZeroAfter %v before FullUntil %v", b.ZeroAfter, b.FullUntil)
	}
	return nil
}

// At returns the benefit of a delivery with the given delay, in [0,1].
func (b Benefit) At(delay time.Duration) float64 {
	if delay < 0 {
		delay = 0
	}
	if b.FullUntil == 0 && b.ZeroAfter == 0 {
		return 1 // unconstrained
	}
	if delay <= b.FullUntil {
		return 1
	}
	if b.ZeroAfter == 0 || delay >= b.ZeroAfter {
		if b.ZeroAfter == 0 {
			// Hard deadline at FullUntil with no decay interval.
			return 0
		}
		return 0
	}
	span := b.ZeroAfter - b.FullUntil
	return 1 - float64(delay-b.FullUntil)/float64(span)
}

// Weights expresses the relative importance of the scored QoS dimensions.
// They need not sum to one; Score normalizes.
type Weights struct {
	Reliability float64
	Power       float64
	Proximity   float64
}

// DefaultWeights balances reliability-heavy selection with some spatial
// preference — a reasonable default for the paper's examples.
func DefaultWeights() Weights {
	return Weights{Reliability: 0.5, Power: 0.25, Proximity: 0.25}
}

func (w Weights) total() float64 { return w.Reliability + w.Power + w.Proximity }

// Spec is everything a consumer demands of one service: hard functional
// requirements (Query), time constraints (Benefit), and soft preferences
// (Weights, proximity reference).
type Spec struct {
	// Query carries the hard matching requirements (§3.3's matching
	// criteria, including reliability/power floors and password).
	Query svcdesc.Query
	// Benefit is the consumer's time-constraint curve.
	Benefit Benefit
	// Weights ranks soft preferences. Zero value falls back to
	// DefaultWeights.
	Weights Weights
	// Near is the proximity reference point for the Proximity weight.
	// Falls back to Query.Near when nil.
	Near *svcdesc.Location
	// ProximityScale is the distance at which the proximity component
	// reaches zero (default 100 m).
	ProximityScale float64
}

// Validate checks the spec invariants.
func (s *Spec) Validate() error {
	if s == nil {
		return errors.New("qos: nil spec")
	}
	if err := s.Benefit.Validate(); err != nil {
		return err
	}
	if s.Weights.Reliability < 0 || s.Weights.Power < 0 || s.Weights.Proximity < 0 {
		return errors.New("qos: negative weight")
	}
	if s.ProximityScale < 0 {
		return errors.New("qos: negative proximity scale")
	}
	return nil
}

func (s *Spec) near() *svcdesc.Location {
	if s.Near != nil {
		return s.Near
	}
	return s.Query.Near
}

// Score returns the utility in [0,1] of binding the consumer spec to the
// supplier description at time now. It returns 0 when the hard query does
// not match, so a positive score always implies feasibility.
func Score(s *Spec, d *svcdesc.Description, now time.Time) float64 {
	if s == nil || d == nil {
		return 0
	}
	if !s.Query.Matches(d, now) {
		return 0
	}
	w := s.Weights
	if w.total() == 0 {
		w = DefaultWeights()
	}
	total := w.total()

	score := w.Reliability*d.Reliability + w.Power*d.PowerLevel

	prox := 0.5 // neutral when either side lacks a position
	if ref := s.near(); ref != nil && d.Location != nil {
		scale := s.ProximityScale
		if scale <= 0 {
			scale = 100
		}
		dist := d.Location.Distance(*ref)
		prox = math.Max(0, 1-dist/scale)
	}
	score += w.Proximity * prox

	return score / total
}

// Ranked pairs a description with its score.
type Ranked struct {
	Desc  *svcdesc.Description
	Score float64
}

// Rank scores all candidates and returns the feasible ones (score > 0)
// ordered best-first. Ties break on provider|name|instance key for
// determinism.
func Rank(s *Spec, candidates []*svcdesc.Description, now time.Time) []Ranked {
	out := make([]Ranked, 0, len(candidates))
	for _, d := range candidates {
		if sc := Score(s, d, now); sc > 0 {
			out = append(out, Ranked{Desc: d, Score: sc})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Desc.Key() < out[j].Desc.Key()
	})
	return out
}

// Select returns the best feasible candidate, or nil when none match.
func Select(s *Spec, candidates []*svcdesc.Description, now time.Time) *svcdesc.Description {
	ranked := Rank(s, candidates, now)
	if len(ranked) == 0 {
		return nil
	}
	return ranked[0].Desc
}

// Tracker measures the QoS a binding actually achieves: delivery ratio,
// delay distribution, and mean benefit under the spec's curve. The kernel
// uses it to detect QoS violations and trigger re-matching (graceful
// degradation, §3.4).
type Tracker struct {
	benefit Benefit

	mu         sync.Mutex
	delivered  int
	failed     int
	sumDelay   time.Duration
	sumBenefit float64
}

// NewTracker creates a tracker evaluating deliveries under the benefit curve.
func NewTracker(b Benefit) *Tracker {
	return &Tracker{benefit: b}
}

// ObserveDelivery records a successful delivery with the given delay.
func (t *Tracker) ObserveDelivery(delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.delivered++
	t.sumDelay += delay
	t.sumBenefit += t.benefit.At(delay)
}

// ObserveFailure records a failed or missed delivery (benefit 0).
func (t *Tracker) ObserveFailure() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failed++
}

// Report is a point-in-time summary of achieved QoS.
type Report struct {
	Delivered     int
	Failed        int
	DeliveryRatio float64
	MeanDelay     time.Duration
	MeanBenefit   float64 // averaged over all attempts, failures scoring 0
}

// Report summarizes the observations so far.
func (t *Tracker) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Report{Delivered: t.delivered, Failed: t.failed}
	total := t.delivered + t.failed
	if total > 0 {
		r.DeliveryRatio = float64(t.delivered) / float64(total)
		r.MeanBenefit = t.sumBenefit / float64(total)
	}
	if t.delivered > 0 {
		r.MeanDelay = t.sumDelay / time.Duration(t.delivered)
	}
	return r
}

// Violated reports whether achieved QoS fell below the floor: delivery ratio
// under minRatio or mean benefit under minBenefit, once at least minSamples
// attempts were observed.
func (t *Tracker) Violated(minRatio, minBenefit float64, minSamples int) bool {
	r := t.Report()
	if r.Delivered+r.Failed < minSamples {
		return false
	}
	return r.DeliveryRatio < minRatio || r.MeanBenefit < minBenefit
}

// Reset clears all observations (used after re-binding to a new supplier).
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.delivered, t.failed = 0, 0
	t.sumDelay, t.sumBenefit = 0, 0
}
