package qos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ndsm/internal/svcdesc"
)

var now = time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)

func desc(key string, rel, power float64, loc *svcdesc.Location) *svcdesc.Description {
	return &svcdesc.Description{
		Name:        "printer",
		Provider:    key,
		Reliability: rel,
		PowerLevel:  power,
		Location:    loc,
	}
}

func TestBenefitUnconstrained(t *testing.T) {
	var b Benefit
	for _, d := range []time.Duration{0, time.Second, time.Hour} {
		if got := b.At(d); got != 1 {
			t.Fatalf("At(%v) = %v, want 1", d, got)
		}
	}
}

func TestBenefitLinearDecay(t *testing.T) {
	b := Benefit{FullUntil: 100 * time.Millisecond, ZeroAfter: 200 * time.Millisecond}
	tests := []struct {
		delay time.Duration
		want  float64
	}{
		{0, 1},
		{-time.Second, 1}, // negative clamps to zero delay
		{100 * time.Millisecond, 1},
		{150 * time.Millisecond, 0.5},
		{175 * time.Millisecond, 0.25},
		{200 * time.Millisecond, 0},
		{time.Hour, 0},
	}
	for _, tt := range tests {
		if got := b.At(tt.delay); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tt.delay, got, tt.want)
		}
	}
}

func TestBenefitHardDeadline(t *testing.T) {
	b := Benefit{FullUntil: 50 * time.Millisecond}
	if got := b.At(50 * time.Millisecond); got != 1 {
		t.Fatalf("at deadline = %v, want 1", got)
	}
	if got := b.At(51 * time.Millisecond); got != 0 {
		t.Fatalf("past hard deadline = %v, want 0", got)
	}
}

func TestBenefitValidate(t *testing.T) {
	if err := (Benefit{}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Benefit{FullUntil: -1}).Validate(); err == nil {
		t.Error("negative FullUntil accepted")
	}
	if err := (Benefit{FullUntil: 10, ZeroAfter: 5}).Validate(); err == nil {
		t.Error("ZeroAfter < FullUntil accepted")
	}
	if err := (Benefit{FullUntil: 5, ZeroAfter: 10}).Validate(); err != nil {
		t.Error(err)
	}
}

// Property: benefit is monotone non-increasing in delay and bounded [0,1].
func TestBenefitMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		full := time.Duration(r.Intn(1000)) * time.Millisecond
		b := Benefit{FullUntil: full, ZeroAfter: full + time.Duration(r.Intn(1000))*time.Millisecond}
		prev := 2.0
		for d := time.Duration(0); d < 3*time.Second; d += 37 * time.Millisecond {
			v := b.At(d)
			if v < 0 || v > 1 || v > prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidate(t *testing.T) {
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil {
		t.Error("nil spec validated")
	}
	if err := (&Spec{}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (&Spec{Weights: Weights{Reliability: -1}}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (&Spec{ProximityScale: -5}).Validate(); err == nil {
		t.Error("negative scale accepted")
	}
	if err := (&Spec{Benefit: Benefit{FullUntil: 2, ZeroAfter: 1}}).Validate(); err == nil {
		t.Error("bad benefit accepted")
	}
}

func TestScoreInfeasibleIsZero(t *testing.T) {
	s := &Spec{Query: svcdesc.Query{Name: "scanner"}}
	if got := Score(s, desc("p", 1, 1, nil), now); got != 0 {
		t.Fatalf("Score = %v, want 0 for non-matching query", got)
	}
	if Score(nil, desc("p", 1, 1, nil), now) != 0 || Score(s, nil, now) != 0 {
		t.Fatal("nil args should score 0")
	}
}

func TestScorePrefersReliability(t *testing.T) {
	s := &Spec{Query: svcdesc.Query{Name: "printer"}, Weights: Weights{Reliability: 1}}
	hi := Score(s, desc("hi", 0.9, 0.1, nil), now)
	lo := Score(s, desc("lo", 0.5, 1.0, nil), now)
	if hi <= lo {
		t.Fatalf("reliability-only weights: hi=%v lo=%v", hi, lo)
	}
	if math.Abs(hi-0.9) > 1e-9 {
		t.Fatalf("hi = %v, want 0.9", hi)
	}
}

func TestScoreProximity(t *testing.T) {
	ref := &svcdesc.Location{X: 0, Y: 0}
	s := &Spec{
		Query:          svcdesc.Query{Name: "printer"},
		Weights:        Weights{Proximity: 1},
		Near:           ref,
		ProximityScale: 100,
	}
	nearby := Score(s, desc("a", 1, 1, &svcdesc.Location{X: 10, Y: 0}), now)
	distant := Score(s, desc("b", 1, 1, &svcdesc.Location{X: 90, Y: 0}), now)
	offField := Score(s, desc("c", 1, 1, &svcdesc.Location{X: 500, Y: 0}), now)
	if !(nearby > distant && distant > offField) {
		t.Fatalf("proximity ordering: %v %v %v", nearby, distant, offField)
	}
	if math.Abs(nearby-0.9) > 1e-9 {
		t.Fatalf("nearby = %v, want 0.9", nearby)
	}
	if offField != 0 {
		t.Fatalf("beyond scale = %v, want 0", offField)
	}
	// Missing location on either side scores neutral 0.5.
	noLoc := Score(s, desc("d", 1, 1, nil), now)
	if math.Abs(noLoc-0.5) > 1e-9 {
		t.Fatalf("no-location = %v, want 0.5", noLoc)
	}
}

func TestScoreDefaultWeights(t *testing.T) {
	s := &Spec{Query: svcdesc.Query{Name: "printer"}}
	got := Score(s, desc("p", 1, 1, nil), now)
	// reliability 1*0.5 + power 1*0.25 + neutral proximity 0.5*0.25 = 0.875
	if math.Abs(got-0.875) > 1e-9 {
		t.Fatalf("Score = %v, want 0.875", got)
	}
}

func TestScoreNormalized(t *testing.T) {
	s := &Spec{Query: svcdesc.Query{Name: "printer"}, Weights: Weights{Reliability: 10, Power: 10, Proximity: 0}}
	got := Score(s, desc("p", 1.0, 1.0, nil), now)
	if got > 1+1e-9 {
		t.Fatalf("score %v exceeds 1", got)
	}
}

func TestRankOrderingAndDeterminism(t *testing.T) {
	s := &Spec{Query: svcdesc.Query{Name: "printer"}, Weights: Weights{Reliability: 1}}
	cands := []*svcdesc.Description{
		desc("c", 0.7, 1, nil),
		desc("a", 0.9, 1, nil),
		desc("b", 0.9, 1, nil),
		desc("d", 0.2, 1, nil),
	}
	ranked := Rank(s, cands, now)
	if len(ranked) != 4 {
		t.Fatalf("ranked %d, want 4", len(ranked))
	}
	// 0.9 tie breaks by key: a before b.
	if ranked[0].Desc.Provider != "a" || ranked[1].Desc.Provider != "b" ||
		ranked[2].Desc.Provider != "c" || ranked[3].Desc.Provider != "d" {
		order := []string{}
		for _, r := range ranked {
			order = append(order, r.Desc.Provider)
		}
		t.Fatalf("order = %v", order)
	}
}

func TestRankFiltersInfeasible(t *testing.T) {
	s := &Spec{Query: svcdesc.Query{Name: "printer", MinReliability: 0.8}}
	cands := []*svcdesc.Description{
		desc("ok", 0.9, 1, nil),
		desc("weak", 0.5, 1, nil),
	}
	ranked := Rank(s, cands, now)
	if len(ranked) != 1 || ranked[0].Desc.Provider != "ok" {
		t.Fatalf("ranked = %+v", ranked)
	}
}

func TestSelect(t *testing.T) {
	s := &Spec{Query: svcdesc.Query{Name: "printer"}, Weights: Weights{Reliability: 1}}
	best := Select(s, []*svcdesc.Description{desc("a", 0.3, 1, nil), desc("b", 0.8, 1, nil)}, now)
	if best == nil || best.Provider != "b" {
		t.Fatalf("Select = %+v", best)
	}
	if Select(s, nil, now) != nil {
		t.Fatal("Select on empty should be nil")
	}
}

// The paper's §3.4 example: print on the nearest best-matched printer.
func TestNearestBestMatchedPrinter(t *testing.T) {
	user := &svcdesc.Location{X: 0, Y: 0}
	s := &Spec{
		Query: svcdesc.Query{
			Name:        "printer",
			Constraints: []svcdesc.Constraint{{Attr: "color", Op: svcdesc.OpEq, Value: "true"}},
		},
		Weights:        Weights{Reliability: 0.3, Proximity: 0.7},
		Near:           user,
		ProximityScale: 200,
	}
	nearMono := desc("near-mono", 0.99, 1, &svcdesc.Location{X: 5, Y: 0})
	nearMono.Attributes = map[string]string{"color": "false"}
	nearColor := desc("near-color", 0.90, 1, &svcdesc.Location{X: 20, Y: 0})
	nearColor.Attributes = map[string]string{"color": "true"}
	farColor := desc("far-color", 0.99, 1, &svcdesc.Location{X: 180, Y: 0})
	farColor.Attributes = map[string]string{"color": "true"}

	best := Select(s, []*svcdesc.Description{nearMono, nearColor, farColor}, now)
	if best == nil || best.Provider != "near-color" {
		t.Fatalf("best = %+v, want near-color", best)
	}
}

func TestTrackerReport(t *testing.T) {
	tr := NewTracker(Benefit{FullUntil: 100 * time.Millisecond, ZeroAfter: 200 * time.Millisecond})
	tr.ObserveDelivery(50 * time.Millisecond)  // benefit 1
	tr.ObserveDelivery(150 * time.Millisecond) // benefit 0.5
	tr.ObserveFailure()                        // benefit 0
	r := tr.Report()
	if r.Delivered != 2 || r.Failed != 1 {
		t.Fatalf("counts: %+v", r)
	}
	if math.Abs(r.DeliveryRatio-2.0/3.0) > 1e-9 {
		t.Fatalf("ratio = %v", r.DeliveryRatio)
	}
	if math.Abs(r.MeanBenefit-0.5) > 1e-9 {
		t.Fatalf("mean benefit = %v, want 0.5", r.MeanBenefit)
	}
	if r.MeanDelay != 100*time.Millisecond {
		t.Fatalf("mean delay = %v", r.MeanDelay)
	}
}

func TestTrackerEmptyReport(t *testing.T) {
	tr := NewTracker(Benefit{})
	r := tr.Report()
	if r.DeliveryRatio != 0 || r.MeanBenefit != 0 || r.MeanDelay != 0 {
		t.Fatalf("empty report: %+v", r)
	}
}

func TestTrackerViolated(t *testing.T) {
	tr := NewTracker(Benefit{})
	// Below min samples: never violated.
	tr.ObserveFailure()
	if tr.Violated(0.9, 0.9, 5) {
		t.Fatal("violated before min samples")
	}
	for i := 0; i < 4; i++ {
		tr.ObserveFailure()
	}
	if !tr.Violated(0.9, 0.9, 5) {
		t.Fatal("all-failures not violated")
	}
	tr.Reset()
	for i := 0; i < 10; i++ {
		tr.ObserveDelivery(0)
	}
	if tr.Violated(0.9, 0.9, 5) {
		t.Fatal("perfect delivery flagged as violated")
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker(Benefit{})
	tr.ObserveDelivery(time.Second)
	tr.Reset()
	r := tr.Report()
	if r.Delivered != 0 || r.Failed != 0 {
		t.Fatalf("after reset: %+v", r)
	}
}

// Property: Score is always within [0,1].
func TestScoreBoundedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		s := &Spec{
			Query: svcdesc.Query{Name: "svc"},
			Weights: Weights{
				Reliability: r.Float64() * 3,
				Power:       r.Float64() * 3,
				Proximity:   r.Float64() * 3,
			},
			ProximityScale: 1 + r.Float64()*100,
		}
		if r.Intn(2) == 0 {
			s.Near = &svcdesc.Location{X: r.Float64() * 100, Y: r.Float64() * 100}
		}
		d := desc("p", r.Float64(), r.Float64(), nil)
		d.Name = "svc"
		if r.Intn(2) == 0 {
			d.Location = &svcdesc.Location{X: r.Float64() * 300, Y: r.Float64() * 300}
		}
		sc := Score(s, d, now)
		return sc >= 0 && sc <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
