package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Content-type tags carried in frames to identify the codec of the body.
const (
	ContentBinary byte = 1
	ContentXML    byte = 2
	ContentJSON   byte = 3
)

// binaryMagic guards against decoding garbage as a binary message.
const binaryMagic = 0xD5

// binaryVersion is bumped on incompatible format changes.
const binaryVersion = 1

// Binary is the compact native codec: a magic/version header followed by
// varint-length-prefixed fields. It is the default codec for node-to-node
// traffic; XML and JSON exist for interoperability (§3.9).
type Binary struct{}

var _ Codec = Binary{}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// ContentType implements Codec.
func (Binary) ContentType() byte { return ContentBinary }

// Encode implements Codec.
func (Binary) Encode(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Rough size estimate to avoid growth: fixed fields + strings + payload.
	size := 64 + len(m.Src) + len(m.Dst) + len(m.Topic) + len(m.Payload)
	for k, v := range m.Headers {
		size += len(k) + len(v) + 10
	}
	return Binary{}.AppendEncode(make([]byte, 0, size), m)
}

// AppendEncode implements AppendEncoder: it serializes m by appending to buf,
// allocating only when buf's capacity runs out. This is the hot-path form the
// batched connection writers use to encode straight into a pooled, reused
// write buffer.
func (Binary) AppendEncode(buf []byte, m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return buf, err
	}
	buf = append(buf, binaryMagic, binaryVersion, byte(m.Kind), m.Priority)
	buf = binary.AppendUvarint(buf, m.ID)
	buf = binary.AppendUvarint(buf, m.Corr)
	var deadline int64
	if !m.Deadline.IsZero() {
		deadline = m.Deadline.UnixNano()
	}
	buf = binary.AppendVarint(buf, deadline)
	buf = appendString(buf, m.Src)
	buf = appendString(buf, m.Dst)
	buf = appendString(buf, m.Topic)
	buf = binary.AppendUvarint(buf, uint64(len(m.Headers)))
	for _, k := range m.headerKeys() {
		buf = appendString(buf, k)
		buf = appendString(buf, m.Headers[k])
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf, nil
}

// Decode implements Codec.
func (Binary) Decode(data []byte) (*Message, error) {
	d := &decoder{buf: data}
	magic := d.byte()
	version := d.byte()
	if d.err == nil && magic != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic 0x%02x", ErrInvalidMessage, magic)
	}
	if d.err == nil && version != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrInvalidMessage, version)
	}
	m := &Message{}
	m.Kind = Kind(d.byte())
	m.Priority = d.byte()
	m.ID = d.uvarint()
	m.Corr = d.uvarint()
	if ns := d.varint(); ns != 0 && d.err == nil {
		m.Deadline = time.Unix(0, ns).UTC()
	}
	m.Src = d.string()
	m.Dst = d.string()
	m.Topic = d.string()
	if n := d.uvarint(); n > 0 && d.err == nil {
		if n > uint64(len(d.buf)) {
			return nil, fmt.Errorf("%w: header count %d exceeds input", ErrInvalidMessage, n)
		}
		m.Headers = make(map[string]string, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			k := d.string()
			m.Headers[k] = d.string()
		}
	}
	m.Payload = d.bytes()
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidMessage, d.err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a cursor over a byte slice that records the first error and
// makes subsequent reads no-ops, keeping decode logic linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s", msg)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out
}
