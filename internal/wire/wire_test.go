package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleMessage() *Message {
	return &Message{
		ID:       42,
		Kind:     KindRequest,
		Src:      "node-a",
		Dst:      "node-b",
		Topic:    "sensors/bp",
		Corr:     7,
		Priority: 3,
		Deadline: time.Date(2003, 6, 1, 12, 0, 0, 123456789, time.UTC),
		Headers:  map[string]string{"auth": "secret", "trace": "t-1"},
		Payload:  []byte("120/80 mmHg"),
	}
}

func allCodecs() []Codec { return []Codec{Binary{}, XML{}, JSON{}} }

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindRequest, "request"},
		{KindReply, "reply"},
		{KindData, "data"},
		{KindEvent, "event"},
		{KindAck, "ack"},
		{KindControl, "control"},
		{KindError, "error"},
		{Kind(0), "invalid"},
		{Kind(200), "kind(200)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	if Kind(0).Valid() {
		t.Error("Kind(0) should be invalid")
	}
	if !KindError.Valid() {
		t.Error("KindError should be valid")
	}
	if Kind(8).Valid() {
		t.Error("Kind(8) should be invalid")
	}
}

func TestValidate(t *testing.T) {
	var nilMsg *Message
	if err := nilMsg.Validate(); !errors.Is(err, ErrInvalidMessage) {
		t.Errorf("nil message: err = %v, want ErrInvalidMessage", err)
	}
	if err := (&Message{}).Validate(); !errors.Is(err, ErrInvalidMessage) {
		t.Errorf("zero kind: err = %v, want ErrInvalidMessage", err)
	}
	if err := sampleMessage().Validate(); err != nil {
		t.Errorf("valid message: err = %v", err)
	}
}

func TestClone(t *testing.T) {
	m := sampleMessage()
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Headers["auth"] = "changed"
	c.Payload[0] = 'X'
	if m.Headers["auth"] != "secret" {
		t.Error("clone shares headers map")
	}
	if m.Payload[0] != '1' {
		t.Error("clone shares payload")
	}
	var nilMsg *Message
	if nilMsg.Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestEqual(t *testing.T) {
	m := sampleMessage()
	if !m.Equal(m.Clone()) {
		t.Fatal("message should equal its clone")
	}
	cases := map[string]func(*Message){
		"id":       func(x *Message) { x.ID++ },
		"kind":     func(x *Message) { x.Kind = KindReply },
		"src":      func(x *Message) { x.Src = "other" },
		"dst":      func(x *Message) { x.Dst = "other" },
		"topic":    func(x *Message) { x.Topic = "other" },
		"corr":     func(x *Message) { x.Corr++ },
		"priority": func(x *Message) { x.Priority++ },
		"deadline": func(x *Message) { x.Deadline = x.Deadline.Add(time.Second) },
		"headers":  func(x *Message) { x.Headers["auth"] = "zzz" },
		"hdrcount": func(x *Message) { delete(x.Headers, "auth") },
		"payload":  func(x *Message) { x.Payload[0] ^= 0xFF },
		"paylen":   func(x *Message) { x.Payload = x.Payload[:1] },
	}
	for name, mutate := range cases {
		c := m.Clone()
		mutate(c)
		if m.Equal(c) {
			t.Errorf("mutation %q: messages still equal", name)
		}
	}
	var nilMsg *Message
	if nilMsg.Equal(m) || m.Equal(nilMsg) {
		t.Error("nil vs non-nil should be unequal")
	}
	if !nilMsg.Equal(nil) {
		t.Error("nil vs nil should be equal")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, codec := range allCodecs() {
		t.Run(codec.Name(), func(t *testing.T) {
			m := sampleMessage()
			data, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := codec.Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !m.Equal(got) {
				t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
			}
		})
	}
}

func TestCodecRoundTripMinimal(t *testing.T) {
	for _, codec := range allCodecs() {
		t.Run(codec.Name(), func(t *testing.T) {
			m := &Message{Kind: KindData}
			data, err := codec.Encode(m)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := codec.Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !m.Equal(got) {
				t.Fatalf("round trip mismatch: %+v vs %+v", m, got)
			}
		})
	}
}

func TestCodecRejectsInvalidKind(t *testing.T) {
	for _, codec := range allCodecs() {
		if _, err := codec.Encode(&Message{}); !errors.Is(err, ErrInvalidMessage) {
			t.Errorf("%s: encode of invalid kind: err = %v", codec.Name(), err)
		}
	}
}

func TestCodecDecodeGarbage(t *testing.T) {
	for _, codec := range allCodecs() {
		if _, err := codec.Decode([]byte("!!! not a message !!!")); err == nil {
			t.Errorf("%s: decode of garbage succeeded", codec.Name())
		}
	}
}

func TestBinaryDecodeTruncated(t *testing.T) {
	m := sampleMessage()
	data, err := Binary{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += 3 {
		if _, err := (Binary{}).Decode(data[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(data))
		}
	}
}

func TestBinaryBadMagicAndVersion(t *testing.T) {
	data, _ := Binary{}.Encode(sampleMessage())
	bad := append([]byte(nil), data...)
	bad[0] = 0x00
	if _, err := (Binary{}).Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[1] = 99
	if _, err := (Binary{}).Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
}

func TestBinaryDeterministicHeaders(t *testing.T) {
	m := sampleMessage()
	a, _ := Binary{}.Encode(m)
	for i := 0; i < 10; i++ {
		b, _ := Binary{}.Encode(m)
		if !bytes.Equal(a, b) {
			t.Fatal("binary encoding not deterministic across runs")
		}
	}
}

// TestBinaryHeadersSortedOnWire pins the wire layout the tracing layer
// depends on: header keys are emitted in sorted order regardless of map
// insertion order, so two messages with equal headers (e.g. carrying the same
// trace-id/span-id pair) encode byte-identically.
func TestBinaryHeadersSortedOnWire(t *testing.T) {
	mk := func(insert []string) *Message {
		m := &Message{Kind: KindRequest, Src: "a", Dst: "b", Topic: "t"}
		m.Headers = make(map[string]string, len(insert))
		vals := map[string]string{
			"trace-id": "00000000deadbeef",
			"span-id":  "0000000000000042",
			"queue":    "q1",
			"ttl":      "2",
			// The admission-lane header the endpoint layer stamps (its key is
			// hardcoded here: wire cannot import endpoint). Lane-classified
			// traffic must stay byte-deterministic like traced traffic.
			"ndsm-lane": "control",
		}
		for _, k := range insert {
			m.Headers[k] = vals[k]
		}
		return m
	}
	keys := []string{"trace-id", "span-id", "queue", "ttl", "ndsm-lane"}
	base, err := Binary{}.Encode(mk(keys))
	if err != nil {
		t.Fatal(err)
	}
	// Every insertion order yields the same bytes.
	perms := [][]string{
		{"ttl", "queue", "span-id", "trace-id", "ndsm-lane"},
		{"span-id", "ndsm-lane", "trace-id", "ttl", "queue"},
		{"ndsm-lane", "queue", "ttl", "trace-id", "span-id"},
	}
	for _, p := range perms {
		enc, err := Binary{}.Encode(mk(p))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, enc) {
			t.Fatalf("insertion order %v changed encoding", p)
		}
	}
	// The keys appear in the byte stream in sorted order.
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	pos := -1
	for _, k := range sorted {
		i := bytes.Index(base, []byte(k))
		if i < 0 {
			t.Fatalf("key %q not found in encoding", k)
		}
		if i <= pos {
			t.Fatalf("key %q at offset %d not after previous key (offset %d)", k, i, pos)
		}
		pos = i
	}
	// And the trace context survives the round trip intact.
	got, err := Binary{}.Decode(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Headers["trace-id"] != "00000000deadbeef" || got.Headers["span-id"] != "0000000000000042" {
		t.Fatalf("trace headers lost in round trip: %v", got.Headers)
	}
}

func TestXMLIsMarkup(t *testing.T) {
	data, err := XML{}.Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "<message") || !strings.Contains(s, "kind=\"request\"") {
		t.Fatalf("unexpected xml: %s", s)
	}
}

func TestJSONKindNames(t *testing.T) {
	data, err := JSON{}.Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"request"`) {
		t.Fatalf("unexpected json: %s", data)
	}
}

func TestCodecLookup(t *testing.T) {
	for _, codec := range allCodecs() {
		byCT, err := CodecByContentType(codec.ContentType())
		if err != nil || byCT.Name() != codec.Name() {
			t.Errorf("CodecByContentType(%d) = %v, %v", codec.ContentType(), byCT, err)
		}
		byName, err := CodecByName(codec.Name())
		if err != nil || byName.ContentType() != codec.ContentType() {
			t.Errorf("CodecByName(%q) = %v, %v", codec.Name(), byName, err)
		}
	}
	if _, err := CodecByContentType(99); err == nil {
		t.Error("unknown content type accepted")
	}
	if _, err := CodecByName("yaml"); err == nil {
		t.Error("unknown codec name accepted")
	}
}

// genMessage builds a valid pseudo-random message from quick's fuzz values.
func genMessage(r *rand.Rand) *Message {
	m := &Message{
		ID:       r.Uint64(),
		Kind:     Kind(1 + r.Intn(7)),
		Corr:     r.Uint64(),
		Priority: uint8(r.Intn(256)),
	}
	randStr := func(maxLen int) string {
		n := r.Intn(maxLen)
		b := make([]rune, n)
		for i := range b {
			b[i] = rune('a' + r.Intn(26))
		}
		return string(b)
	}
	m.Src = randStr(12)
	m.Dst = randStr(12)
	m.Topic = randStr(20)
	if r.Intn(2) == 0 {
		m.Deadline = time.Unix(0, r.Int63()).UTC()
	}
	if n := r.Intn(4); n > 0 {
		m.Headers = make(map[string]string, n)
		for i := 0; i < n; i++ {
			m.Headers["k"+randStr(5)] = randStr(8)
		}
	}
	if n := r.Intn(64); n > 0 {
		m.Payload = make([]byte, n)
		r.Read(m.Payload) //nolint:errcheck
	}
	return m
}

// Property: every codec round-trips every valid message.
func TestCodecRoundTripProperty(t *testing.T) {
	for _, codec := range allCodecs() {
		codec := codec
		t.Run(codec.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			f := func() bool {
				m := genMessage(r)
				data, err := codec.Encode(m)
				if err != nil {
					t.Logf("encode: %v", err)
					return false
				}
				got, err := codec.Decode(data)
				if err != nil {
					t.Logf("decode: %v", err)
					return false
				}
				return m.Equal(got)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: binary decode never panics on mutated input.
func TestBinaryDecodeFuzzProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		m := genMessage(r)
		data, err := Binary{}.Encode(m)
		if err != nil {
			return false
		}
		// Flip a few random bytes; decode must either fail or succeed, never panic.
		for i := 0; i < 4 && len(data) > 0; i++ {
			data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
		}
		_, _ = Binary{}.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("frame body")
	if err := WriteFrame(&buf, ContentBinary, body); err != nil {
		t.Fatal(err)
	}
	ct, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ct != ContentBinary || !bytes.Equal(got, body) {
		t.Fatalf("got ct=%d body=%q", ct, got)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ContentJSON, nil); err != nil {
		t.Fatal(err)
	}
	ct, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ct != ContentJSON || len(body) != 0 {
		t.Fatalf("got ct=%d len=%d", ct, len(body))
	}
}

func TestFrameCRCDetection(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ContentBinary, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[7] ^= 0xFF // corrupt a body byte
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameCRC) {
		t.Fatalf("err = %v, want ErrFrameCRC", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	big := make([]byte, 9)
	// Forge a header claiming a huge body.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, ContentBinary}
	if _, _, err := ReadFrame(bytes.NewReader(append(hdr, big...))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, ContentBinary, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameCleanEOF(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ContentBinary, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 2 {
		_, _, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("read of %d/%d bytes succeeded", cut, len(raw))
		}
		if errors.Is(err, io.EOF) && cut >= 5 {
			t.Fatalf("mid-frame truncation at %d reported clean EOF", cut)
		}
	}
}

func TestWriteReadMessage(t *testing.T) {
	for _, codec := range allCodecs() {
		t.Run(codec.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			m := sampleMessage()
			if err := WriteMessage(&buf, codec, m); err != nil {
				t.Fatal(err)
			}
			got, err := ReadMessage(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Equal(got) {
				t.Fatal("message round trip mismatch")
			}
		})
	}
}

func TestWriteMessageInvalid(t *testing.T) {
	if err := WriteMessage(io.Discard, Binary{}, &Message{}); err == nil {
		t.Fatal("invalid message written")
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{sampleMessage(), {Kind: KindAck, ID: 1}, {Kind: KindEvent, Topic: "t", ID: 2}}
	codecs := allCodecs()
	for i, m := range msgs {
		if err := WriteMessage(&buf, codecs[i%len(codecs)], m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !want.Equal(got) {
			t.Fatalf("message %d mismatch", i)
		}
	}
	if _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after all messages: err = %v, want EOF", err)
	}
}

func TestEncodedSizeOrdering(t *testing.T) {
	// The paper-motivated expectation: binary < json < xml for a typical
	// message (E10's shape).
	m := sampleMessage()
	sizes := map[string]int{}
	for _, codec := range allCodecs() {
		data, err := codec.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		sizes[codec.Name()] = len(data)
	}
	if !(sizes["binary"] < sizes["json"] && sizes["json"] <= sizes["xml"]) {
		t.Fatalf("unexpected size ordering: %v", sizes)
	}
}

func reflectDeepEqualGuard(t *testing.T, a, b *Message) {
	t.Helper()
	if a.Equal(b) != reflect.DeepEqual(normalize(a), normalize(b)) {
		t.Fatalf("Equal disagrees with DeepEqual for %+v vs %+v", a, b)
	}
}

// normalize maps empty and nil collections together the way Equal treats them.
func normalize(m *Message) *Message {
	c := m.Clone()
	if len(c.Headers) == 0 {
		c.Headers = nil
	}
	if len(c.Payload) == 0 {
		c.Payload = nil
	}
	c.Deadline = c.Deadline.UTC()
	return c
}

// Property: Equal agrees with reflect.DeepEqual modulo nil/empty collections.
func TestEqualMatchesDeepEqualProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := genMessage(r)
		var b *Message
		if r.Intn(2) == 0 {
			b = a.Clone()
		} else {
			b = genMessage(r)
		}
		reflectDeepEqualGuard(t, a, b)
	}
}
