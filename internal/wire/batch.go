package wire

import (
	"io"
	"sync"
)

// BatchWriter coalesces frames from any number of concurrent senders into
// batched writes: every Send encodes its message into a shared pending
// buffer, and the first sender to arrive while no flush is running becomes
// the flusher, draining everything queued — its own frame plus whatever
// concurrent senders appended meanwhile — in one Write call. Under load this
// collapses N frames into one syscall (the group-commit idiom); with a single
// caller it degenerates to exactly one write per frame, so idle connections
// pay nothing for the machinery.
//
// Send encodes with the codec's append fast path (AppendEncoder) into the
// reused pending buffer, so a steady-state send performs zero allocations.
//
// Error semantics match a socket send buffer: a Send whose bytes were
// accepted before a later write failure may return nil even though the bytes
// never reached the wire. The first write error is sticky — every subsequent
// Send returns it — and the connection's receive side observes the same
// failure, so the endpoint layer tears the connection down either way.
type BatchWriter struct {
	w     io.Writer
	codec Codec

	mu       sync.Mutex
	pending  []byte // frames queued for the active (or next) flush
	spare    []byte // double-buffer: reused as the next pending
	flushing bool
	err      error

	frames  uint64 // frames accepted
	batches uint64 // Write calls issued
}

// NewBatchWriter returns a coalescing frame writer over w encoding with
// codec (Binary if nil).
func NewBatchWriter(w io.Writer, codec Codec) *BatchWriter {
	if codec == nil {
		codec = Binary{}
	}
	return &BatchWriter{w: w, codec: codec}
}

// Send encodes m as one frame and queues it for the next batched write. It
// returns once the frame has been handed to the underlying writer — by this
// call or by the concurrent sender currently flushing.
func (b *BatchWriter) Send(m *Message) error {
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	out, err := AppendMessageFrame(b.pending, b.codec, m)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	b.pending = out
	b.frames++
	if b.flushing {
		// The active flusher's drain loop will pick this frame up; returning
		// now is what lets k concurrent senders share one syscall.
		b.mu.Unlock()
		return nil
	}
	b.flushing = true
	for b.err == nil && len(b.pending) > 0 {
		buf := b.pending
		b.pending = b.spare[:0]
		b.batches++
		b.mu.Unlock()
		_, werr := b.w.Write(buf)
		b.mu.Lock()
		if cap(buf) > maxRetainedScratch {
			buf = nil // one huge batch must not pin its buffer forever
		}
		b.spare = buf[:0]
		if werr != nil {
			b.err = werr
		}
	}
	b.flushing = false
	err = b.err
	b.mu.Unlock()
	return err
}

// Stats reports the number of frames accepted and batched Write calls
// issued. frames/batches is the achieved coalescing factor.
func (b *BatchWriter) Stats() (frames, batches uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames, b.batches
}
