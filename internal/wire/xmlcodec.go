package wire

import (
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"time"
)

// XML is the markup codec the paper's interoperability section (§3.9) calls
// for: a self-describing encoding that middleware written in any language can
// parse. Payload bytes are carried base64-encoded; the deadline is RFC 3339.
type XML struct{}

var _ Codec = XML{}

// xmlEnvelope mirrors Message with marshal-friendly field types.
type xmlEnvelope struct {
	XMLName  xml.Name    `xml:"message"`
	ID       uint64      `xml:"id,attr"`
	Kind     string      `xml:"kind,attr"`
	Corr     uint64      `xml:"corr,attr,omitempty"`
	Priority uint8       `xml:"priority,attr,omitempty"`
	Src      string      `xml:"src,omitempty"`
	Dst      string      `xml:"dst,omitempty"`
	Topic    string      `xml:"topic,omitempty"`
	Deadline string      `xml:"deadline,omitempty"`
	Headers  []xmlHeader `xml:"header"`
	Payload  string      `xml:"payload,omitempty"`
}

type xmlHeader struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// Name implements Codec.
func (XML) Name() string { return "xml" }

// ContentType implements Codec.
func (XML) ContentType() byte { return ContentXML }

// kindFromName maps kind names back to values.
func kindFromName(name string) (Kind, bool) {
	for i := 1; i < len(kindNames); i++ {
		if kindNames[i] == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Encode implements Codec.
func (XML) Encode(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	env := xmlEnvelope{
		ID:       m.ID,
		Kind:     m.Kind.String(),
		Corr:     m.Corr,
		Priority: m.Priority,
		Src:      m.Src,
		Dst:      m.Dst,
		Topic:    m.Topic,
	}
	if !m.Deadline.IsZero() {
		env.Deadline = m.Deadline.UTC().Format(time.RFC3339Nano)
	}
	for _, k := range m.headerKeys() {
		env.Headers = append(env.Headers, xmlHeader{Key: k, Value: m.Headers[k]})
	}
	if len(m.Payload) > 0 {
		env.Payload = base64.StdEncoding.EncodeToString(m.Payload)
	}
	out, err := xml.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("wire: xml encode: %w", err)
	}
	return out, nil
}

// Decode implements Codec.
func (XML) Decode(data []byte) (*Message, error) {
	var env xmlEnvelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: xml: %v", ErrInvalidMessage, err)
	}
	kind, ok := kindFromName(env.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrInvalidMessage, env.Kind)
	}
	m := &Message{
		ID:       env.ID,
		Kind:     kind,
		Corr:     env.Corr,
		Priority: env.Priority,
		Src:      env.Src,
		Dst:      env.Dst,
		Topic:    env.Topic,
	}
	if env.Deadline != "" {
		t, err := time.Parse(time.RFC3339Nano, env.Deadline)
		if err != nil {
			return nil, fmt.Errorf("%w: deadline: %v", ErrInvalidMessage, err)
		}
		m.Deadline = t.UTC()
	}
	if len(env.Headers) > 0 {
		m.Headers = make(map[string]string, len(env.Headers))
		for _, h := range env.Headers {
			m.Headers[h.Key] = h.Value
		}
	}
	if env.Payload != "" {
		p, err := base64.StdEncoding.DecodeString(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("%w: payload base64: %v", ErrInvalidMessage, err)
		}
		m.Payload = p
	}
	return m, nil
}
