package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// frameReaderBuffer is the bufio read-ahead size for FrameReader. One read
// syscall typically pulls in a whole coalesced batch of frames, which the
// reader then slices apart without touching the kernel again.
const frameReaderBuffer = 64 << 10

// maxRetainedScratch bounds the scratch buffer a FrameReader (or BatchWriter)
// keeps across frames. One oversized message must not pin its worth of memory
// for the connection's lifetime.
const maxRetainedScratch = 1 << 20

// FrameReader reads a stream of frames with a single reused scratch buffer:
// after warm-up, a frame read performs no allocations. It is the receive half
// of the batched hot path — the peer's write coalescing lands several frames
// per syscall, and the reader's buffering slices them apart cheaply.
//
// The body slice returned by Next aliases the scratch buffer and is valid
// only until the next Next or ReadMessage call. ReadMessage decodes before
// the scratch is reused, and codecs never alias their input (see Codec), so
// decoded messages are safe to retain indefinitely.
//
// FrameReader is not safe for concurrent use; a connection's single receive
// loop owns it.
type FrameReader struct {
	br      *bufio.Reader
	scratch []byte
	header  [5]byte // reused header buffer; a stack array would escape through io.ReadFull
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, frameReaderBuffer)
	}
	return &FrameReader{br: br}
}

// Next reads one frame, verifying the CRC, and returns the content type and
// body. The body aliases the reader's scratch buffer: it is invalidated by
// the next call. A clean EOF on a frame boundary comes back as io.EOF;
// mid-frame truncation is io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (contentType byte, body []byte, err error) {
	header := fr.header[:]
	if _, err := io.ReadFull(fr.br, header); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read frame header: %w", unexpectEOF(err))
	}
	n := binary.BigEndian.Uint32(header[:4])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	contentType = header[4]
	// Body and trailer arrive in one ReadFull into the reused scratch.
	total := int(n) + 4
	if cap(fr.scratch) < total {
		fr.scratch = make([]byte, total)
	}
	buf := fr.scratch[:total]
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame body: %w", unexpectEOF(err))
	}
	body = buf[:n]
	crc := crc32.Update(crc32.Update(0, crc32.IEEETable, header[4:5]), crc32.IEEETable, body)
	if crc != binary.BigEndian.Uint32(buf[n:]) {
		return 0, nil, ErrFrameCRC
	}
	if cap(fr.scratch) > maxRetainedScratch {
		fr.scratch = nil // do not pin one huge frame's buffer forever
	}
	return contentType, body, nil
}

// ReadMessage reads the next frame and decodes it with the codec named by its
// content-type tag. The returned message owns all its memory (codecs copy out
// of the scratch buffer), so it survives any number of subsequent reads.
func (fr *FrameReader) ReadMessage() (*Message, error) {
	ct, body, err := fr.Next()
	if err != nil {
		return nil, err
	}
	codec, err := CodecByContentType(ct)
	if err != nil {
		return nil, err
	}
	return codec.Decode(body)
}
