package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func batchTestMessage(i int) *Message {
	return &Message{
		ID:      uint64(i + 1),
		Kind:    KindRequest,
		Src:     "client",
		Dst:     "server",
		Topic:   fmt.Sprintf("topic-%d", i%7),
		Corr:    uint64(i),
		Payload: bytes.Repeat([]byte{byte(i)}, i%64),
	}
}

// AppendFrame must be byte-identical to WriteFrame: the batched and unbatched
// paths put the same bytes on the wire.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	body := []byte("hello frame")
	var streamed bytes.Buffer
	if err := WriteFrame(&streamed, ContentBinary, body); err != nil {
		t.Fatal(err)
	}
	appended, err := AppendFrame(nil, ContentBinary, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), appended) {
		t.Fatalf("AppendFrame diverged from WriteFrame:\n %x\n %x", streamed.Bytes(), appended)
	}
	ct, got, err := ReadFrame(bytes.NewReader(appended))
	if err != nil || ct != ContentBinary || !bytes.Equal(got, body) {
		t.Fatalf("ReadFrame(AppendFrame) = %d %q %v", ct, got, err)
	}
}

// AppendMessageFrame must interoperate with the classic per-message reader
// for every codec, including the non-append ones.
func TestAppendMessageFrameRoundTrip(t *testing.T) {
	m := fuzzSeedMessage()
	for _, codec := range fuzzCodecs {
		buf, err := AppendMessageFrame(nil, codec, m)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		got, err := ReadMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s: read back: %v", codec.Name(), err)
		}
		if got.ID != m.ID || got.Topic != m.Topic || !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("%s: round trip changed message: %+v", codec.Name(), got)
		}
	}
}

// chunkReader yields the underlying bytes in caller-chosen chunk sizes,
// exercising frame reads that span split and merged read boundaries.
type chunkReader struct {
	data   []byte
	chunks []int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := len(r.data)
	if len(r.chunks) > 0 {
		n = r.chunks[0]
		r.chunks = r.chunks[1:]
		if n > len(r.data) {
			n = len(r.data)
		}
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// Property: encode → coalesce → split at arbitrary boundaries → decode
// round-trips any message sequence. This is the wire-level guarantee the
// batched hot path rests on.
func TestBatchCoalesceSplitDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		count := 1 + rng.Intn(40)
		var msgs []*Message
		bw := NewBatchWriter(io.Discard, Binary{})
		var wire []byte
		for i := 0; i < count; i++ {
			m := batchTestMessage(rng.Intn(1000))
			if rng.Intn(4) == 0 {
				m.Headers = map[string]string{"k": "v", "n": fmt.Sprint(i)}
			}
			if rng.Intn(3) == 0 {
				m.Deadline = time.Unix(int64(1000+i), 0).UTC()
			}
			msgs = append(msgs, m)
			var err error
			wire, err = AppendMessageFrame(wire, Binary{}, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := bw.Send(m); err != nil {
				t.Fatal(err)
			}
		}
		// Split the coalesced bytes at random boundaries (including 1-byte
		// reads) and decode the sequence back.
		var chunks []int
		for rem := len(wire); rem > 0; {
			n := 1 + rng.Intn(rem)
			chunks = append(chunks, n)
			rem -= n
		}
		fr := NewFrameReader(&chunkReader{data: wire, chunks: chunks})
		for i, want := range msgs {
			got, err := fr.ReadMessage()
			if err != nil {
				t.Fatalf("round %d: frame %d/%d: %v", round, i, count, err)
			}
			if !got.Equal(want) {
				t.Fatalf("round %d: frame %d changed:\n was %+v\n got %+v", round, i, want, got)
			}
		}
		if _, err := fr.ReadMessage(); !errors.Is(err, io.EOF) {
			t.Fatalf("round %d: trailing read = %v, want EOF", round, err)
		}
	}
}

// blockingWriter parks the first Write until released, so concurrent senders
// pile frames into the pending buffer behind the active flusher.
type blockingWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	gate    chan struct{}
	writes  int
	blocked chan struct{} // signalled when the first write is parked
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	first := w.writes == 0
	w.writes++
	w.mu.Unlock()
	if first {
		close(w.blocked)
		<-w.gate
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// Concurrent senders behind a slow writer must coalesce: all frames arrive,
// in many fewer writes than frames.
func TestBatchWriterCoalescesConcurrentSenders(t *testing.T) {
	const senders = 32
	w := &blockingWriter{gate: make(chan struct{}), blocked: make(chan struct{})}
	bw := NewBatchWriter(w, Binary{})

	// First sender becomes the flusher and parks inside Write.
	firstDone := make(chan error, 1)
	go func() { firstDone <- bw.Send(batchTestMessage(0)) }()
	<-w.blocked

	// The rest enqueue while the flusher is parked; they must all return
	// without issuing a Write of their own.
	var wg sync.WaitGroup
	for i := 1; i <= senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := bw.Send(batchTestMessage(i)); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(w.gate)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	frames, batches := bw.Stats()
	if frames != senders+1 {
		t.Fatalf("frames = %d, want %d", frames, senders+1)
	}
	// One write for the parked first frame, one (or a handful) for the
	// coalesced rest.
	if batches >= frames {
		t.Fatalf("no coalescing: %d batches for %d frames", batches, frames)
	}

	// Every frame must be present and intact.
	w.mu.Lock()
	data := append([]byte(nil), w.buf.Bytes()...)
	w.mu.Unlock()
	fr := NewFrameReader(bytes.NewReader(data))
	seen := make(map[uint64]bool)
	for {
		m, err := fr.ReadMessage()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[m.ID] = true
	}
	if len(seen) != senders+1 {
		t.Fatalf("read %d distinct frames, want %d", len(seen), senders+1)
	}
}

type failingWriter struct{ calls int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errors.New("wire down")
}

// A write failure is sticky: later sends fail fast without touching the
// writer again.
func TestBatchWriterStickyError(t *testing.T) {
	w := &failingWriter{}
	bw := NewBatchWriter(w, Binary{})
	if err := bw.Send(batchTestMessage(1)); err == nil {
		t.Fatal("send over failed writer succeeded")
	}
	calls := w.calls
	if err := bw.Send(batchTestMessage(2)); err == nil {
		t.Fatal("send after sticky error succeeded")
	}
	if w.calls != calls {
		t.Fatalf("sticky error still reached the writer (%d calls, was %d)", w.calls, calls)
	}
}

// Pool-aliasing guard: a message decoded off a FrameReader must stay intact
// after the reader's scratch buffer is overwritten by subsequent frames and
// even scribbled on directly — decoded messages must not retain pool-owned
// memory (the latent bug class batching would otherwise introduce).
func TestDecodedMessageDoesNotAliasScratch(t *testing.T) {
	for _, codec := range fuzzCodecs {
		first := fuzzSeedMessage()
		var stream []byte
		var err error
		stream, err = AppendMessageFrame(stream, codec, first)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		second := batchTestMessage(9)
		stream, err = AppendMessageFrame(stream, codec, second)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}

		fr := NewFrameReader(bytes.NewReader(stream))
		got, err := fr.ReadMessage()
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		// Overwrite the scratch by reading the next frame, then scribble over
		// it outright — simulating the pool handing the buffer to another
		// connection.
		if _, err := fr.ReadMessage(); err != nil {
			t.Fatalf("%s: second read: %v", codec.Name(), err)
		}
		for i := range fr.scratch {
			fr.scratch[i] = 0xAA
		}
		if !got.Equal(first) {
			t.Fatalf("%s: decoded message aliases reader scratch:\n was %+v\n got %+v",
				codec.Name(), first, got)
		}
	}
}

// Direct form of the aliasing guard: every codec's Decode must copy out of
// the input buffer it is handed.
func TestDecodeDoesNotAliasInput(t *testing.T) {
	for _, codec := range fuzzCodecs {
		want := fuzzSeedMessage()
		data, err := codec.Encode(want)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		got, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		for i := range data {
			data[i] = 0x55
		}
		if !got.Equal(want) {
			t.Fatalf("%s: decoded message aliases input buffer", codec.Name())
		}
	}
}

// The steady-state batched send path — append-encode into the reused pending
// buffer, one Write — must not allocate. This is the wire half of the
// zero-alloc hot-path guarantee; the endpoint half is pinned in
// internal/endpoint.
func TestBatchWriterSendZeroAlloc(t *testing.T) {
	bw := NewBatchWriter(io.Discard, Binary{})
	m := &Message{ID: 1, Kind: KindRequest, Src: "c", Dst: "s", Topic: "t", Payload: make([]byte, 64)}
	// Warm up the pending/spare double buffer.
	for i := 0; i < 8; i++ {
		if err := bw.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := bw.Send(m); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("BatchWriter.Send allocates %.1f allocs/op in steady state, want 0", allocs)
	}
}

// Binary append-encoding into a warm buffer must not allocate (headerless
// message — the tracing-off shape).
func TestAppendEncodeZeroAlloc(t *testing.T) {
	m := &Message{ID: 1, Kind: KindRequest, Src: "c", Dst: "s", Topic: "t", Payload: make([]byte, 64)}
	buf := make([]byte, 0, 512)
	if allocs := testing.AllocsPerRun(200, func() {
		out, err := (Binary{}).AppendEncode(buf[:0], m)
		if err != nil || len(out) == 0 {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("AppendEncode allocates %.1f allocs/op, want 0", allocs)
	}
}

// Frame reads in steady state reuse the scratch buffer: no allocations.
func TestFrameReaderNextZeroAlloc(t *testing.T) {
	m := &Message{ID: 1, Kind: KindRequest, Topic: "t", Payload: make([]byte, 64)}
	frame, err := AppendMessageFrame(nil, Binary{}, m)
	if err != nil {
		t.Fatal(err)
	}
	stream := bytes.Repeat(frame, 4096)
	r := bytes.NewReader(stream)
	fr := NewFrameReader(r)
	if _, _, err := fr.Next(); err != nil { // warm the scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("FrameReader.Next allocates %.1f allocs/op, want 0", allocs)
	}
}

// Mid-frame truncation must read as ErrUnexpectedEOF, a clean boundary as
// io.EOF — the distinction the endpoint layer uses to tell shutdown from a
// torn connection.
func TestFrameReaderTruncation(t *testing.T) {
	frame, err := AppendMessageFrame(nil, Binary{}, batchTestMessage(3))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		fr := NewFrameReader(bytes.NewReader(frame[:cut]))
		if _, _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(frame))
	if _, _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean boundary err = %v, want io.EOF", err)
	}
}
