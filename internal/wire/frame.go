package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout on stream transports:
//
//	[4 bytes big-endian body length] [1 byte content type] [body] [4 bytes CRC32 (IEEE) of type+body]
//
// The CRC detects corruption introduced by the simulated lossy links and by
// real-network truncation; the content-type byte lets a single connection
// carry messages in any codec, which is what the interop gateway relies on.

// MaxFrameSize bounds a frame body to keep a malicious or corrupted length
// prefix from exhausting memory.
const MaxFrameSize = 16 << 20

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds max size")
	ErrFrameCRC      = errors.New("wire: frame CRC mismatch")
)

// WriteFrame writes one frame carrying body tagged with the codec content
// type.
func WriteFrame(w io.Writer, contentType byte, body []byte) error {
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	header := make([]byte, 5)
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	header[4] = contentType
	crc := crc32.NewIEEE()
	crc.Write(header[4:5]) //nolint:errcheck // hash writes cannot fail
	crc.Write(body)        //nolint:errcheck
	trailer := make([]byte, 4)
	binary.BigEndian.PutUint32(trailer, crc.Sum32())

	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	if _, err := w.Write(trailer); err != nil {
		return fmt.Errorf("wire: write frame trailer: %w", err)
	}
	return nil
}

// AppendFrame appends one frame carrying body to dst and returns the
// extended slice — the allocation-free form of WriteFrame. On error dst is
// returned unchanged.
func AppendFrame(dst []byte, contentType byte, body []byte) ([]byte, error) {
	if len(body) > MaxFrameSize {
		return dst, ErrFrameTooLarge
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, contentType)
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(body)))
	dst = append(dst, body...)
	crc := crc32.Update(0, crc32.IEEETable, dst[start+4:])
	return binary.BigEndian.AppendUint32(dst, crc), nil
}

// AppendMessageFrame encodes m with codec and appends the resulting frame to
// dst. With an AppendEncoder codec the message body is serialized directly
// into dst — no intermediate buffer — which is what keeps the batched
// connection send path allocation-free in steady state. On error dst is
// returned unchanged.
func AppendMessageFrame(dst []byte, codec Codec, m *Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, codec.ContentType())
	out, err := EncodeAppend(codec, dst, m)
	if err != nil {
		return dst[:start], err
	}
	n := len(out) - start - 5
	if n > MaxFrameSize {
		return out[:start], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[start:start+4], uint32(n))
	crc := crc32.Update(0, crc32.IEEETable, out[start+4:])
	return binary.BigEndian.AppendUint32(out, crc), nil
}

// ReadFrame reads one frame, verifying the CRC, and returns the content type
// and body.
func ReadFrame(r io.Reader) (contentType byte, body []byte, err error) {
	header := make([]byte, 5)
	if _, err := io.ReadFull(r, header); err != nil {
		// Propagate EOF unchanged so callers can detect a clean close.
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(header[:4])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	contentType = header[4]
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame body: %w", unexpectEOF(err))
	}
	trailer := make([]byte, 4)
	if _, err := io.ReadFull(r, trailer); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame trailer: %w", unexpectEOF(err))
	}
	crc := crc32.NewIEEE()
	crc.Write(header[4:5]) //nolint:errcheck
	crc.Write(body)        //nolint:errcheck
	if crc.Sum32() != binary.BigEndian.Uint32(trailer) {
		return 0, nil, ErrFrameCRC
	}
	return contentType, body, nil
}

// unexpectEOF converts a clean EOF seen mid-frame into ErrUnexpectedEOF so
// only a close on a frame boundary reads as a clean shutdown.
func unexpectEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteMessage encodes m with codec and writes it as one frame.
func WriteMessage(w io.Writer, codec Codec, m *Message) error {
	body, err := codec.Encode(m)
	if err != nil {
		return err
	}
	return WriteFrame(w, codec.ContentType(), body)
}

// ReadMessage reads one frame and decodes it with the codec named by the
// frame's content-type tag.
func ReadMessage(r io.Reader) (*Message, error) {
	ct, body, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	codec, err := CodecByContentType(ct)
	if err != nil {
		return nil, err
	}
	return codec.Decode(body)
}
