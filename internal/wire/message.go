// Package wire defines the middleware's on-the-wire message model: a common
// envelope (Message), three interchangeable codecs (binary, XML, JSON), and
// length-prefixed CRC-checked framing for stream transports.
//
// Multiple codecs exist deliberately: the paper's interoperability feature
// (§3.9) calls for bridging middleware domains that speak different
// encodings, with XML as the semantic lingua franca. The interop package
// translates between these codecs without touching payload semantics.
package wire

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Kind classifies a message's role in an interaction.
type Kind uint8

// Message kinds. They start at 1 so the zero value is detectably invalid.
const (
	KindRequest Kind = iota + 1 // RPC request
	KindReply                   // RPC reply
	KindData                    // one-way data sample (transactions)
	KindEvent                   // publish-subscribe event
	KindAck                     // delivery acknowledgement
	KindControl                 // middleware-internal control traffic
	KindError                   // error reply
)

// kindNames indexes Kind names for String; index 0 is the invalid zero value.
var kindNames = [...]string{"invalid", "request", "reply", "data", "event", "ack", "control", "error"}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= KindRequest && k <= KindError }

// Message is the envelope every middleware interaction travels in,
// independent of codec and transport.
type Message struct {
	// ID uniquely identifies the message within its source node.
	ID uint64
	// Kind classifies the message.
	Kind Kind
	// Src and Dst are transport-independent node addresses.
	Src string
	Dst string
	// Topic names the service, queue, or event topic addressed.
	Topic string
	// Corr correlates replies and acks with the originating message ID.
	Corr uint64
	// Priority orders scheduling; higher is more urgent.
	Priority uint8
	// Deadline is the latest useful delivery time (zero means none). It
	// feeds the QoS benefit function and the transaction scheduler.
	Deadline time.Time
	// Headers carries extension metadata.
	Headers map[string]string
	// Payload is the opaque application body.
	Payload []byte
}

// ErrInvalidMessage reports an envelope that fails validation.
var ErrInvalidMessage = errors.New("wire: invalid message")

// Validate checks the envelope invariants shared by all codecs.
func (m *Message) Validate() error {
	if m == nil {
		return fmt.Errorf("%w: nil", ErrInvalidMessage)
	}
	if !m.Kind.Valid() {
		return fmt.Errorf("%w: bad kind %d", ErrInvalidMessage, m.Kind)
	}
	return nil
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	if m == nil {
		return nil
	}
	out := *m
	if m.Headers != nil {
		out.Headers = make(map[string]string, len(m.Headers))
		for k, v := range m.Headers {
			out.Headers[k] = v
		}
	}
	if m.Payload != nil {
		out.Payload = append([]byte(nil), m.Payload...)
	}
	return &out
}

// Equal reports whether two messages are semantically identical.
func (m *Message) Equal(o *Message) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.ID != o.ID || m.Kind != o.Kind || m.Src != o.Src || m.Dst != o.Dst ||
		m.Topic != o.Topic || m.Corr != o.Corr || m.Priority != o.Priority {
		return false
	}
	if !m.Deadline.Equal(o.Deadline) {
		return false
	}
	if len(m.Headers) != len(o.Headers) {
		return false
	}
	for k, v := range m.Headers {
		if ov, ok := o.Headers[k]; !ok || ov != v {
			return false
		}
	}
	if len(m.Payload) != len(o.Payload) {
		return false
	}
	for i := range m.Payload {
		if m.Payload[i] != o.Payload[i] {
			return false
		}
	}
	return true
}

// headerKeys returns header keys sorted, for deterministic encodings.
func (m *Message) headerKeys() []string {
	keys := make([]string, 0, len(m.Headers))
	for k := range m.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Codec serializes messages. Implementations must be safe for concurrent use.
//
// Decode must not alias its input: the returned message has to remain valid
// after the caller reuses or mutates data, because connection readers decode
// out of pooled scratch buffers that are overwritten by the next frame (see
// FrameReader). All three shipped codecs copy every string and the payload.
type Codec interface {
	// Name returns the codec's short identifier ("binary", "xml", "json").
	Name() string
	// ContentType returns the one-byte codec tag used in frames.
	ContentType() byte
	// Encode serializes the message.
	Encode(m *Message) ([]byte, error)
	// Decode parses a serialized message.
	Decode(data []byte) (*Message, error)
}

// AppendEncoder is the optional zero-allocation extension of Codec: encoding
// by appending to a caller-owned buffer. Batched connection writers use it to
// serialize straight into a pooled write buffer; codecs that cannot append
// (XML, JSON) fall back to Encode via EncodeAppend.
type AppendEncoder interface {
	// AppendEncode appends m's serialized form to buf and returns the
	// extended slice. On error buf is returned unchanged (same length).
	AppendEncode(buf []byte, m *Message) ([]byte, error)
}

// EncodeAppend serializes m with codec, appending to buf: the codec's
// AppendEncode when it has one, otherwise Encode plus a copy.
func EncodeAppend(codec Codec, buf []byte, m *Message) ([]byte, error) {
	if ae, ok := codec.(AppendEncoder); ok {
		return ae.AppendEncode(buf, m)
	}
	body, err := codec.Encode(m)
	if err != nil {
		return buf, err
	}
	return append(buf, body...), nil
}
