package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// fuzzCodecs are the three codecs FuzzWireDecode exercises. Binary is
// byte-faithful; JSON and XML may normalise strings (escape replacement,
// header ordering), so their round-trip guarantee is stability of the
// re-encoded form rather than byte equality with the fuzz input.
var fuzzCodecs = []Codec{Binary{}, JSON{}, XML{}}

func fuzzSeedMessage() *Message {
	return &Message{
		ID:       42,
		Kind:     KindRequest,
		Src:      "node-a",
		Dst:      "node-b",
		Topic:    "sensor/bp",
		Corr:     7,
		Priority: 3,
		Deadline: time.Date(2003, 6, 1, 12, 0, 0, 500, time.UTC),
		Headers:  map[string]string{"content-type": "binary", "ttl": "2"},
		Payload:  []byte{0x00, 0x01, 0xFE, 0xFF},
	}
}

// fuzzTracedMessage seeds the corpus with a message carrying trace-context
// headers in the on-wire form the endpoint layer injects, so the fuzzer
// explores mutations of trace-id/span-id values from the start.
func fuzzTracedMessage() *Message {
	m := fuzzSeedMessage()
	m.Headers["trace-id"] = "00000000deadbeef"
	m.Headers["span-id"] = "0000000000000042"
	return m
}

// fuzzLaneMessage seeds the corpus with a message carrying the priority-lane
// admission header in its on-wire form ("ndsm-lane", stamped once by the
// endpoint layer like trace context), so the fuzzer explores lane-class
// mutations — valid names, garbage, empty — from the start.
func fuzzLaneMessage() *Message {
	m := fuzzSeedMessage()
	m.Headers["ndsm-lane"] = "control"
	m.Deadline = time.Date(2003, 6, 1, 12, 0, 0, 25_000_000, time.UTC)
	return m
}

// FuzzWireDecode feeds arbitrary bytes to every codec's Decode. A decode may
// reject the input with an error, but it must never panic; and anything it
// accepts must re-encode cleanly into a stable form: Encode succeeds,
// Decode(Encode(m)) succeeds and is semantically equal, and a second
// encode of that result is byte-identical to the first (the encoding is a
// fixed point after one normalisation pass).
func FuzzWireDecode(f *testing.F) {
	for _, seed := range []*Message{fuzzSeedMessage(), fuzzTracedMessage(), fuzzLaneMessage()} {
		for _, c := range fuzzCodecs {
			enc, err := c.Encode(seed)
			if err != nil {
				f.Fatalf("%s: seed encode: %v", c.Name(), err)
			}
			f.Add(enc)
			// Truncated and corrupted variants of a valid encoding probe the
			// error paths that plain garbage rarely reaches.
			f.Add(enc[:len(enc)/2])
			if len(enc) > 4 {
				bad := append([]byte(nil), enc...)
				bad[3] ^= 0xFF
				f.Add(bad)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xD5})                                                       // binary magic, nothing else
	f.Add([]byte(`{"kind":"request"}`))                                       // minimal JSON
	f.Add([]byte(`<message></message>`))                                      // minimal XML
	f.Add([]byte(`{"kind":"nope"}`))                                          // unknown kind
	f.Add([]byte("\xD5\x01\x01\x00\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x01")) // huge uvarint

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range fuzzCodecs {
			m, err := c.Decode(data)
			if err != nil {
				if m != nil {
					t.Fatalf("%s: Decode returned both a message and error %v", c.Name(), err)
				}
				continue
			}
			if m == nil {
				t.Fatalf("%s: Decode returned nil message with nil error", c.Name())
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("%s: Decode accepted invalid message: %v", c.Name(), err)
			}
			enc, err := c.Encode(m)
			if err != nil {
				t.Fatalf("%s: decoded message failed to re-encode: %v", c.Name(), err)
			}
			m2, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s: re-encoded message failed to decode: %v\nencoding: %q", c.Name(), err, enc)
			}
			enc2, err := c.Encode(m2)
			if err != nil {
				t.Fatalf("%s: second re-encode failed: %v", c.Name(), err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("%s: encoding is not a fixed point:\n first: %q\nsecond: %q", c.Name(), enc, enc2)
			}
			// Binary is byte-faithful, so semantic equality must hold too.
			if _, isBinary := c.(Binary); isBinary && !m.Equal(m2) {
				t.Fatalf("binary: round-trip changed message:\n was: %+v\n got: %+v", m, m2)
			}
		}
	})
}

// frameStreamSeed builds a coalesced batch of count frames, as the batched
// write path would put them on the wire.
func frameStreamSeed(f *testing.F, count int) []byte {
	f.Helper()
	var stream []byte
	for i := 0; i < count; i++ {
		m := fuzzSeedMessage()
		m.ID = uint64(i + 1)
		codec := fuzzCodecs[i%len(fuzzCodecs)]
		var err error
		stream, err = AppendMessageFrame(stream, codec, m)
		if err != nil {
			f.Fatalf("%s: seed frame: %v", codec.Name(), err)
		}
	}
	return stream
}

// FuzzFrameStream feeds arbitrary bytes to the batched-path FrameReader as a
// coalesced frame stream. The reader must never panic, must agree frame-for-
// frame (and error-class-for-error-class) with the classic one-frame-per-call
// ReadFrame, and every batch of frames it accepts must re-serialize via
// AppendFrame into a stream that reads back identically.
func FuzzFrameStream(f *testing.F) {
	// Seeds: single frames, merged multi-frame batches, split/truncated
	// boundaries, and CRC corruption inside a batch.
	single := frameStreamSeed(f, 1)
	batch := frameStreamSeed(f, 5)
	f.Add(single)
	f.Add(batch)
	f.Add(batch[:len(batch)-3])              // truncated mid-trailer
	f.Add(batch[:len(single)+2])             // truncated mid-header of frame 2
	f.Add(append(batch[:0:0], batch[5:]...)) // batch missing the first header
	corrupt := append(batch[:0:0], batch...)
	corrupt[len(single)+7] ^= 0xFF // flips a byte inside the second frame
	f.Add(corrupt)
	huge := append(batch[:0:0], batch...)
	huge[0] = 0xFF // length prefix beyond MaxFrameSize
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		classic := bytes.NewReader(data)
		var reser []byte
		var types []byte
		var bodies [][]byte
		for {
			ct, body, err := fr.Next()
			cct, cbody, cerr := ReadFrame(classic)
			if (err == nil) != (cerr == nil) {
				t.Fatalf("batched and classic readers disagree: %v vs %v", err, cerr)
			}
			if err != nil {
				// The error class must match: clean EOF, torn frame, CRC, size.
				for _, sentinel := range []error{io.EOF, io.ErrUnexpectedEOF, ErrFrameCRC, ErrFrameTooLarge} {
					if errors.Is(err, sentinel) != errors.Is(cerr, sentinel) {
						t.Fatalf("error class mismatch on %v: batched %v, classic %v", sentinel, err, cerr)
					}
				}
				break
			}
			if ct != cct || !bytes.Equal(body, cbody) {
				t.Fatalf("frame mismatch: batched (%d, %x) vs classic (%d, %x)", ct, body, cct, cbody)
			}
			types = append(types, ct)
			bodies = append(bodies, append([]byte(nil), body...))
			reser, err = AppendFrame(reser, ct, body)
			if err != nil {
				t.Fatalf("accepted frame failed to re-serialize: %v", err)
			}
		}
		// Round trip: the re-serialized batch must read back frame-identical.
		fr2 := NewFrameReader(bytes.NewReader(reser))
		for i := range bodies {
			ct, body, err := fr2.Next()
			if err != nil {
				t.Fatalf("re-read frame %d/%d: %v", i, len(bodies), err)
			}
			if ct != types[i] || !bytes.Equal(body, bodies[i]) {
				t.Fatalf("re-read frame %d changed: (%d, %x) vs (%d, %x)", i, ct, body, types[i], bodies[i])
			}
		}
		if _, _, err := fr2.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("re-read trailing = %v, want EOF", err)
		}
	})
}
