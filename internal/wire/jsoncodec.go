package wire

import (
	"encoding/json"
	"fmt"
	"time"
)

// JSON is the web-facing codec; the paper's survey notes Internet/WWW
// integration as a middleware driver, and JSON is the modern stand-in for
// the "web-based interaction" technologies of §3.6.
type JSON struct{}

var _ Codec = JSON{}

// jsonEnvelope mirrors Message with tagged, wire-stable field names.
type jsonEnvelope struct {
	ID       uint64            `json:"id"`
	Kind     string            `json:"kind"`
	Corr     uint64            `json:"corr,omitempty"`
	Priority uint8             `json:"priority,omitempty"`
	Src      string            `json:"src,omitempty"`
	Dst      string            `json:"dst,omitempty"`
	Topic    string            `json:"topic,omitempty"`
	Deadline string            `json:"deadline,omitempty"`
	Headers  map[string]string `json:"headers,omitempty"`
	Payload  []byte            `json:"payload,omitempty"` // base64 via encoding/json
}

// Name implements Codec.
func (JSON) Name() string { return "json" }

// ContentType implements Codec.
func (JSON) ContentType() byte { return ContentJSON }

// Encode implements Codec.
func (JSON) Encode(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	env := jsonEnvelope{
		ID:       m.ID,
		Kind:     m.Kind.String(),
		Corr:     m.Corr,
		Priority: m.Priority,
		Src:      m.Src,
		Dst:      m.Dst,
		Topic:    m.Topic,
		Headers:  m.Headers,
		Payload:  m.Payload,
	}
	if !m.Deadline.IsZero() {
		env.Deadline = m.Deadline.UTC().Format(time.RFC3339Nano)
	}
	out, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("wire: json encode: %w", err)
	}
	return out, nil
}

// Decode implements Codec.
func (JSON) Decode(data []byte) (*Message, error) {
	var env jsonEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: json: %v", ErrInvalidMessage, err)
	}
	kind, ok := kindFromName(env.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrInvalidMessage, env.Kind)
	}
	m := &Message{
		ID:       env.ID,
		Kind:     kind,
		Corr:     env.Corr,
		Priority: env.Priority,
		Src:      env.Src,
		Dst:      env.Dst,
		Topic:    env.Topic,
		Headers:  env.Headers,
		Payload:  env.Payload,
	}
	if env.Deadline != "" {
		t, err := time.Parse(time.RFC3339Nano, env.Deadline)
		if err != nil {
			return nil, fmt.Errorf("%w: deadline: %v", ErrInvalidMessage, err)
		}
		m.Deadline = t.UTC()
	}
	return m, nil
}

// CodecByContentType returns the codec registered for the given frame tag.
func CodecByContentType(ct byte) (Codec, error) {
	switch ct {
	case ContentBinary:
		return Binary{}, nil
	case ContentXML:
		return XML{}, nil
	case ContentJSON:
		return JSON{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown content type %d", ct)
	}
}

// CodecByName returns the codec with the given Name.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "binary":
		return Binary{}, nil
	case "xml":
		return XML{}, nil
	case "json":
		return JSON{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q", name)
	}
}
