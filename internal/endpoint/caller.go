package endpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// CallerOptions tunes a Caller.
type CallerOptions struct {
	// Clock drives call timeouts and deadline stamping (default real time).
	Clock simtime.Clock
	// Timeout is the default per-call timeout (0: wait forever).
	Timeout time.Duration
	// Eager dials at construction so NewCaller fails fast on a bad address.
	// Otherwise the first call dials lazily.
	Eager bool
	// Redial re-dials on the next call after a connection failure. Without
	// it a broken connection makes every subsequent call fail with ErrClosed
	// (the classic RPC-client lifecycle).
	Redial bool
	// Interceptors wrap the round-trip, outermost first.
	Interceptors []ClientInterceptor
	// Lane is the default admission lane for calls that leave Call.Lane at
	// LaneDefault — a caller owned by a bulk pipeline (telemetry, batch
	// transfer) classifies all its traffic once here.
	Lane Lane
	// TopicLanes classifies calls by topic when Call.Lane is unset:
	// explicit call lane > topic table > Lane. Resolution happens before
	// the interceptor chain runs, so retry, metrics, and wide-event
	// recording all see the effective lane.
	TopicLanes *LaneTable
	// OnSend and OnRecv observe every message put on / taken off the wire
	// (protocol message-cost accounting). Both may be nil. OnSend observers
	// must not retain the message past the callback: request envelopes are
	// pooled and recycled as soon as the callback returns.
	OnSend func(*wire.Message)
	OnRecv func(*wire.Message)
}

// waiter is one pending call parked in the demux map. Waiters are pooled;
// every send into ch happens while holding Caller.mu, in the same critical
// section that removes the waiter from the map — so once a waiter is
// unreachable from the map, no further send can occur and the channel can be
// safely drained and recycled.
type waiter struct {
	ch       chan waitResult
	gen      uint64    // connection generation the call was sent on
	deadline time.Time // for the periodic sweep; zero means none
}

// sweepInterval is how many calls go by between deadline sweeps of the
// waiter map, resolving futures that were never waited on. Power of two.
const sweepInterval = 256

type waitResult struct {
	m   *wire.Message
	err error
}

// Caller is the client half of the endpoint: one connection, any number of
// concurrent calls demultiplexed by correlation ID. Safe for concurrent use.
type Caller struct {
	tr     transport.Transport
	addr   string
	opts   CallerOptions
	invoke ClientFunc

	nextID atomic.Uint64

	mu      sync.Mutex
	clock   simtime.Clock
	conn    transport.Conn
	gen     uint64 // bumped on every successful dial
	dialed  bool   // at least one dial attempt happened
	waiters map[uint64]*waiter
	closed  bool
	wg      sync.WaitGroup
}

// NewCaller builds a caller for addr over tr. With Eager set the dial
// happens (and can fail) here; otherwise the first call dials.
func NewCaller(tr transport.Transport, addr string, opts CallerOptions) (*Caller, error) {
	clock := opts.Clock
	if clock == nil {
		clock = simtime.Real{}
	}
	c := &Caller{
		tr:      tr,
		addr:    addr,
		opts:    opts,
		clock:   clock,
		waiters: make(map[uint64]*waiter),
	}
	c.invoke = chainClient(opts.Interceptors, c.roundtrip)
	if opts.Eager {
		c.mu.Lock()
		_, _, err := c.ensureConnLocked()
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Addr returns the caller's target address.
func (c *Caller) Addr() string { return c.addr }

// SetClock replaces the timeout clock (virtual-time tests reconfigure
// long-lived clients).
func (c *Caller) SetClock(clock simtime.Clock) {
	if clock == nil {
		clock = simtime.Real{}
	}
	c.mu.Lock()
	c.clock = clock
	c.mu.Unlock()
}

// Do performs one call through the interceptor chain.
func (c *Caller) Do(call *Call) (*wire.Message, error) {
	call.Lane = c.laneFor(call)
	return c.invoke(call)
}

// laneFor resolves a call's effective admission lane: an explicit Call.Lane
// wins, then the caller's topic table, then the caller default. Idempotent,
// so re-resolving a reused Call is harmless.
func (c *Caller) laneFor(call *Call) Lane {
	if call.Lane != LaneDefault {
		return call.Lane
	}
	if lane, ok := c.opts.TopicLanes.Lookup(call.Topic); ok {
		return lane
	}
	return c.opts.Lane
}

// Close shuts the caller down; outstanding calls fail with ErrClosed.
func (c *Caller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	c.wg.Wait()
	return err
}

// ensureConnLocked returns the live connection, dialing if allowed.
func (c *Caller) ensureConnLocked() (transport.Conn, uint64, error) {
	if c.closed {
		return nil, 0, ErrClosed
	}
	if c.conn != nil {
		return c.conn, c.gen, nil
	}
	if c.dialed && !c.opts.Redial {
		// The one connection this caller will ever have is gone.
		return nil, 0, ErrClosed
	}
	c.dialed = true
	conn, err := c.tr.Dial(c.addr)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, c.addr, err)
	}
	c.conn = conn
	c.gen++
	gen := c.gen
	c.wg.Add(1)
	go c.demux(conn, gen)
	return conn, gen, nil
}

// dropConnLocked discards the connection after a failure so the next call
// can redial (when allowed). Only the generation that failed is dropped —
// a concurrent caller may already have re-dialed.
func (c *Caller) dropConnLocked(gen uint64) {
	if c.gen == gen && c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// demux owns conn's receive side: it routes replies to parked waiters by
// correlation ID and, when the connection dies, fails every waiter of its
// generation.
func (c *Caller) demux(conn transport.Conn, gen uint64) {
	defer c.wg.Done()
	for {
		m, err := conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.dropConnLocked(gen)
			failure := fmt.Errorf("%w: connection lost: %v", ErrUnavailable, err)
			if c.closed {
				failure = ErrClosed
			}
			for id, w := range c.waiters {
				if w.gen != gen {
					continue
				}
				delete(c.waiters, id)
				w.ch <- waitResult{err: failure}
			}
			c.mu.Unlock()
			return
		}
		if c.opts.OnRecv != nil {
			c.opts.OnRecv(m)
		}
		c.mu.Lock()
		if w := c.waiters[m.Corr]; w != nil {
			// Removal and delivery share one critical section (the buffered
			// send cannot block: a mapped waiter has never been sent to), so
			// an unmapped waiter is guaranteed fully delivered — the invariant
			// waiter pooling rests on.
			delete(c.waiters, m.Corr)
			w.ch <- waitResult{m: m}
		}
		c.mu.Unlock()
		// Uncorrelated messages (stale replies from timed-out calls) are
		// dropped here — exactly what the per-layer demux loops used to do.
	}
}

// Go starts call without waiting for the reply and returns its Future,
// pipelining any number of requests onto the one connection. With OneWay set
// the returned future resolves as soon as the frame is accepted for sending
// (a shared pre-resolved future on success — the fire-and-forget path
// performs zero allocations in steady state).
//
// Go bypasses the client interceptor chain: retry, breaker, and tracing
// interceptors are synchronous round-trip policies and apply only to Do.
// Pre-send failures (closed caller, failed dial, send error) come back as an
// already-failed future.
func (c *Caller) Go(call *Call) *Future {
	call.Lane = c.laneFor(call)
	fut, err := c.start(call)
	if err != nil {
		return failedFuture(err)
	}
	return fut
}

// roundtrip is the terminal ClientFunc: one correlated exchange — a start
// plus an immediate Wait.
func (c *Caller) roundtrip(call *Call) (*wire.Message, error) {
	fut, err := c.start(call)
	if err != nil {
		return nil, err
	}
	return fut.Wait()
}

// start issues the request on the wire and returns the future for its reply.
func (c *Caller) start(call *Call) (*Future, error) {
	c.mu.Lock()
	conn, gen, err := c.ensureConnLocked()
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	clock := c.clock
	id := c.nextID.Add(1)

	timeout := call.Timeout
	if timeout == 0 {
		timeout = c.opts.Timeout
	}
	if timeout < 0 {
		timeout = 0 // NoTimeout: wait forever
	}
	var deadline time.Time
	if timeout > 0 {
		// Deadline propagation: the server (and anything downstream) sees
		// how long this call stays worth serving.
		deadline = clock.Now().Add(timeout)
	}

	var w *waiter
	var fut *Future
	if !call.OneWay {
		w = getWaiter()
		w.gen = gen
		w.deadline = deadline
		c.waiters[id] = w
		fut = &Future{c: c, id: id, w: w, topic: call.Topic, timeout: timeout, deadline: deadline, clock: clock}
	}
	if id%sweepInterval == 0 {
		// Amortized cleanup for futures nobody waits on: without it an
		// abandoned future's waiter would sit in the map until the connection
		// dies.
		c.sweepLocked(clock.Now())
	}
	c.mu.Unlock()

	kind := call.Kind
	if kind == 0 {
		if call.OneWay {
			kind = wire.KindData
		} else {
			kind = wire.KindRequest
		}
	}
	// Do and Go resolved the effective lane before the chain; roundtrip and
	// direct starts see it on the call. The fallback covers Calls built by
	// hand against older idioms.
	lane := call.Lane
	if lane == LaneDefault {
		lane = c.laneFor(call)
	}
	req := getMsg()
	req.ID = id
	req.Kind = kind
	req.Src = call.Src
	req.Dst = call.Dst
	req.Topic = call.Topic
	req.Headers = laneStamped(call.Headers, lane)
	req.Payload = call.Payload
	req.Deadline = deadline
	err = conn.Send(req)
	if err == nil && c.opts.OnSend != nil {
		c.opts.OnSend(req)
	}
	putMsg(req) // transports and OnSend observers must not retain (see transport.Conn)
	if err != nil {
		if w != nil && c.cancelWaiter(id, w) {
			putWaiter(w)
		}
		c.mu.Lock()
		c.dropConnLocked(gen)
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w: send %s: %v", ErrUnavailable, call.Topic, err)
	}
	if call.OneWay {
		return resolvedFuture, nil
	}
	return fut, nil
}

// cancelWaiter removes id's waiter from the demux map if it is still w, and
// reports whether it did. A false return means the waiter was already
// resolved: its result is guaranteed buffered on w.ch.
func (c *Caller) cancelWaiter(id uint64, w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters[id] == w {
		delete(c.waiters, id)
		return true
	}
	return false
}

// sweepLocked fails every waiter whose deadline has passed. Caller holds
// c.mu; sends are part of the removal critical section (see waiter).
func (c *Caller) sweepLocked(now time.Time) {
	for id, w := range c.waiters {
		if !w.deadline.IsZero() && now.After(w.deadline) {
			delete(c.waiters, id)
			w.ch <- waitResult{err: fmt.Errorf("%w: deadline passed before reply", ErrTimeout)}
		}
	}
}
