package endpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// CallerOptions tunes a Caller.
type CallerOptions struct {
	// Clock drives call timeouts and deadline stamping (default real time).
	Clock simtime.Clock
	// Timeout is the default per-call timeout (0: wait forever).
	Timeout time.Duration
	// Eager dials at construction so NewCaller fails fast on a bad address.
	// Otherwise the first call dials lazily.
	Eager bool
	// Redial re-dials on the next call after a connection failure. Without
	// it a broken connection makes every subsequent call fail with ErrClosed
	// (the classic RPC-client lifecycle).
	Redial bool
	// Interceptors wrap the round-trip, outermost first.
	Interceptors []ClientInterceptor
	// OnSend and OnRecv observe every message put on / taken off the wire
	// (protocol message-cost accounting). Both may be nil.
	OnSend func(*wire.Message)
	OnRecv func(*wire.Message)
}

// waiter is one pending call parked in the demux map.
type waiter struct {
	ch  chan waitResult
	gen uint64 // connection generation the call was sent on
}

type waitResult struct {
	m   *wire.Message
	err error
}

// Caller is the client half of the endpoint: one connection, any number of
// concurrent calls demultiplexed by correlation ID. Safe for concurrent use.
type Caller struct {
	tr     transport.Transport
	addr   string
	opts   CallerOptions
	invoke ClientFunc

	nextID atomic.Uint64

	mu      sync.Mutex
	clock   simtime.Clock
	conn    transport.Conn
	gen     uint64 // bumped on every successful dial
	dialed  bool   // at least one dial attempt happened
	waiters map[uint64]*waiter
	closed  bool
	wg      sync.WaitGroup
}

// NewCaller builds a caller for addr over tr. With Eager set the dial
// happens (and can fail) here; otherwise the first call dials.
func NewCaller(tr transport.Transport, addr string, opts CallerOptions) (*Caller, error) {
	clock := opts.Clock
	if clock == nil {
		clock = simtime.Real{}
	}
	c := &Caller{
		tr:      tr,
		addr:    addr,
		opts:    opts,
		clock:   clock,
		waiters: make(map[uint64]*waiter),
	}
	c.invoke = chainClient(opts.Interceptors, c.roundtrip)
	if opts.Eager {
		c.mu.Lock()
		_, _, err := c.ensureConnLocked()
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Addr returns the caller's target address.
func (c *Caller) Addr() string { return c.addr }

// SetClock replaces the timeout clock (virtual-time tests reconfigure
// long-lived clients).
func (c *Caller) SetClock(clock simtime.Clock) {
	if clock == nil {
		clock = simtime.Real{}
	}
	c.mu.Lock()
	c.clock = clock
	c.mu.Unlock()
}

// Do performs one call through the interceptor chain.
func (c *Caller) Do(call *Call) (*wire.Message, error) {
	return c.invoke(call)
}

// Close shuts the caller down; outstanding calls fail with ErrClosed.
func (c *Caller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	c.wg.Wait()
	return err
}

// ensureConnLocked returns the live connection, dialing if allowed.
func (c *Caller) ensureConnLocked() (transport.Conn, uint64, error) {
	if c.closed {
		return nil, 0, ErrClosed
	}
	if c.conn != nil {
		return c.conn, c.gen, nil
	}
	if c.dialed && !c.opts.Redial {
		// The one connection this caller will ever have is gone.
		return nil, 0, ErrClosed
	}
	c.dialed = true
	conn, err := c.tr.Dial(c.addr)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, c.addr, err)
	}
	c.conn = conn
	c.gen++
	gen := c.gen
	c.wg.Add(1)
	go c.demux(conn, gen)
	return conn, gen, nil
}

// dropConnLocked discards the connection after a failure so the next call
// can redial (when allowed). Only the generation that failed is dropped —
// a concurrent caller may already have re-dialed.
func (c *Caller) dropConnLocked(gen uint64) {
	if c.gen == gen && c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// demux owns conn's receive side: it routes replies to parked waiters by
// correlation ID and, when the connection dies, fails every waiter of its
// generation.
func (c *Caller) demux(conn transport.Conn, gen uint64) {
	defer c.wg.Done()
	for {
		m, err := conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.dropConnLocked(gen)
			failure := fmt.Errorf("%w: connection lost: %v", ErrUnavailable, err)
			if c.closed {
				failure = ErrClosed
			}
			for id, w := range c.waiters {
				if w.gen != gen {
					continue
				}
				delete(c.waiters, id)
				w.ch <- waitResult{err: failure}
			}
			c.mu.Unlock()
			return
		}
		if c.opts.OnRecv != nil {
			c.opts.OnRecv(m)
		}
		c.mu.Lock()
		w := c.waiters[m.Corr]
		if w != nil {
			delete(c.waiters, m.Corr)
		}
		c.mu.Unlock()
		if w != nil {
			w.ch <- waitResult{m: m}
		}
		// Uncorrelated messages (stale replies from timed-out calls) are
		// dropped here — exactly what the per-layer demux loops used to do.
	}
}

// roundtrip is the terminal ClientFunc: one correlated exchange.
func (c *Caller) roundtrip(call *Call) (*wire.Message, error) {
	c.mu.Lock()
	conn, gen, err := c.ensureConnLocked()
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	clock := c.clock
	id := c.nextID.Add(1)
	w := &waiter{ch: make(chan waitResult, 1), gen: gen}
	c.waiters[id] = w
	c.mu.Unlock()

	cancel := func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}

	timeout := call.Timeout
	if timeout == 0 {
		timeout = c.opts.Timeout
	}
	if timeout < 0 {
		timeout = 0 // NoTimeout: wait forever
	}
	kind := call.Kind
	if kind == 0 {
		kind = wire.KindRequest
	}
	req := &wire.Message{
		ID:      id,
		Kind:    kind,
		Src:     call.Src,
		Dst:     call.Dst,
		Topic:   call.Topic,
		Headers: call.Headers,
		Payload: call.Payload,
	}
	if timeout > 0 {
		// Deadline propagation: the server (and anything downstream) sees
		// how long this call stays worth serving.
		req.Deadline = clock.Now().Add(timeout)
	}
	if err := conn.Send(req); err != nil {
		cancel()
		c.mu.Lock()
		c.dropConnLocked(gen)
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w: send %s: %v", ErrUnavailable, call.Topic, err)
	}
	if c.opts.OnSend != nil {
		c.opts.OnSend(req)
	}

	var timer <-chan time.Time
	if timeout > 0 {
		timer = clock.After(timeout)
	}
	select {
	case r := <-w.ch:
		if r.err != nil {
			return nil, r.err
		}
		if r.m.Kind == wire.KindError {
			if r.m.Headers[HeaderShed] != "" {
				return nil, &ShedError{Topic: call.Topic}
			}
			return nil, &RemoteError{Topic: call.Topic, Msg: string(r.m.Payload)}
		}
		return r.m, nil
	case <-timer:
		cancel()
		// The connection stays up: the demux loop discards the late reply
		// (its waiter is gone), so one slow call doesn't cost a reconnect.
		return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, call.Topic, timeout)
	}
}
