package endpoint

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ndsm/internal/obs"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// ServerOptions tunes a Server.
type ServerOptions struct {
	// Name stamps replies' Src when handlers leave it empty.
	Name string
	// Kinds lists the message kinds dispatched to handlers; other kinds are
	// silently ignored (default: KindRequest and KindControl).
	Kinds []wire.Kind
	// OneWayKinds lists kinds dispatched fire-and-forget: the topic handler
	// runs but no reply is written (its return value is discarded), matching
	// calls issued with Call.OneWay. Typical values: KindData, KindEvent. A
	// kind listed here wins over Kinds. Under admission-control overload
	// one-way messages are dropped (and counted as shed) — there is no
	// reply to reject them with.
	OneWayKinds []wire.Kind
	// Interceptors wrap every dispatch, outermost first.
	Interceptors []ServerInterceptor
	// Fallback serves topics with no registered handler (default: a
	// KindError reply naming the topic).
	Fallback Handler
	// MaxInFlight bounds concurrent in-flight requests across all
	// connections (admission control); excess requests are rejected before
	// dispatch with a HeaderShed-marked KindError reply, which callers
	// surface as a retryable *ShedError. 0 means unlimited.
	MaxInFlight int
	// Metrics receives the admission counters (nil: the default registry):
	// shed rejections under "<Name or endpoint.server>.shed".
	Metrics *obs.Registry
}

// Server is the listening half of the endpoint: it accepts connections and
// dispatches each inbound request to its topic handler in a fresh goroutine,
// so a slow handler never head-of-line blocks a connection.
type Server struct {
	listener transport.Listener
	opts     ServerOptions
	dispatch Handler
	accepts  map[wire.Kind]bool
	oneway   map[wire.Kind]bool

	inflight atomic.Int64
	shed     *obs.Counter

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[transport.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer starts serving on the listener in a background accept loop.
func NewServer(l transport.Listener, opts ServerOptions) *Server {
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = []wire.Kind{wire.KindRequest, wire.KindControl}
	}
	metricName := opts.Name
	if metricName == "" {
		metricName = "endpoint.server"
	}
	s := &Server{
		listener: l,
		opts:     opts,
		accepts:  make(map[wire.Kind]bool, len(kinds)),
		oneway:   make(map[wire.Kind]bool, len(opts.OneWayKinds)),
		handlers: make(map[string]Handler),
		conns:    make(map[transport.Conn]struct{}),
		shed:     obs.Or(opts.Metrics).Counter(metricName + ".shed"),
	}
	for _, k := range kinds {
		s.accepts[k] = true
	}
	for _, k := range opts.OneWayKinds {
		s.oneway[k] = true
	}
	s.dispatch = chainServer(opts.Interceptors, s.route)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Handle registers (or replaces) the handler for a topic.
func (s *Server) Handle(topic string, h Handler) {
	s.mu.Lock()
	s.handlers[topic] = h
	s.mu.Unlock()
}

// Unhandle removes a topic's handler; subsequent requests hit the fallback.
func (s *Server) Unhandle(topic string) {
	s.mu.Lock()
	delete(s.handlers, topic)
	s.mu.Unlock()
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

// route is the terminal Handler: topic lookup plus fallback.
func (s *Server) route(req *wire.Message) (*wire.Message, error) {
	s.mu.Lock()
	h := s.handlers[req.Topic]
	s.mu.Unlock()
	if h == nil {
		if s.opts.Fallback != nil {
			return s.opts.Fallback(req)
		}
		return nil, fmt.Errorf("endpoint: no handler for topic %q", req.Topic)
	}
	return h(req)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Replies are written straight from handler goroutines: Conn.Send is
	// safe for concurrent use, and on coalescing transports concurrent
	// replies share one frame batch — serializing them here would cap every
	// batch at a single message.
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		if s.oneway[req.Kind] {
			// Fire-and-forget dispatch: run the handler, write nothing back.
			if s.opts.MaxInFlight > 0 {
				if s.inflight.Add(1) > int64(s.opts.MaxInFlight) {
					s.inflight.Add(-1)
					s.shed.Inc(1) // dropped, not rejected: one-way has no reply channel
					continue
				}
				s.wg.Add(1)
				go func(req *wire.Message) {
					defer s.wg.Done()
					defer s.inflight.Add(-1)
					_, _ = s.dispatch(req)
				}(req)
				continue
			}
			s.wg.Add(1)
			go func(req *wire.Message) {
				defer s.wg.Done()
				_, _ = s.dispatch(req)
			}(req)
			continue
		}
		if !s.accepts[req.Kind] {
			continue
		}
		// Admission control: bound in-flight requests across the whole
		// server. Rejections happen here, before a goroutine is spawned, so
		// overload costs the server one small reply instead of a dispatch.
		bounded := s.opts.MaxInFlight > 0
		if bounded && s.inflight.Add(1) > int64(s.opts.MaxInFlight) {
			s.inflight.Add(-1)
			s.shed.Inc(1)
			reject := &wire.Message{
				Kind:    wire.KindError,
				Corr:    req.ID,
				Topic:   req.Topic,
				Src:     s.opts.Name,
				Headers: map[string]string{HeaderShed: "1"},
				Payload: []byte("server at capacity"),
			}
			_ = conn.Send(reject)
			continue
		}
		s.wg.Add(1)
		go func(req *wire.Message) {
			defer s.wg.Done()
			if bounded {
				defer s.inflight.Add(-1)
			}
			reply, err := s.dispatch(req)
			if err != nil {
				reply = &wire.Message{Kind: wire.KindError, Payload: []byte(err.Error())}
			} else if reply == nil {
				reply = &wire.Message{Kind: wire.KindAck}
			}
			reply.Corr = req.ID
			if reply.Topic == "" {
				reply.Topic = req.Topic
			}
			if reply.Src == "" {
				reply.Src = s.opts.Name
			}
			_ = conn.Send(reply)
		}(req)
	}
}
