package endpoint

import (
	"fmt"
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// ServerOptions tunes a Server.
type ServerOptions struct {
	// Name stamps replies' Src when handlers leave it empty.
	Name string
	// Kinds lists the message kinds dispatched to handlers; other kinds are
	// silently ignored (default: KindRequest and KindControl).
	Kinds []wire.Kind
	// OneWayKinds lists kinds dispatched fire-and-forget: the topic handler
	// runs but no reply is written (its return value is discarded), matching
	// calls issued with Call.OneWay. Typical values: KindData, KindEvent. A
	// kind listed here wins over Kinds. Under admission-control overload
	// one-way messages are dropped (and counted as shed) — there is no
	// reply to reject them with.
	OneWayKinds []wire.Kind
	// Interceptors wrap every dispatch, outermost first.
	Interceptors []ServerInterceptor
	// Fallback serves topics with no registered handler (default: a
	// KindError reply naming the topic).
	Fallback Handler
	// MaxInFlight bounds concurrent in-flight requests across all
	// connections (admission control); excess requests are rejected before
	// dispatch with a HeaderShed-marked KindError reply, which callers
	// surface as a retryable *ShedError. 0 means unlimited.
	MaxInFlight int
	// Lanes enables priority-lane admission control over the MaxInFlight
	// pool: per-lane reserved quotas plus a shared remainder that low lanes
	// borrow from and surrender first, and a deadline-aware pending queue
	// that sheds lowest-benefit work first under overload. Nil keeps the
	// flat single-counter bound.
	Lanes *LaneConfig
	// Metrics receives the admission counters (nil: the default registry):
	// shed rejections under "<Name or endpoint.server>.shed", plus — with
	// Lanes configured — "<name>.shed.expired", "<name>.shed.preempted",
	// and per-lane "<name>.lane.<lane>.{admitted,shed,queued}".
	Metrics *obs.Registry
	// ReqLog receives one wide event per inbound request — dispatched work
	// with queue wait and handler latency, shed work with its reason (sheds
	// never reach the interceptor chain, so this is their only per-request
	// record). Nil disables recording at the cost of one nil check.
	ReqLog *reqlog.Recorder
	// Clock timestamps wide events (default real time; virtual in tests).
	// Should agree with Lanes.Clock when both are set.
	Clock simtime.Clock
}

// Server is the listening half of the endpoint: it accepts connections and
// dispatches each inbound request to its topic handler in a fresh goroutine,
// so a slow handler never head-of-line blocks a connection.
type Server struct {
	listener transport.Listener
	opts     ServerOptions
	dispatch Handler
	accepts  map[wire.Kind]bool
	oneway   map[wire.Kind]bool

	// adm is the admission controller; nil means unlimited (no bound was
	// configured) and requests dispatch straight off the read loop.
	adm *admitter

	// rec is the wide-event recorder (nil: disabled); recLanes mirrors the
	// lane config's topic table so recorded events carry the same effective
	// lane admission charged.
	rec      *reqlog.Recorder
	recLanes map[string]Lane
	clock    simtime.Clock

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[transport.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer starts serving on the listener in a background accept loop.
func NewServer(l transport.Listener, opts ServerOptions) *Server {
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = []wire.Kind{wire.KindRequest, wire.KindControl}
	}
	metricName := opts.Name
	if metricName == "" {
		metricName = "endpoint.server"
	}
	clock := opts.Clock
	if clock == nil {
		if opts.Lanes != nil && opts.Lanes.Clock != nil {
			clock = opts.Lanes.Clock
		} else {
			clock = simtime.Real{}
		}
	}
	s := &Server{
		listener: l,
		opts:     opts,
		accepts:  make(map[wire.Kind]bool, len(kinds)),
		oneway:   make(map[wire.Kind]bool, len(opts.OneWayKinds)),
		handlers: make(map[string]Handler),
		conns:    make(map[transport.Conn]struct{}),
		rec:      opts.ReqLog,
		clock:    clock,
	}
	if opts.Lanes != nil {
		s.recLanes = opts.Lanes.TopicLanes
	}
	capacity := opts.MaxInFlight
	if capacity == 0 && opts.Lanes != nil {
		// Lanes without an explicit bound: the reservations are the bound.
		for _, q := range opts.Lanes.Quota {
			if q > 0 {
				capacity += q
			}
		}
	}
	if capacity > 0 {
		s.adm = newAdmitter(s, capacity, opts.Lanes, metricName, obs.Or(opts.Metrics))
	} else {
		// Register the shed counter even when unlimited, so the metric name
		// exists (at zero) wherever a server runs.
		obs.Or(opts.Metrics).Counter(metricName + ".shed")
	}
	for _, k := range kinds {
		s.accepts[k] = true
	}
	for _, k := range opts.OneWayKinds {
		s.oneway[k] = true
	}
	s.dispatch = chainServer(opts.Interceptors, s.route)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Handle registers (or replaces) the handler for a topic.
func (s *Server) Handle(topic string, h Handler) {
	s.mu.Lock()
	s.handlers[topic] = h
	s.mu.Unlock()
}

// Unhandle removes a topic's handler; subsequent requests hit the fallback.
func (s *Server) Unhandle(topic string) {
	s.mu.Lock()
	delete(s.handlers, topic)
	s.mu.Unlock()
}

// SetLaneQuota re-reserves one lane's admission quota at runtime —
// telemetry-driven adapters widen the control lane while its deadline-miss
// SLO burns and decay it back after recovery. Growth borrows from (and is
// clamped to) the shared pool so total capacity never changes. Reports
// false on servers without lane-aware admission.
func (s *Server) SetLaneQuota(lane Lane, quota int) bool {
	if s.adm == nil || !s.adm.laneAware {
		return false
	}
	s.adm.setQuota(lane.rank(), quota)
	return true
}

// LaneQuota reads a lane's current reserved quota (0 without lane-aware
// admission).
func (s *Server) LaneQuota(lane Lane) int {
	if s.adm == nil || !s.adm.laneAware {
		return 0
	}
	return s.adm.laneQuota(lane.rank())
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers. Queued (admitted-pending) requests are dropped.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	if s.adm != nil {
		s.adm.close()
	}
	s.wg.Wait()
	return nil
}

// route is the terminal Handler: topic lookup plus fallback.
func (s *Server) route(req *wire.Message) (*wire.Message, error) {
	s.mu.Lock()
	h := s.handlers[req.Topic]
	s.mu.Unlock()
	if h == nil {
		if s.opts.Fallback != nil {
			return s.opts.Fallback(req)
		}
		return nil, fmt.Errorf("endpoint: no handler for topic %q", req.Topic)
	}
	return h(req)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Replies are written straight from handler goroutines: Conn.Send is
	// safe for concurrent use, and on coalescing transports concurrent
	// replies share one frame batch — serializing them here would cap every
	// batch at a single message.
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		if !s.oneway[req.Kind] && !s.accepts[req.Kind] {
			continue
		}
		if s.adm == nil {
			s.spawn(req, conn, admitToken{}, 0)
			continue
		}
		// Admission control: the controller either dispatches (spawn), parks
		// the request in a lane queue, or sheds it — before a goroutine is
		// spawned, so overload costs the server one small reply (or, for
		// one-way traffic, nothing) instead of a dispatch.
		s.adm.offer(req, conn)
	}
}

// spawn dispatches req on its own goroutine, releasing the admission slot —
// and promoting queued work onto it — when the handler finishes. The token
// release lives here and nowhere else: whichever path admitted the request
// (straight off the read loop or out of a lane queue), the slot cannot leak
// or double-free. One-way kinds run the handler and write nothing back.
// wait is how long the request sat in an admission queue before dispatch
// (zero off the read loop), carried onto its wide event.
func (s *Server) spawn(req *wire.Message, conn transport.Conn, tok admitToken, wait time.Duration) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.adm.release(tok) // deferred LIFO: release precedes wg.Done
		var start time.Time
		if s.rec != nil {
			start = s.clock.Now()
		}
		if s.oneway[req.Kind] {
			_, err := s.dispatch(req)
			if s.rec != nil {
				now := s.clock.Now()
				s.recordDispatch(req, wait, now.Sub(start), now, err)
			}
			return
		}
		reply, err := s.dispatch(req)
		if s.rec != nil {
			now := s.clock.Now()
			s.recordDispatch(req, wait, now.Sub(start), now, err)
		}
		if err != nil {
			reply = &wire.Message{Kind: wire.KindError, Payload: []byte(err.Error())}
		} else if reply == nil {
			reply = &wire.Message{Kind: wire.KindAck}
		}
		reply.Corr = req.ID
		if reply.Topic == "" {
			reply.Topic = req.Topic
		}
		if reply.Src == "" {
			reply.Src = s.opts.Name
		}
		_ = conn.Send(reply)
	}()
}

// reject answers a shed request with a HeaderShed-marked KindError reply
// carrying the lane the shed was charged to; callers surface it as a
// retryable *ShedError. One-way messages are dropped silently — counted as
// shed, but there is no reply channel to reject them with. wait is time the
// request spent queued before being shed (zero at admission).
func (s *Server) reject(req *wire.Message, conn transport.Conn, lane Lane, reason string, wait time.Duration) {
	if s.rec != nil {
		s.recordShed(req, lane, reason, wait)
	}
	if s.oneway[req.Kind] {
		return
	}
	reject := &wire.Message{
		Kind:    wire.KindError,
		Corr:    req.ID,
		Topic:   req.Topic,
		Src:     s.opts.Name,
		Headers: map[string]string{HeaderShed: "1", HeaderLane: lane.String()},
		Payload: []byte(reason),
	}
	_ = conn.Send(reject)
}
