package endpoint_test

import (
	"sync"
	"testing"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// TestShedBurstKeepsRealCircuitClosed pins the shed/breaker contract against
// the real health.Monitor: a shed is a deliberate, healthy answer from the
// peer, so a shed burst far past FailureThreshold must leave the circuit
// closed and the peer reachable the moment capacity frees.
func TestShedBurstKeepsRealCircuitClosed(t *testing.T) {
	reg := obs.NewRegistry()
	mon := health.NewMonitor(health.Options{FailureThreshold: 2, Registry: reg})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := endpoint.NewServer(l, endpoint.ServerOptions{Name: "srv", MaxInFlight: 1, Metrics: reg})
	c, err := endpoint.NewCaller(tr, "srv", endpoint.CallerOptions{
		Interceptors: []endpoint.ClientInterceptor{
			endpoint.WithBreaker(mon, "srv", reg, "client"),
		},
	})
	if err != nil {
		t.Fatalf("caller: %v", err)
	}
	t.Cleanup(func() {
		_ = c.Close()
		_ = s.Close()
	})
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	first := c.Go(&endpoint.Call{Topic: "work", Timeout: 5 * time.Second})
	<-entered
	for i := 0; i < 6; i++ { // 3× the failure threshold
		if _, err := c.Do(&endpoint.Call{Topic: "work", Timeout: 5 * time.Second}); !endpoint.IsShed(err) {
			t.Fatalf("burst call %d: got %v, want shed", i, err)
		}
	}
	if st := mon.State("srv"); st != health.Closed {
		t.Fatalf("circuit %v after shed burst, want closed", st)
	}
	unblock()
	if _, err := first.Wait(); err != nil {
		t.Fatalf("first: %v", err)
	}
	if _, err := c.Do(&endpoint.Call{Topic: "work", Timeout: 5 * time.Second}); err != nil {
		t.Fatalf("post-burst call: %v", err)
	}
}
