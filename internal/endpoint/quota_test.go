package endpoint

import (
	"sync"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/wire"
)

// TestSetLaneQuotaWidensAdmission pins the runtime re-reservation seam the
// SLO quota adapter drives: with the server saturated, widening the control
// lane's quota admits control work that was being shed a moment before.
func TestSetLaneQuotaWidensAdmission(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }

	s, c := newPair(t, ServerOptions{
		Name:        "srv",
		MaxInFlight: 2,
		Lanes:       &LaneConfig{Quota: map[Lane]int{LaneControl: 1}},
		Metrics:     obs.NewRegistry(),
	}, CallerOptions{})
	t.Cleanup(unblock)
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		entered <- req.Headers[HeaderLane]
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	if q := s.LaneQuota(LaneControl); q != 1 {
		t.Fatalf("initial control quota = %d, want 1", q)
	}

	// Saturate: one bulk call takes the shared slot, one control call takes
	// the reservation. A second control call sheds.
	bulk := c.Go(&Call{Topic: "work", Lane: LaneBulk, Timeout: 5 * time.Second})
	ctl1 := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: 5 * time.Second})
	<-entered
	<-entered
	if _, err := c.Do(&Call{Topic: "work", Lane: LaneControl, Timeout: 5 * time.Second}); !IsShed(err) {
		t.Fatalf("saturated control call: got %v, want shed", err)
	}

	// Widen the reservation at runtime. The next control call admits even
	// though nothing has completed.
	if !s.SetLaneQuota(LaneControl, 2) {
		t.Fatal("SetLaneQuota reported no lane admission")
	}
	if q := s.LaneQuota(LaneControl); q != 2 {
		t.Fatalf("widened control quota = %d, want 2", q)
	}
	ctl2 := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: 5 * time.Second})
	if lane := <-entered; lane != "control" {
		t.Fatalf("post-widen admit: lane %q", lane)
	}

	unblock()
	for _, f := range []*Future{bulk, ctl1, ctl2} {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("in-flight call failed after widen: %v", err)
		}
	}
}

// TestSetLaneQuotaClampsToCapacity: growth is funded by the shared pool, so
// a quota beyond capacity clamps instead of inventing slots, and shrinking
// returns the slots to the pool.
func TestSetLaneQuotaClampsToCapacity(t *testing.T) {
	s, c := newPair(t, ServerOptions{
		Name:        "srv",
		MaxInFlight: 2,
		Lanes:       &LaneConfig{Quota: map[Lane]int{LaneControl: 1}},
		Metrics:     obs.NewRegistry(),
	}, CallerOptions{})
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	s.SetLaneQuota(LaneControl, 100)
	if q := s.LaneQuota(LaneControl); q != 2 {
		t.Fatalf("over-capacity quota = %d, want clamp to 2", q)
	}

	// All capacity is now reserved for control: a bulk call finds no shared
	// slot... but nothing is in flight, so verify via the shrink path
	// instead — returning the quota frees the shared pool again.
	s.SetLaneQuota(LaneControl, 0)
	if q := s.LaneQuota(LaneControl); q != 0 {
		t.Fatalf("released quota = %d, want 0", q)
	}
	if _, err := c.Do(&Call{Topic: "work", Lane: LaneBulk, Timeout: 5 * time.Second}); err != nil {
		t.Fatalf("bulk call after shrink: %v", err)
	}
}

// TestSetLaneQuotaPromotesQueuedWork: widening the reservation must drain
// the pending queue immediately — queued control work cannot wait for an
// unrelated completion to notice the new headroom.
func TestSetLaneQuotaPromotesQueuedWork(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }

	s, c := newPair(t, ServerOptions{
		Name:        "srv",
		MaxInFlight: 2,
		Lanes:       &LaneConfig{Quota: map[Lane]int{LaneControl: 1}, QueueDepth: 2},
		Metrics:     obs.NewRegistry(),
	}, CallerOptions{})
	t.Cleanup(unblock)
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		entered <- req.Headers[HeaderLane]
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	bulk := c.Go(&Call{Topic: "work", Lane: LaneBulk, Timeout: 10 * time.Second})
	ctl1 := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: 10 * time.Second})
	<-entered
	<-entered
	// Queued: both slots busy, depth 2 has room.
	ctl2 := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: 10 * time.Second})
	waitUntil(t, "control call to queue", func() bool { return queuedDepth(s, LaneControl) == 1 })

	s.SetLaneQuota(LaneControl, 2)
	if lane := <-entered; lane != "control" {
		t.Fatalf("promoted lane %q, want control", lane)
	}
	unblock()
	for _, f := range []*Future{bulk, ctl1, ctl2} {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("call failed: %v", err)
		}
	}
}

// queuedDepth reads a lane's pending-queue length.
func queuedDepth(s *Server, lane Lane) int {
	s.adm.mu.Lock()
	defer s.adm.mu.Unlock()
	return len(s.adm.queues[lane.rank()])
}

// TestSetLaneQuotaWithoutLanes: flat and unlimited servers have no lane
// reservations to retune.
func TestSetLaneQuotaWithoutLanes(t *testing.T) {
	flat, _ := newPair(t, ServerOptions{Name: "flat", MaxInFlight: 4}, CallerOptions{})
	if flat.SetLaneQuota(LaneControl, 2) || flat.LaneQuota(LaneControl) != 0 {
		t.Fatal("flat server accepted a lane quota")
	}
	unlimited, _ := newPair(t, ServerOptions{Name: "unlimited"}, CallerOptions{})
	if unlimited.SetLaneQuota(LaneControl, 2) || unlimited.LaneQuota(LaneControl) != 0 {
		t.Fatal("unlimited server accepted a lane quota")
	}
}
