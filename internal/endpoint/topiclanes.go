package endpoint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// LaneTable classifies topics into admission lanes at the caller, so a
// deployment maps its topic space once — in config — instead of touching
// every call site. Exact entries win over prefix rules; among prefix rules
// (entries written with a trailing "*") the longest match wins. Lookup is
// allocation-free: the hot path does one map probe and, only for unmatched
// topics, a scan over the (short, config-sized) rule list.
type LaneTable struct {
	exact    map[string]Lane
	prefixes []prefixRule // sorted longest-first
}

type prefixRule struct {
	prefix string
	lane   Lane
}

// ParseTopicLanes loads a lane table from its JSON form: an object mapping
// topic (or "prefix*") to lane name, e.g.
//
//	{"ctrl/*": "control", "telemetry/report": "bulk", "state/sync": "bulk"}
//
// Unknown lane names, empty patterns, and duplicate patterns are errors —
// a misspelled lane must not silently become default-class traffic.
func ParseTopicLanes(data []byte) (*LaneTable, error) {
	var raw map[string]string
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("endpoint: topic lanes: %w", err)
	}
	t := &LaneTable{exact: make(map[string]Lane, len(raw))}
	for pattern, name := range raw {
		lane, ok := ParseLane(name)
		if !ok {
			return nil, fmt.Errorf("endpoint: topic lanes: unknown lane %q for %q", name, pattern)
		}
		if pattern == "" {
			return nil, fmt.Errorf("endpoint: topic lanes: empty pattern")
		}
		if strings.HasSuffix(pattern, "*") {
			prefix := strings.TrimSuffix(pattern, "*")
			for _, r := range t.prefixes {
				if r.prefix == prefix {
					return nil, fmt.Errorf("endpoint: topic lanes: duplicate prefix %q", pattern)
				}
			}
			t.prefixes = append(t.prefixes, prefixRule{prefix: prefix, lane: lane})
			continue
		}
		t.exact[pattern] = lane
	}
	// Longest prefix first, so "ctrl/actuate/*" beats "ctrl/*"; ties are
	// impossible (duplicates rejected above).
	sort.Slice(t.prefixes, func(i, j int) bool {
		return len(t.prefixes[i].prefix) > len(t.prefixes[j].prefix)
	})
	return t, nil
}

// NewLaneTable builds a table from already-parsed exact mappings (tests and
// programmatic config).
func NewLaneTable(exact map[string]Lane) *LaneTable {
	t := &LaneTable{exact: make(map[string]Lane, len(exact))}
	for topic, lane := range exact {
		t.exact[topic] = lane
	}
	return t
}

// Lookup resolves a topic's configured lane. ok=false means the table has
// no opinion (the caller falls through to its default lane).
func (t *LaneTable) Lookup(topic string) (Lane, bool) {
	if t == nil {
		return LaneDefault, false
	}
	if lane, ok := t.exact[topic]; ok {
		return lane, true
	}
	for _, r := range t.prefixes {
		if strings.HasPrefix(topic, r.prefix) {
			return r.lane, true
		}
	}
	return LaneDefault, false
}

// Len reports how many rules the table holds.
func (t *LaneTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.exact) + len(t.prefixes)
}
