package endpoint

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/wire"
)

// fakeBreaker scripts Allow verdicts and records reports.
type fakeBreaker struct {
	mu        sync.Mutex
	deny      bool
	successes []string
	failures  []string
}

func (b *fakeBreaker) Allow(peer string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.deny {
		return errors.New("scripted open")
	}
	return nil
}

func (b *fakeBreaker) ReportSuccess(peer string) {
	b.mu.Lock()
	b.successes = append(b.successes, peer)
	b.mu.Unlock()
}

func (b *fakeBreaker) ReportFailure(peer string) {
	b.mu.Lock()
	b.failures = append(b.failures, peer)
	b.mu.Unlock()
}

func (b *fakeBreaker) setDeny(v bool) {
	b.mu.Lock()
	b.deny = v
	b.mu.Unlock()
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name          string
		err           error
		retryTimeouts bool
		want          bool
	}{
		{"nil", nil, true, false},
		{"closed", ErrClosed, true, false},
		{"circuit-open", ErrCircuitOpen, true, false},
		{"unavailable", ErrUnavailable, false, true},
		{"timeout-optout", ErrTimeout, false, false},
		{"timeout-optin", ErrTimeout, true, true},
		{"remote", &RemoteError{Topic: "t", Msg: "boom"}, true, false},
		{"shed", &ShedError{Topic: "t"}, false, true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err, tc.retryTimeouts); got != tc.want {
			t.Errorf("%s: Retryable(%v, %v) = %v, want %v", tc.name, tc.err, tc.retryTimeouts, got, tc.want)
		}
	}
}

func TestWithBreakerFailsFastOnOpenCircuit(t *testing.T) {
	b := &fakeBreaker{deny: true}
	reg := obs.NewRegistry()
	var reached bool
	chain := WithBreaker(b, "peer-a", reg, "test")(func(*Call) (*wire.Message, error) {
		reached = true
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	_, err := chain(&Call{Topic: "x"})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if reached {
		t.Fatal("open circuit must not reach the wire")
	}
	if Retryable(err, true) {
		t.Fatal("circuit-open rejections must not be retried")
	}
	if got := reg.Counter("test.breaker_fast_fails").Value(); got != 1 {
		t.Fatalf("breaker_fast_fails = %d, want 1", got)
	}
}

func TestWithBreakerReportsOutcomes(t *testing.T) {
	b := &fakeBreaker{}
	cases := []struct {
		name        string
		err         error
		wantSuccess bool
		wantFailure bool
	}{
		{"ok", nil, true, false},
		{"unavailable", ErrUnavailable, false, true},
		{"timeout", ErrTimeout, false, true},
		{"remote", &RemoteError{Topic: "t", Msg: "app error"}, true, false},
		{"shed", &ShedError{Topic: "t"}, true, false},
		{"closed", ErrClosed, false, false},
	}
	for _, tc := range cases {
		b.successes, b.failures = nil, nil
		chain := WithBreaker(b, "", nil, "test")(func(*Call) (*wire.Message, error) {
			if tc.err != nil {
				return nil, tc.err
			}
			return &wire.Message{Kind: wire.KindReply}, nil
		})
		_, _ = chain(&Call{Topic: "x", Dst: "peer-b"})
		if got := len(b.successes) == 1; got != tc.wantSuccess {
			t.Errorf("%s: success reported=%v, want %v", tc.name, got, tc.wantSuccess)
		}
		if got := len(b.failures) == 1; got != tc.wantFailure {
			t.Errorf("%s: failure reported=%v, want %v", tc.name, got, tc.wantFailure)
		}
		if tc.wantSuccess && b.successes[0] != "peer-b" {
			t.Errorf("%s: breaker keyed by %q, want call.Dst peer-b", tc.name, b.successes[0])
		}
	}
}

func TestWithBreakerRecoversWhenCircuitCloses(t *testing.T) {
	b := &fakeBreaker{deny: true}
	chain := WithBreaker(b, "peer-a", obs.NewRegistry(), "test")(func(*Call) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	if _, err := chain(&Call{Topic: "x"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	b.setDeny(false)
	if _, err := chain(&Call{Topic: "x"}); err != nil {
		t.Fatalf("closed circuit should pass the call: %v", err)
	}
}

func TestAdmissionControlShedsAtCapacity(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	s, c := newPair(t,
		ServerOptions{Name: "srv", MaxInFlight: 2, Metrics: reg},
		CallerOptions{Timeout: 5 * time.Second})
	s.Handle("slow", func(req *wire.Message) (*wire.Message, error) {
		entered <- struct{}{}
		<-release
		return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
	})

	// Fill the admission bound with two parked calls.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Do(&Call{Topic: "slow"})
			errs <- err
		}()
	}
	<-entered
	<-entered

	// The third call must be shed before dispatch, as a retryable error.
	_, err := c.Do(&Call{Topic: "slow"})
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if !IsShed(err) {
		t.Fatal("IsShed(err) = false")
	}
	if !Retryable(err, false) {
		t.Fatal("shed rejections must be retryable")
	}
	if got := reg.Counter("srv.shed").Value(); got != 1 {
		t.Fatalf("srv.shed = %d, want 1", got)
	}

	// Draining the parked calls frees capacity again.
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("parked call failed: %v", err)
		}
	}
	if _, err := c.Do(&Call{Topic: "slow"}); err != nil {
		t.Fatalf("call after drain failed: %v", err)
	}
}

func TestRetryBacksOffOnShedButNotOnRemote(t *testing.T) {
	// A shed reply is retryable: WithRetry re-attempts until capacity frees.
	attempts := 0
	chain := WithRetry(nil, RetryPolicy{Max: 3}, obs.NewRegistry(), "test")(
		func(*Call) (*wire.Message, error) {
			attempts++
			if attempts < 3 {
				return nil, &ShedError{Topic: "x"}
			}
			return &wire.Message{Kind: wire.KindReply}, nil
		})
	if _, err := chain(&Call{Topic: "x"}); err != nil {
		t.Fatalf("retries did not absorb shed replies: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}

	// A remote error is terminal: one attempt, no retries.
	attempts = 0
	chain = WithRetry(nil, RetryPolicy{Max: 3}, obs.NewRegistry(), "test")(
		func(*Call) (*wire.Message, error) {
			attempts++
			return nil, &RemoteError{Topic: "x", Msg: "boom"}
		})
	if _, err := chain(&Call{Topic: "x"}); err == nil {
		t.Fatal("remote error swallowed")
	}
	if attempts != 1 {
		t.Fatalf("terminal remote error retried: attempts = %d, want 1", attempts)
	}
}
