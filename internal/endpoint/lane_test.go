package endpoint

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/wire"
)

// waitUntil polls cond until it holds or the test times out.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLaneStampedOnWire(t *testing.T) {
	var mu sync.Mutex
	var got []string
	s, c := newPair(t, ServerOptions{Name: "srv"}, CallerOptions{})
	s.Handle("probe", func(req *wire.Message) (*wire.Message, error) {
		mu.Lock()
		got = append(got, req.Headers[HeaderLane])
		mu.Unlock()
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	if _, err := c.Do(&Call{Topic: "probe", Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("default-lane call: %v", err)
	}
	if _, err := c.Do(&Call{Topic: "probe", Lane: LaneBulk, Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("bulk-lane call: %v", err)
	}
	// Stamping must not mutate the caller's own header map.
	mine := map[string]string{"trace-id": "abc"}
	if _, err := c.Do(&Call{Topic: "probe", Lane: LaneControl, Headers: mine, Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("control-lane call: %v", err)
	}
	if len(mine) != 1 || mine["trace-id"] != "abc" {
		t.Fatalf("caller's header map mutated: %v", mine)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"", "bulk", "control"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("call %d: lane header %q, want %q (all: %v)", i, got[i], w, want)
		}
	}
}

func TestCallerDefaultLane(t *testing.T) {
	seen := make(chan string, 1)
	s, c := newPair(t, ServerOptions{Name: "srv"}, CallerOptions{Lane: LaneBulk})
	s.Handle("probe", func(req *wire.Message) (*wire.Message, error) {
		seen <- req.Headers[HeaderLane]
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	if _, err := c.Do(&Call{Topic: "probe", Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("call: %v", err)
	}
	if lane := <-seen; lane != "bulk" {
		t.Fatalf("caller default lane not stamped: %q", lane)
	}
	// An explicit per-call lane wins over the caller default.
	if _, err := c.Do(&Call{Topic: "probe", Lane: LaneControl, Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("call: %v", err)
	}
	if lane := <-seen; lane != "control" {
		t.Fatalf("explicit lane did not win: %q", lane)
	}
}

// TestControlQuotaSurvivesBulkSaturation pins the tentpole isolation
// property: with a control-lane reservation, bulk traffic saturating the
// shared pool cannot shed a control request.
func TestControlQuotaSurvivesBulkSaturation(t *testing.T) {
	reg := obs.NewRegistry()
	entered := make(chan string, 8)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }

	s, c := newPair(t, ServerOptions{
		Name:        "srv",
		MaxInFlight: 2,
		Lanes:       &LaneConfig{Quota: map[Lane]int{LaneControl: 1}},
		Metrics:     reg,
	}, CallerOptions{})
	t.Cleanup(unblock)
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		entered <- req.Headers[HeaderLane]
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	// One bulk request takes the single shared slot (capacity 2, one slot
	// reserved for control).
	bulk1 := c.Go(&Call{Topic: "work", Lane: LaneBulk, Timeout: 5 * time.Second})
	if lane := <-entered; lane != "bulk" {
		t.Fatalf("first admit: lane %q", lane)
	}
	// The next bulk request finds no shared slot and must not touch the
	// control reservation.
	_, err := c.Do(&Call{Topic: "work", Lane: LaneBulk, Timeout: 5 * time.Second})
	if !IsShed(err) {
		t.Fatalf("saturating bulk call: got %v, want shed", err)
	}
	var shed *ShedError
	if ok := errors.As(err, &shed); !ok || shed.Lane != LaneBulk {
		t.Fatalf("shed lane not echoed: %+v", shed)
	}
	// Control still admits through its reservation.
	ctl := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: 5 * time.Second})
	if lane := <-entered; lane != "control" {
		t.Fatalf("control admit: lane %q", lane)
	}
	unblock()
	if _, err := bulk1.Wait(); err != nil {
		t.Fatalf("bulk1: %v", err)
	}
	if _, err := ctl.Wait(); err != nil {
		t.Fatalf("ctl: %v", err)
	}
	if v := reg.Counter("srv.lane.bulk.shed").Value(); v != 1 {
		t.Fatalf("bulk shed counter = %d, want 1", v)
	}
	if v := reg.Counter("srv.lane.control.admitted").Value(); v != 1 {
		t.Fatalf("control admitted counter = %d, want 1", v)
	}
	if v := reg.Counter("srv.lane.control.shed").Value(); v != 0 {
		t.Fatalf("control shed counter = %d, want 0", v)
	}
}

// TestQueuePromotesControlFirst pins the pending queue's service order:
// released capacity goes to the highest lane first, regardless of arrival
// order.
func TestQueuePromotesControlFirst(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }

	s, c := newPair(t, ServerOptions{
		Name:        "srv",
		MaxInFlight: 1,
		Lanes:       &LaneConfig{QueueDepth: 4},
		Metrics:     reg,
	}, CallerOptions{})
	t.Cleanup(unblock)
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		mu.Lock()
		order = append(order, req.Headers[HeaderLane])
		mu.Unlock()
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	first := c.Go(&Call{Topic: "work", Timeout: 5 * time.Second})
	waitUntil(t, "first dispatch", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 1
	})
	// Bulk arrives before control; both park in their lane queues.
	bulkF := c.Go(&Call{Topic: "work", Lane: LaneBulk, Timeout: 5 * time.Second})
	ctlF := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: 5 * time.Second})
	waitUntil(t, "both queued", func() bool {
		return reg.Gauge("srv.lane.bulk.queued").Value() == 1 &&
			reg.Gauge("srv.lane.control.queued").Value() == 1
	})
	unblock()
	for _, f := range []*Future{first, ctlF, bulkF} {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"", "control", "bulk"}
	if len(order) != 3 || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestQueueShedsExpiredOnPromotion pins dead-weight shedding: a request
// whose deadline passed while queued is shed at promotion time, never
// dispatched.
func TestQueueShedsExpiredOnPromotion(t *testing.T) {
	reg := obs.NewRegistry()
	clock := simtime.NewVirtual(time.Unix(1000, 0))
	dispatched := make(chan string, 8)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }

	s, c := newPair(t, ServerOptions{
		Name:        "srv",
		MaxInFlight: 1,
		Lanes:       &LaneConfig{QueueDepth: 4, Clock: clock},
		Metrics:     reg,
	}, CallerOptions{Clock: clock})
	t.Cleanup(unblock)
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		dispatched <- req.Headers[HeaderLane]
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	first := c.Go(&Call{Topic: "work", Timeout: NoTimeout})
	<-dispatched
	doomed := c.Go(&Call{Topic: "work", Lane: LaneBulk, Timeout: 50 * time.Millisecond})
	waitUntil(t, "doomed queued", func() bool {
		return reg.Gauge("srv.lane.bulk.queued").Value() == 1
	})
	clock.Advance(100 * time.Millisecond)
	unblock()
	if _, err := first.Wait(); err != nil {
		t.Fatalf("first: %v", err)
	}
	waitUntil(t, "expired shed", func() bool {
		return reg.Counter("srv.shed.expired").Value() == 1
	})
	if _, err := doomed.Wait(); err == nil {
		t.Fatal("expired queued call succeeded")
	}
	select {
	case lane := <-dispatched:
		t.Fatalf("expired request was dispatched (lane %q)", lane)
	default:
	}
}

// TestPreemptionBenefitOrder pins the full-queue preemption rules: a higher
// lane's arrival sheds a queued lower-lane entry; a same-lane arrival only
// tail-drops against fresh work; a lower lane can never displace a higher
// lane's queued entry.
func TestPreemptionBenefitOrder(t *testing.T) {
	reg := obs.NewRegistry()
	clock := simtime.NewVirtual(time.Unix(1000, 0))
	entered := make(chan string, 8)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }

	s, c := newPair(t, ServerOptions{
		Name:        "srv",
		MaxInFlight: 1,
		Lanes:       &LaneConfig{QueueDepth: 1, Clock: clock},
		Metrics:     reg,
	}, CallerOptions{Clock: clock})
	t.Cleanup(unblock)
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		entered <- req.Headers[HeaderLane]
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	first := c.Go(&Call{Topic: "work", Timeout: NoTimeout})
	<-entered

	bulkF := c.Go(&Call{Topic: "work", Lane: LaneBulk, Timeout: time.Second})
	waitUntil(t, "bulk queued", func() bool {
		return reg.Gauge("srv.lane.bulk.queued").Value() == 1
	})
	ctl1 := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: time.Second})
	waitUntil(t, "control queued", func() bool {
		return reg.Gauge("srv.lane.control.queued").Value() == 1
	})
	// Control queue is now full; the next control arrival preempts the
	// queued bulk entry (lower lane) rather than shedding itself.
	ctl2 := c.Go(&Call{Topic: "work", Lane: LaneControl, Timeout: time.Second})
	if _, err := bulkF.Wait(); !IsShed(err) {
		t.Fatalf("bulk entry not preempted: %v", err)
	}
	if v := reg.Counter("srv.shed.preempted").Value(); v != 1 {
		t.Fatalf("preempted counter = %d, want 1", v)
	}
	// Bulk queue freed: a new bulk entry queues, then a second one finds a
	// full queue of fresh same-lane work and tail-drops — and must not touch
	// the queued control entries.
	bulk3 := c.Go(&Call{Topic: "work", Lane: LaneBulk, Timeout: time.Second})
	waitUntil(t, "bulk requeued", func() bool {
		return reg.Gauge("srv.lane.bulk.queued").Value() == 1
	})
	_, err := c.Do(&Call{Topic: "work", Lane: LaneBulk, Timeout: time.Second})
	if !IsShed(err) {
		t.Fatalf("tail-drop bulk call: got %v, want shed", err)
	}
	if v := reg.Counter("srv.lane.control.shed").Value(); v != 0 {
		t.Fatalf("control entries were disturbed: shed = %d", v)
	}
	unblock()
	for name, f := range map[string]*Future{"first": first, "ctl1": ctl1, "ctl2": ctl2, "bulk3": bulk3} {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestShedBurstDoesNotTripBreaker is the shed/breaker contract: a shed is a
// server-healthy signal (the peer answered, deliberately), so a burst of
// sheds — even through a retry interceptor — reports successes to the
// breaker and never opens it.
func TestShedBurstDoesNotTripBreaker(t *testing.T) {
	reg := obs.NewRegistry()
	b := &fakeBreaker{}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }

	s, c := newPair(t, ServerOptions{Name: "srv", MaxInFlight: 1, Metrics: reg}, CallerOptions{
		Interceptors: []ClientInterceptor{
			WithBreaker(b, "srv", reg, "client"),
			WithRetry(nil, RetryPolicy{Max: 1}, reg, "client"),
		},
	})
	t.Cleanup(unblock)
	s.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	// Occupy the only slot (Go bypasses the interceptor chain).
	first := c.Go(&Call{Topic: "work", Timeout: 5 * time.Second})
	<-entered

	const burst = 5
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do(&Call{Topic: "work", Timeout: 5 * time.Second})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !IsShed(err) {
			t.Fatalf("burst call %d: got %v, want shed", i, err)
		}
	}
	b.mu.Lock()
	failures, successes := len(b.failures), len(b.successes)
	b.mu.Unlock()
	if failures != 0 {
		t.Fatalf("shed burst reported %d breaker failures", failures)
	}
	if successes < burst {
		t.Fatalf("breaker saw %d successes, want >= %d (sheds are proof of life)", successes, burst)
	}
	// The sheds were retried (retryable class) before surfacing.
	if v := reg.Counter("client.retries").Value(); v == 0 {
		t.Fatal("sheds were not retried")
	}
	unblock()
	if _, err := first.Wait(); err != nil {
		t.Fatalf("first: %v", err)
	}
	if _, err := c.Do(&Call{Topic: "work", Timeout: 5 * time.Second}); err != nil {
		t.Fatalf("post-burst call through breaker: %v", err)
	}
}

// The real-health.Monitor variant of the shed/breaker contract lives in
// lane_external_test.go (package endpoint_test): health imports discovery,
// which imports endpoint, so it cannot be linked into this package's tests.
