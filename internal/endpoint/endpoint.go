// Package endpoint is the middleware's single request/reply substrate: one
// generic correlated-exchange engine over any transport.Transport, shared by
// the discovery registry protocol, the RPC interaction style, the message
// queue client, and the kernel's consumer bindings — layers that previously
// each hand-rolled their own pending-map, demux loop, and timeout handling.
//
// The engine has two halves:
//
//   - Caller: dials an address, multiplexes any number of concurrent calls
//     over one connection by correlation ID, applies per-call deadlines, and
//     (optionally) re-dials after a connection failure.
//   - Server: accepts connections, dispatches each inbound request to a
//     topic handler in its own goroutine (no head-of-line blocking), and
//     writes the correlated reply.
//
// Both halves run their traffic through a composable interceptor chain —
// retry with jittered exponential backoff, metrics, deadline propagation,
// trace logging — so policy lives in middleware, not in every protocol
// (the "policy-free middleware" argument of Dearle et al.).
package endpoint

import (
	"errors"
	"fmt"
	"time"

	"ndsm/internal/wire"
)

// Endpoint errors. ErrUnavailable marks transport-level failures (dial,
// send, connection broken) — the retryable class; ErrTimeout marks an
// expired call deadline; ErrClosed means the caller or server was shut down
// deliberately and retrying is pointless; ErrCircuitOpen means a breaker
// rejected the call before it touched the wire — fail fast, pick another
// peer, do not retry the same one.
var (
	ErrClosed      = errors.New("endpoint: closed")
	ErrTimeout     = errors.New("endpoint: call timed out")
	ErrUnavailable = errors.New("endpoint: peer unavailable")
	ErrCircuitOpen = errors.New("endpoint: circuit open")
)

// HeaderShed marks a KindError reply as a load-shed rejection: the server
// was at capacity and never dispatched the request. Callers surface it as a
// *ShedError, which is retryable (with backoff) — unlike a RemoteError, the
// request was not executed.
const HeaderShed = "ndsm-shed"

// NoTimeout as a Call.Timeout means "wait forever", overriding any caller
// default.
const NoTimeout time.Duration = -1

// RemoteError is an application-level error reply (a KindError message from
// the peer). It is never retried: the request was delivered and the peer
// answered.
type RemoteError struct {
	Topic string
	Msg   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("endpoint: remote error on %s: %s", e.Topic, e.Msg)
}

// Retryable implements RetryableError: a remote error is terminal — the
// request was delivered, executed, and answered.
func (e *RemoteError) Retryable() bool { return false }

// IsRemote reports whether err is (or wraps) a peer-reported error and
// returns it.
func IsRemote(err error) (*RemoteError, bool) {
	var re *RemoteError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// ShedError is a load-shed rejection: the peer was at its admission bound
// and refused the request before dispatching it. Unlike RemoteError the
// request never executed, so retrying (with backoff, so the overloaded peer
// gets air) is safe even for non-idempotent protocols.
type ShedError struct {
	Topic string
	// Lane is the admission lane the shed was charged to, echoed by the
	// server on the reject reply (LaneDefault when the peer predates lanes).
	Lane Lane
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("endpoint: %s shed by overloaded peer (lane %s)", e.Topic, e.Lane)
}

// Retryable implements RetryableError.
func (e *ShedError) Retryable() bool { return true }

// IsShed reports whether err is (or wraps) a load-shed rejection.
func IsShed(err error) bool {
	var se *ShedError
	return errors.As(err, &se)
}

// RetryableError lets an error type declare its own retry class, overriding
// the sentinel-based classification: shed rejections are retryable even
// though the peer answered; remote errors are terminal even when wrapped.
type RetryableError interface {
	error
	Retryable() bool
}

// Retryable reports whether err is a failure worth retrying: typed errors
// decide for themselves (RetryableError), unavailability is always
// retryable, timeouts only if the caller opted in at the policy level (see
// RetryPolicy.RetryTimeouts). ErrClosed (deliberate shutdown) and
// ErrCircuitOpen (breaker rejection — the next attempt would be rejected
// identically) are never retried.
func Retryable(err error, retryTimeouts bool) bool {
	if err == nil || errors.Is(err, ErrClosed) || errors.Is(err, ErrCircuitOpen) {
		return false
	}
	var re RetryableError
	if errors.As(err, &re) {
		return re.Retryable()
	}
	if errors.Is(err, ErrTimeout) {
		return retryTimeouts
	}
	return errors.Is(err, ErrUnavailable)
}

// Call describes one request/reply exchange.
type Call struct {
	// Kind is the request's message kind (default wire.KindRequest).
	Kind wire.Kind
	// Topic names the method, registry operation, or queue verb addressed.
	Topic string
	// Src and Dst optionally stamp the envelope's addresses.
	Src, Dst string
	// Headers carries extension metadata.
	Headers map[string]string
	// Payload is the opaque request body.
	Payload []byte
	// Timeout bounds the exchange: 0 uses the caller's default, NoTimeout
	// waits forever. The deadline also propagates on the wire (Message
	// .Deadline) so servers and downstream hops can shed doomed work.
	Timeout time.Duration
	// Lane is the call's admission priority class, stamped once here at the
	// endpoint layer as an in-band header (HeaderLane) — like trace context —
	// so bounded servers along the path can isolate control traffic from
	// bulk load. The zero value (LaneDefault, or the caller's default lane)
	// adds no header and no allocation.
	Lane Lane
	// OneWay marks the call fire-and-forget: no reply is awaited and no
	// demux state is parked. The default kind becomes wire.KindData, and the
	// server must list that kind in ServerOptions.OneWayKinds to dispatch it.
	// The future returned by Caller.Go resolves as soon as the frame is
	// accepted for sending.
	OneWay bool

	// attempts counts extra attempts WithRetry spent on this call, read by
	// the wide-event interceptor outside it. Interceptor-chain plumbing, not
	// caller state: WithWideEvents zeroes it before the chain runs.
	attempts int
}

// ClientFunc performs a call: the terminal one is the caller's round-trip;
// interceptors wrap it.
type ClientFunc func(*Call) (*wire.Message, error)

// ClientInterceptor wraps a ClientFunc with cross-cutting behavior (retry,
// metrics, tracing). Interceptors compose outermost-first.
type ClientInterceptor func(next ClientFunc) ClientFunc

// Handler serves one inbound request and returns the reply message. The
// server fills in correlation, topic, and source; the handler chooses the
// reply kind (KindReply, KindAck, ...) and payload. Returning an error sends
// a KindError reply with the error text as payload.
type Handler func(req *wire.Message) (*wire.Message, error)

// ServerInterceptor wraps a Handler with cross-cutting behavior.
// Interceptors compose outermost-first.
type ServerInterceptor func(next Handler) Handler

// chainClient composes interceptors around the terminal ClientFunc.
func chainClient(interceptors []ClientInterceptor, terminal ClientFunc) ClientFunc {
	out := terminal
	for i := len(interceptors) - 1; i >= 0; i-- {
		out = interceptors[i](out)
	}
	return out
}

// chainServer composes interceptors around the terminal Handler.
func chainServer(interceptors []ServerInterceptor, terminal Handler) Handler {
	out := terminal
	for i := len(interceptors) - 1; i >= 0; i-- {
		out = interceptors[i](out)
	}
	return out
}
