// Package endpoint is the middleware's single request/reply substrate: one
// generic correlated-exchange engine over any transport.Transport, shared by
// the discovery registry protocol, the RPC interaction style, the message
// queue client, and the kernel's consumer bindings — layers that previously
// each hand-rolled their own pending-map, demux loop, and timeout handling.
//
// The engine has two halves:
//
//   - Caller: dials an address, multiplexes any number of concurrent calls
//     over one connection by correlation ID, applies per-call deadlines, and
//     (optionally) re-dials after a connection failure.
//   - Server: accepts connections, dispatches each inbound request to a
//     topic handler in its own goroutine (no head-of-line blocking), and
//     writes the correlated reply.
//
// Both halves run their traffic through a composable interceptor chain —
// retry with jittered exponential backoff, metrics, deadline propagation,
// trace logging — so policy lives in middleware, not in every protocol
// (the "policy-free middleware" argument of Dearle et al.).
package endpoint

import (
	"errors"
	"fmt"
	"time"

	"ndsm/internal/wire"
)

// Endpoint errors. ErrUnavailable marks transport-level failures (dial,
// send, connection broken) — the retryable class; ErrTimeout marks an
// expired call deadline; ErrClosed means the caller or server was shut down
// deliberately and retrying is pointless.
var (
	ErrClosed      = errors.New("endpoint: closed")
	ErrTimeout     = errors.New("endpoint: call timed out")
	ErrUnavailable = errors.New("endpoint: peer unavailable")
)

// NoTimeout as a Call.Timeout means "wait forever", overriding any caller
// default.
const NoTimeout time.Duration = -1

// RemoteError is an application-level error reply (a KindError message from
// the peer). It is never retried: the request was delivered and the peer
// answered.
type RemoteError struct {
	Topic string
	Msg   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("endpoint: remote error on %s: %s", e.Topic, e.Msg)
}

// IsRemote reports whether err is (or wraps) a peer-reported error and
// returns it.
func IsRemote(err error) (*RemoteError, bool) {
	var re *RemoteError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// Retryable reports whether err is a transport-level failure worth retrying
// on: unavailability always, timeouts only if the caller opted in at the
// policy level (see RetryPolicy.RetryTimeouts).
func Retryable(err error, retryTimeouts bool) bool {
	if err == nil || errors.Is(err, ErrClosed) {
		return false
	}
	if _, remote := IsRemote(err); remote {
		return false
	}
	if errors.Is(err, ErrTimeout) {
		return retryTimeouts
	}
	return errors.Is(err, ErrUnavailable)
}

// Call describes one request/reply exchange.
type Call struct {
	// Kind is the request's message kind (default wire.KindRequest).
	Kind wire.Kind
	// Topic names the method, registry operation, or queue verb addressed.
	Topic string
	// Src and Dst optionally stamp the envelope's addresses.
	Src, Dst string
	// Headers carries extension metadata.
	Headers map[string]string
	// Payload is the opaque request body.
	Payload []byte
	// Timeout bounds the exchange: 0 uses the caller's default, NoTimeout
	// waits forever. The deadline also propagates on the wire (Message
	// .Deadline) so servers and downstream hops can shed doomed work.
	Timeout time.Duration
}

// ClientFunc performs a call: the terminal one is the caller's round-trip;
// interceptors wrap it.
type ClientFunc func(*Call) (*wire.Message, error)

// ClientInterceptor wraps a ClientFunc with cross-cutting behavior (retry,
// metrics, tracing). Interceptors compose outermost-first.
type ClientInterceptor func(next ClientFunc) ClientFunc

// Handler serves one inbound request and returns the reply message. The
// server fills in correlation, topic, and source; the handler chooses the
// reply kind (KindReply, KindAck, ...) and payload. Returning an error sends
// a KindError reply with the error text as payload.
type Handler func(req *wire.Message) (*wire.Message, error)

// ServerInterceptor wraps a Handler with cross-cutting behavior.
// Interceptors compose outermost-first.
type ServerInterceptor func(next Handler) Handler

// chainClient composes interceptors around the terminal ClientFunc.
func chainClient(interceptors []ClientInterceptor, terminal ClientFunc) ClientFunc {
	out := terminal
	for i := len(interceptors) - 1; i >= 0; i-- {
		out = interceptors[i](out)
	}
	return out
}

// chainServer composes interceptors around the terminal Handler.
func chainServer(interceptors []ServerInterceptor, terminal Handler) Handler {
	out := terminal
	for i := len(interceptors) - 1; i >= 0; i-- {
		out = interceptors[i](out)
	}
	return out
}
