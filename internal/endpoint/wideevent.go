package endpoint

import (
	"errors"
	"time"

	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
	"ndsm/internal/wire"
)

// WideEventOptions configures WithWideEvents.
type WideEventOptions struct {
	// Recorder receives one wide event per call. Nil makes the interceptor a
	// zero-allocation pass-through (the same disabled-path idiom as tracing).
	Recorder *reqlog.Recorder
	// Clock times the call (default real time). Must agree with the caller's
	// clock so deadline slack is meaningful.
	Clock simtime.Clock
	// Peer labels events whose call has no Dst (the caller's dial address).
	Peer string
	// DefaultTimeout mirrors CallerOptions.Timeout so calls that inherit the
	// caller-level deadline still report slack.
	DefaultTimeout time.Duration
}

// WithWideEvents records one wide event per logical call — after retries, so
// the event carries the attempt count and the final outcome. Place it
// outermost: the tracing interceptor inside it injects trace context into the
// call's headers, which is where the event's exemplar IDs come from.
//
// Together with the server-side recording built into Server (see
// ServerOptions.ReqLog) this gives every rpc/mq/discovery/core exchange two
// wide events — the caller's view (retries, total latency) and the server's
// (queue wait, dispatch latency) — with no per-protocol call sites.
func WithWideEvents(opts WideEventOptions) ClientInterceptor {
	rec := opts.Recorder
	clock := opts.Clock
	if clock == nil {
		clock = simtime.Real{}
	}
	return func(next ClientFunc) ClientFunc {
		if rec == nil {
			return next
		}
		return func(call *Call) (*wire.Message, error) {
			start := clock.Now()
			call.attempts = 0
			m, err := next(call)
			end := clock.Now()

			ev := reqlog.Record{
				Time:    end,
				Kind:    reqlog.KindClient,
				Topic:   call.Topic,
				Peer:    call.Dst,
				Lane:    call.Lane.String(),
				Outcome: clientOutcome(err),
				Latency: end.Sub(start),
				Retries: call.attempts,
			}
			if ev.Peer == "" {
				ev.Peer = opts.Peer
			}
			timeout := call.Timeout
			if timeout == 0 {
				timeout = opts.DefaultTimeout
			}
			if timeout > 0 {
				ev.HasDeadline = true
				ev.DeadlineSlack = timeout - ev.Latency
			}
			// The tracing interceptor (inside this one) replaced call.Headers
			// with a trace-stamped copy; lift the IDs as exemplars.
			if ctx := trace.Extract(call.Headers); ctx.Valid() {
				ev.TraceID, ev.SpanID = ctx.TraceID, ctx.SpanID
			}
			rec.Record(ev)
			return m, err
		}
	}
}

// clientOutcome folds the endpoint error taxonomy into the wide-event
// outcome vocabulary.
func clientOutcome(err error) string {
	switch {
	case err == nil:
		return reqlog.OutcomeOK
	case IsShed(err):
		return reqlog.OutcomeShed
	case errors.Is(err, ErrTimeout):
		return reqlog.OutcomeTimeout
	case errors.Is(err, ErrUnavailable), errors.Is(err, ErrClosed), errors.Is(err, ErrCircuitOpen):
		return reqlog.OutcomeUnavailable
	default:
		return reqlog.OutcomeError
	}
}

// recordDispatch emits the server-side wide event for a dispatched request.
// Called from the spawn goroutine after the handler returns; s.rec is nil
// when no recorder was configured (checked by the caller, so the disabled
// path costs one nil test).
func (s *Server) recordDispatch(req *wire.Message, wait, latency time.Duration, now time.Time, handlerErr error) {
	ev := reqlog.Record{
		Time:      now,
		Kind:      reqlog.KindServer,
		Topic:     req.Topic,
		Peer:      req.Src,
		Lane:      laneOf(req, s.recLanes).String(),
		Outcome:   reqlog.OutcomeOK,
		Latency:   latency,
		QueueWait: wait,
	}
	if handlerErr != nil {
		ev.Outcome = reqlog.OutcomeError
	}
	if !req.Deadline.IsZero() {
		ev.HasDeadline = true
		ev.DeadlineSlack = req.Deadline.Sub(now)
	}
	if ctx := trace.Extract(req.Headers); ctx.Valid() {
		ev.TraceID, ev.SpanID = ctx.TraceID, ctx.SpanID
	}
	s.rec.Record(ev)
}

// recordShed emits the server-side wide event for a shed request. Sheds
// never reach the interceptor chain or a handler, so this hook in reject is
// the only place they become observable per-request — the chaos harness's
// tail-capture invariant leans on it.
func (s *Server) recordShed(req *wire.Message, lane Lane, reason string, wait time.Duration) {
	now := s.clock.Now()
	ev := reqlog.Record{
		Time:       now,
		Kind:       reqlog.KindServer,
		Topic:      req.Topic,
		Peer:       req.Src,
		Lane:       lane.String(),
		Outcome:    reqlog.OutcomeShed,
		ShedReason: reason,
		QueueWait:  wait,
	}
	if !req.Deadline.IsZero() {
		ev.HasDeadline = true
		ev.DeadlineSlack = req.Deadline.Sub(now)
	}
	if ctx := trace.Extract(req.Headers); ctx.Valid() {
		ev.TraceID, ev.SpanID = ctx.TraceID, ctx.SpanID
	}
	s.rec.Record(ev)
}
