package endpoint

import (
	"testing"

	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

func TestParseTopicLanes(t *testing.T) {
	tbl, err := ParseTopicLanes([]byte(`{
		"ctrl/*":        "control",
		"ctrl/debug":    "default",
		"telemetry/*":   "bulk",
		"state/sync":    "bulk"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		topic string
		want  Lane
		hit   bool
	}{
		{"ctrl/actuate", LaneControl, true},
		{"ctrl/debug", LaneDefault, true}, // exact beats prefix
		{"telemetry/report", LaneBulk, true},
		{"state/sync", LaneBulk, true},
		{"state/sync/extra", LaneDefault, false}, // exact is not a prefix
		{"orders/create", LaneDefault, false},
	}
	for _, tc := range cases {
		got, hit := tbl.Lookup(tc.topic)
		if got != tc.want || hit != tc.hit {
			t.Errorf("Lookup(%q) = %v,%v want %v,%v", tc.topic, got, hit, tc.want, tc.hit)
		}
	}
	if tbl.Len() != 4 {
		t.Errorf("Len = %d, want 4", tbl.Len())
	}
}

func TestParseTopicLanesLongestPrefixWins(t *testing.T) {
	tbl, err := ParseTopicLanes([]byte(`{"a/*": "bulk", "a/b/*": "control"}`))
	if err != nil {
		t.Fatal(err)
	}
	if lane, _ := tbl.Lookup("a/b/c"); lane != LaneControl {
		t.Errorf("a/b/c = %v, want control", lane)
	}
	if lane, _ := tbl.Lookup("a/x"); lane != LaneBulk {
		t.Errorf("a/x = %v, want bulk", lane)
	}
}

func TestParseTopicLanesRejectsBadConfig(t *testing.T) {
	for name, data := range map[string]string{
		"bad json":     `{`,
		"unknown lane": `{"a": "express"}`,
		"empty key":    `{"": "bulk"}`,
	} {
		if _, err := ParseTopicLanes([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLaneTableNilAndLookupAllocFree(t *testing.T) {
	var nilTbl *LaneTable
	if _, ok := nilTbl.Lookup("x"); ok {
		t.Error("nil table matched")
	}
	if nilTbl.Len() != 0 {
		t.Error("nil table Len != 0")
	}
	tbl := NewLaneTable(map[string]Lane{"hot": LaneControl})
	if avg := testing.AllocsPerRun(1000, func() {
		_, _ = tbl.Lookup("hot")
		_, _ = tbl.Lookup("miss")
	}); avg != 0 {
		t.Errorf("Lookup allocates %.3f allocs/op", avg)
	}
}

// TestCallerAppliesTopicLanes proves the table takes effect at the caller:
// the lane rides the wire header and the server observes it, with explicit
// call lanes still winning.
func TestCallerAppliesTopicLanes(t *testing.T) {
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(chan Lane, 4)
	srv := NewServer(l, ServerOptions{Name: "srv"})
	defer srv.Close()
	h := func(req *wire.Message) (*wire.Message, error) {
		seen <- laneOf(req, nil)
		return &wire.Message{Kind: wire.KindReply}, nil
	}
	srv.Handle("telemetry/report", h)
	srv.Handle("ctrl/actuate", h)
	srv.Handle("plain", h)

	tbl, err := ParseTopicLanes([]byte(`{"telemetry/*": "bulk", "ctrl/*": "control"}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCaller(tr, "srv", CallerOptions{TopicLanes: tbl})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	expect := func(topic string, explicit Lane, want Lane) {
		t.Helper()
		call := &Call{Topic: topic, Lane: explicit}
		if _, err := c.Do(call); err != nil {
			t.Fatalf("%s: %v", topic, err)
		}
		if got := <-seen; got != want {
			t.Errorf("%s: server saw lane %v, want %v", topic, got, want)
		}
		if call.Lane != want {
			t.Errorf("%s: call.Lane resolved to %v, want %v", topic, call.Lane, want)
		}
	}
	expect("telemetry/report", LaneDefault, LaneBulk)
	expect("ctrl/actuate", LaneDefault, LaneControl)
	expect("plain", LaneDefault, LaneDefault)
	expect("telemetry/report", LaneControl, LaneControl) // explicit wins
}
