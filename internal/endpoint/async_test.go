package endpoint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

func TestGoAndWait(t *testing.T) {
	s, c := newPair(t, ServerOptions{Name: "srv"}, CallerOptions{})
	s.Handle("echo", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
	})
	fut := c.Go(&Call{Topic: "echo", Payload: []byte("async"), Timeout: 2 * time.Second})
	m, err := fut.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if string(m.Payload) != "async" || m.Kind != wire.KindReply {
		t.Fatalf("bad reply: %+v", m)
	}
	// Wait is idempotent.
	m2, err2 := fut.Wait()
	if err2 != nil || m2 != m {
		t.Fatalf("second Wait diverged: %v %v", m2, err2)
	}
	if !fut.Done() {
		t.Fatal("resolved future reports not done")
	}
}

// Pipelining: many requests in flight on the one connection before any reply
// is consumed, each future resolving to its own correlated reply.
func TestGoPipelined(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{Timeout: 5 * time.Second})
	s.Handle("id", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
	})
	const n = 300 // crosses a sweep boundary (sweepInterval) mid-pipeline
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = c.Go(&Call{Topic: "id", Payload: []byte(fmt.Sprintf("m-%d", i))})
	}
	for i, fut := range futs {
		m, err := fut.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if want := fmt.Sprintf("m-%d", i); string(m.Payload) != want {
			t.Fatalf("cross-wired reply %d: got %q want %q", i, m.Payload, want)
		}
	}
}

func TestOneWayDispatch(t *testing.T) {
	var got atomic.Int64
	delivered := make(chan string, 8)
	s, c := newPair(t, ServerOptions{OneWayKinds: []wire.Kind{wire.KindData}}, CallerOptions{})
	s.Handle("ingest", func(req *wire.Message) (*wire.Message, error) {
		got.Add(1)
		delivered <- string(req.Payload)
		return nil, nil
	})
	fut := c.Go(&Call{Topic: "ingest", Payload: []byte("sample"), OneWay: true})
	m, err := fut.Wait()
	if err != nil || m != nil {
		t.Fatalf("one-way Wait = %v, %v; want nil, nil", m, err)
	}
	if !fut.Done() {
		t.Fatal("one-way future not immediately done")
	}
	select {
	case p := <-delivered:
		if p != "sample" {
			t.Fatalf("delivered %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("one-way message never dispatched")
	}
}

// A handler error on a one-way call is discarded — nothing comes back and the
// connection stays usable.
func TestOneWayHandlerErrorIsSilent(t *testing.T) {
	s, c := newPair(t, ServerOptions{OneWayKinds: []wire.Kind{wire.KindData}}, CallerOptions{})
	ran := make(chan struct{}, 1)
	s.Handle("boom", func(req *wire.Message) (*wire.Message, error) {
		ran <- struct{}{}
		return nil, errors.New("handler exploded")
	})
	s.Handle("echo", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	if _, err := c.Go(&Call{Topic: "boom", OneWay: true}).Wait(); err != nil {
		t.Fatalf("one-way send: %v", err)
	}
	<-ran
	if _, err := c.Do(&Call{Topic: "echo", Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("connection unusable after one-way handler error: %v", err)
	}
}

// Mid-pipeline connection drop: every in-flight future must fail promptly
// with a retryable unavailability error — no hangs, no lost promises.
func TestMidPipelineDropFailsAllFutures(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	s := NewServer(l, ServerOptions{})
	s.Handle("stall", func(req *wire.Message) (*wire.Message, error) {
		<-block
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	c, err := NewCaller(tr, "srv", CallerOptions{Redial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = c.Go(&Call{Topic: "stall", Timeout: 30 * time.Second})
	}
	close(block)
	_ = s.Close() // tears the connection under the pipeline

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, fut := range futs {
			_, err := fut.Wait()
			if err == nil {
				// The reply may have raced the teardown; that's a success.
				continue
			}
			if !errors.Is(err, ErrUnavailable) {
				t.Errorf("future %d: err = %v, want ErrUnavailable", i, err)
			}
			if !Retryable(err, false) {
				t.Errorf("future %d: drop error not retryable: %v", i, err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("futures hung after mid-pipeline connection drop")
	}
}

// Race stress: concurrent Go, Do, Wait, redial, and Close. Run with -race.
// The invariant is liveness plus sane errors — every operation returns, and
// failures are ErrClosed/ErrUnavailable/ErrTimeout, never a wrong reply.
func TestGoCallCloseRaceStress(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(l, ServerOptions{OneWayKinds: []wire.Kind{wire.KindData}})
	s.Handle("echo", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
	})
	defer s.Close()
	c, err := NewCaller(tr, "srv", CallerOptions{Redial: true, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				want := fmt.Sprintf("g%d-%d", g, i)
				var m *wire.Message
				var err error
				switch i % 3 {
				case 0:
					m, err = c.Do(&Call{Topic: "echo", Payload: []byte(want)})
				case 1:
					m, err = c.Go(&Call{Topic: "echo", Payload: []byte(want)}).Wait()
				default:
					_, err = c.Go(&Call{Topic: "echo", Payload: []byte(want), OneWay: true}).Wait()
					continue
				}
				if err != nil {
					if errors.Is(err, ErrClosed) || errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTimeout) {
						continue
					}
					t.Errorf("unexpected error class: %v", err)
					return
				}
				if string(m.Payload) != want {
					t.Errorf("cross-wired reply: got %q want %q", m.Payload, want)
					return
				}
			}
		}(g)
	}
	// Drop the caller's connection a few times mid-traffic; Redial recovers.
	for k := 0; k < 5; k++ {
		time.Sleep(20 * time.Millisecond)
		c.mu.Lock()
		if c.conn != nil {
			_ = c.conn.Close()
		}
		c.mu.Unlock()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	_ = c.Close()
	// After Close every new call fails fast with ErrClosed.
	if _, err := c.Go(&Call{Topic: "echo"}).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Go = %v, want ErrClosed", err)
	}
}

// Wait honours the deadline fixed at issue time: once it passes, Wait
// returns ErrTimeout immediately, and the connection survives for later
// calls (the late reply is discarded by the demux).
func TestFutureWaitDeadline(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(1000, 0))
	block := make(chan struct{})
	s, c := newPair(t, ServerOptions{}, CallerOptions{Clock: clock})
	s.Handle("stall", func(req *wire.Message) (*wire.Message, error) {
		<-block
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	s.Handle("echo", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	fut := c.Go(&Call{Topic: "stall", Timeout: time.Second})
	clock.Advance(2 * time.Second)
	if _, err := fut.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expired Wait = %v, want ErrTimeout", err)
	}
	close(block)
	if _, err := c.Do(&Call{Topic: "echo", Timeout: NoTimeout}); err != nil {
		t.Fatalf("connection unusable after future timeout: %v", err)
	}
}

// The periodic sweep resolves futures nobody waits on, so abandoned calls do
// not pin waiter-map entries until the connection dies.
func TestSweepResolvesAbandonedWaiters(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(1000, 0))
	block := make(chan struct{})
	defer close(block)
	s, c := newPair(t, ServerOptions{}, CallerOptions{Clock: clock})
	s.Handle("stall", func(req *wire.Message) (*wire.Message, error) {
		<-block
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	fut := c.Go(&Call{Topic: "stall", Timeout: time.Second})
	clock.Advance(2 * time.Second)

	// White-box: trigger the sweep directly rather than issuing
	// sweepInterval more calls.
	c.mu.Lock()
	c.sweepLocked(clock.Now())
	pending := len(c.waiters)
	c.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d waiters survive the sweep, want 0", pending)
	}
	if _, err := fut.Wait(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("swept future Wait = %v, want ErrTimeout", err)
	}
}

// nullTransport is a sink: Send accepts and discards (after the call ends
// the message must not be retained — mirroring real transports), Recv blocks
// until Close.
type nullTransport struct{}

type nullConn struct {
	closed chan struct{}
	once   sync.Once
}

func (nullTransport) Name() string { return "null" }
func (nullTransport) Listen(addr string) (transport.Listener, error) {
	return nil, errors.New("null: no listen")
}
func (nullTransport) Dial(addr string) (transport.Conn, error) {
	return &nullConn{closed: make(chan struct{})}, nil
}
func (nullTransport) Close() error { return nil }

func (c *nullConn) Send(m *wire.Message) error { return nil }
func (c *nullConn) Recv() (*wire.Message, error) {
	<-c.closed
	return nil, transport.ErrClosed
}
func (c *nullConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
func (c *nullConn) LocalAddr() string  { return "null" }
func (c *nullConn) RemoteAddr() string { return "null" }

// The committed zero-alloc guarantee: a steady-state one-way call (tracing
// and metrics off) performs zero allocations end to end in the endpoint
// layer — pooled request envelope, no waiter, shared resolved future.
func TestOneWayGoZeroAlloc(t *testing.T) {
	c, err := NewCaller(nullTransport{}, "sink", CallerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	call := &Call{Topic: "ingest", Payload: make([]byte, 64), OneWay: true, Timeout: NoTimeout}
	for i := 0; i < 16; i++ { // warm the pools
		if _, err := c.Go(call).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if _, err := c.Go(call).Wait(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("one-way Go allocates %.1f allocs/op in steady state, want 0", allocs)
	}
}

// With tracing and metrics interceptors enabled the call path may allocate,
// but only within a small fixed budget — this pins the interceptor overhead
// so it cannot silently grow.
func TestCallAllocBudgetWithInterceptorsOn(t *testing.T) {
	reg := obs.NewRegistry()
	s, c := newPair(t,
		ServerOptions{Name: "srv"},
		CallerOptions{
			Timeout: 5 * time.Second,
			Interceptors: []ClientInterceptor{
				WithMetrics(reg, "bench", nil),
				WithTracing(nil, "bench"),
			},
		})
	s.Handle("echo", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
	})
	call := &Call{Topic: "echo", Payload: make([]byte, 64)}
	for i := 0; i < 8; i++ {
		if _, err := c.Do(call); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 80 // full mem-transport roundtrip: clones, reply, channels
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Do(call); err != nil {
			t.Fatal(err)
		}
	}); allocs > budget {
		t.Fatalf("instrumented call path allocates %.1f allocs/op, budget %d", allocs, budget)
	}
}
