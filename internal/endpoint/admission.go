package endpoint

import (
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/qos"
	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// LaneConfig enables priority-lane admission control on a Server: per-lane
// reserved quotas carved out of MaxInFlight, a shared pool that low lanes
// borrow from and surrender first, and (with QueueDepth > 0) a deadline-aware
// waiting room per lane that sheds lowest-benefit work first under overload.
type LaneConfig struct {
	// Quota reserves in-flight slots per lane, subtracted from MaxInFlight;
	// the remainder is the shared pool any lane may borrow. Reserving slots
	// for LaneControl is what keeps a periodic control loop's admission
	// independent of bulk load. Quotas exceeding MaxInFlight are clamped.
	Quota map[Lane]int
	// QueueDepth is each lane's waiting room when no slot is free. Queued
	// work is served highest lane first, earliest deadline first within a
	// lane. A full queue preempts: the lowest-benefit entry of an equal or
	// lower lane is shed to make room (never a higher lane's work). 0 sheds
	// immediately on saturation, like the flat MaxInFlight bound.
	QueueDepth int
	// TopicLanes classifies requests that arrive without a HeaderLane stamp.
	TopicLanes map[string]Lane
	// Clock drives deadline-expiry and benefit decisions (default real
	// time). Must agree with the clock callers stamp deadlines from.
	Clock simtime.Clock
}

// admitToken records which slot an admitted request occupies, so release
// returns it to the right pool. The zero token (held=false) marks a request
// dispatched without admission control.
type admitToken struct {
	rank     int
	reserved bool
	held     bool
}

// pending is one queued request waiting for a slot.
type pending struct {
	req  *wire.Message
	conn transport.Conn
	rank int
	enq  time.Time
}

// benefitAt scores a queued request's remaining worth in [0,1] with the
// paper's time-constraint benefit function: full benefit when fresh,
// decaying to zero as its wire deadline approaches — a request past its
// deadline is dead weight. Deadline-free work never decays (shed order among
// it falls back to lane, then age).
func (p *pending) benefitAt(now time.Time) float64 {
	if p.req.Deadline.IsZero() {
		return 1
	}
	window := p.req.Deadline.Sub(p.enq)
	if window <= 0 {
		return 0
	}
	return qos.Benefit{ZeroAfter: window}.At(now.Sub(p.enq))
}

// admitter is the server's admission controller: a fixed pool of in-flight
// slots split into per-lane reservations plus a shared remainder, and
// per-lane pending queues with benefit-aware preemptive shedding. It is the
// single owner of slot accounting — every admit has exactly one matching
// release, whichever branch sheds or dispatches the request.
type admitter struct {
	srv       *Server
	clock     simtime.Clock
	laneAware bool
	queueCap  int
	topicLane map[string]Lane

	mu        sync.Mutex
	closed    bool
	quota     [NumLanes]int
	reserved  [NumLanes]int // reserved slots in use, by rank
	shared    int           // shared slots in use
	sharedCap int
	queues    [NumLanes][]*pending // pending by rank

	admitted      [NumLanes]*obs.Counter
	shedLane      [NumLanes]*obs.Counter
	depth         [NumLanes]*obs.Gauge
	shedTotal     *obs.Counter
	shedExpired   *obs.Counter
	shedPreempted *obs.Counter
}

// newAdmitter builds the controller for a bounded server. capacity is
// MaxInFlight (or the quota sum when only lanes were configured); cfg nil
// gives the flat single-pool bound with its exact legacy semantics.
func newAdmitter(srv *Server, capacity int, cfg *LaneConfig, metricName string, reg *obs.Registry) *admitter {
	a := &admitter{
		srv:       srv,
		clock:     simtime.Real{},
		sharedCap: capacity,
		shedTotal: reg.Counter(metricName + ".shed"),
	}
	if cfg == nil {
		return a
	}
	a.laneAware = true
	a.queueCap = cfg.QueueDepth
	a.topicLane = cfg.TopicLanes
	if cfg.Clock != nil {
		a.clock = cfg.Clock
	}
	for lane, q := range cfg.Quota {
		if q > 0 {
			a.quota[lane.rank()] += q
		}
	}
	for r := range a.quota {
		// Clamp: reservations can never exceed what remains of the pool.
		if a.quota[r] > a.sharedCap {
			a.quota[r] = a.sharedCap
		}
		a.sharedCap -= a.quota[r]
	}
	a.shedExpired = reg.Counter(metricName + ".shed.expired")
	a.shedPreempted = reg.Counter(metricName + ".shed.preempted")
	for r, lane := range laneByRank {
		prefix := metricName + ".lane." + lane.String()
		a.admitted[r] = reg.Counter(prefix + ".admitted")
		a.shedLane[r] = reg.Counter(prefix + ".shed")
		a.depth[r] = reg.Gauge(prefix + ".queued")
	}
	return a
}

// offer admits, queues, or sheds one inbound message. Admitted work is
// dispatched via Server.spawn with its slot token; sheds answer requests
// with a HeaderShed reject (one-way messages are dropped — no reply channel).
func (a *admitter) offer(req *wire.Message, conn transport.Conn) {
	r := LaneDefault.rank() // flat mode: everything shares one rank
	var now time.Time
	if a.laneAware {
		r = laneOf(req, a.topicLane).rank()
		now = a.clock.Now()
	}

	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	// Dead on arrival: a request already past its wire deadline has zero
	// benefit — shedding it before it occupies a slot is strictly better
	// than serving it. Lane mode only: the flat bound predates deadline
	// awareness and keeps its legacy semantics.
	if a.laneAware && !req.Deadline.IsZero() && now.After(req.Deadline) {
		a.mu.Unlock()
		a.shedExpired.Inc(1)
		a.countShed(r)
		a.srv.reject(req, conn, laneByRank[r], "deadline passed at admission", 0)
		return
	}
	if tok, ok := a.acquireLocked(r); ok {
		if a.laneAware {
			a.admitted[r].Inc(1)
		}
		a.mu.Unlock()
		a.srv.spawn(req, conn, tok, 0)
		return
	}
	if a.queueCap > 0 {
		if len(a.queues[r]) < a.queueCap {
			a.enqueueLocked(&pending{req: req, conn: conn, rank: r, enq: now})
			a.mu.Unlock()
			return
		}
		// Queue full: preempt the lowest-benefit entry of an equal or lower
		// lane — low lanes surrender borrowed room first, and decayed work
		// yields to fresh work. Higher lanes' entries are untouchable.
		if victim := a.preemptLocked(r, now); victim != nil {
			a.enqueueLocked(&pending{req: req, conn: conn, rank: r, enq: now})
			a.mu.Unlock()
			a.shedPreempted.Inc(1)
			a.countShed(victim.rank)
			a.srv.reject(victim.req, victim.conn, laneByRank[victim.rank], "preempted by higher-benefit work", now.Sub(victim.enq))
			return
		}
	}
	a.mu.Unlock()
	a.countShed(r)
	a.srv.reject(req, conn, laneByRank[r], "server at capacity", 0)
}

// countShed bumps the total and (lane mode) per-lane shed counters.
func (a *admitter) countShed(r int) {
	a.shedTotal.Inc(1)
	if a.laneAware {
		a.shedLane[r].Inc(1)
	}
}

func (a *admitter) enqueueLocked(p *pending) {
	a.queues[p.rank] = append(a.queues[p.rank], p)
	a.depth[p.rank].Set(float64(len(a.queues[p.rank])))
}

// acquireLocked takes a slot for rank r: its lane reservation first, then
// the shared pool.
func (a *admitter) acquireLocked(r int) (admitToken, bool) {
	if a.reserved[r] < a.quota[r] {
		a.reserved[r]++
		return admitToken{rank: r, reserved: true, held: true}, true
	}
	if a.shared < a.sharedCap {
		a.shared++
		return admitToken{rank: r, held: true}, true
	}
	return admitToken{}, false
}

// release returns a slot and promotes queued work: highest lane first,
// earliest deadline first within a lane, with entries that expired while
// queued shed as dead weight along the way. The single release path is what
// guarantees a slot cannot leak, whichever branch admitted it.
func (a *admitter) release(tok admitToken) {
	if !tok.held {
		return
	}
	var now time.Time
	if a.laneAware {
		now = a.clock.Now()
	}
	var runs []*pending
	var toks []admitToken
	var dead []*pending
	a.mu.Lock()
	if tok.reserved {
		a.reserved[tok.rank]--
	} else {
		a.shared--
	}
	if !a.closed {
		for {
			p, ptok, ok := a.promoteLocked(now, &dead)
			if !ok {
				break
			}
			runs = append(runs, p)
			toks = append(toks, ptok)
		}
	}
	a.mu.Unlock()
	for _, p := range dead {
		a.shedExpired.Inc(1)
		a.countShed(p.rank)
		a.srv.reject(p.req, p.conn, laneByRank[p.rank], "deadline passed in queue", now.Sub(p.enq))
	}
	for i, p := range runs {
		a.srv.spawn(p.req, p.conn, toks[i], now.Sub(p.enq))
	}
}

// promoteLocked pops the next queued entry to dispatch: lanes are scanned
// from highest rank, skipping lanes with neither reservation nor shared room
// left; within a lane the earliest-deadline entry goes first. Entries found
// expired are appended to dead (for the caller to reject outside the lock)
// without consuming a slot. ok=false means nothing more can be promoted.
func (a *admitter) promoteLocked(now time.Time, dead *[]*pending) (*pending, admitToken, bool) {
	for r := NumLanes - 1; r >= 0; r-- {
		if a.reserved[r] >= a.quota[r] && a.shared >= a.sharedCap {
			continue
		}
		for len(a.queues[r]) > 0 {
			q := a.queues[r]
			best := 0
			for i := 1; i < len(q); i++ {
				if pendingBefore(q[i], q[best]) {
					best = i
				}
			}
			p := q[best]
			a.queues[r] = append(q[:best], q[best+1:]...)
			a.depth[r].Set(float64(len(a.queues[r])))
			if !p.req.Deadline.IsZero() && now.After(p.req.Deadline) {
				*dead = append(*dead, p)
				continue
			}
			tok, _ := a.acquireLocked(r)
			a.admitted[r].Inc(1)
			return p, tok, true
		}
	}
	return nil, admitToken{}, false
}

// pendingBefore orders the promote scan: earlier deadlines first, any
// deadline before none, then older entries first.
func pendingBefore(x, y *pending) bool {
	xd, yd := x.req.Deadline, y.req.Deadline
	switch {
	case xd.IsZero() && yd.IsZero():
		return x.enq.Before(y.enq)
	case xd.IsZero():
		return false
	case yd.IsZero():
		return true
	case xd.Equal(yd):
		return x.enq.Before(y.enq)
	default:
		return xd.Before(yd)
	}
}

// preemptLocked removes and returns the queue entry to shed so a rank-r
// arrival can take its place: the lowest-benefit entry among lanes of rank
// ≤ r, ties broken toward lower lanes then older entries. Same-lane entries
// are only displaced once their benefit has actually decayed below full —
// fresh same-lane work tail-drops the arrival instead. Returns nil when
// nothing may be shed.
func (a *admitter) preemptLocked(r int, now time.Time) *pending {
	victimRank, victimIdx := -1, -1
	victimBenefit := 0.0
	for vr := 0; vr <= r; vr++ {
		for i, p := range a.queues[vr] {
			b := p.benefitAt(now)
			if vr == r && b >= 1 {
				continue // fresh same-lane work outranks a new arrival
			}
			if victimIdx == -1 || b < victimBenefit ||
				(b == victimBenefit && a.queues[victimRank][victimIdx].enq.After(p.enq)) {
				victimRank, victimIdx, victimBenefit = vr, i, b
			}
		}
	}
	if victimIdx == -1 {
		return nil
	}
	q := a.queues[victimRank]
	victim := q[victimIdx]
	a.queues[victimRank] = append(q[:victimIdx], q[victimIdx+1:]...)
	a.depth[victimRank].Set(float64(len(a.queues[victimRank])))
	return victim
}

// setQuota re-reserves rank r's lane quota at runtime, rebalancing against
// the shared pool so the capacity budget (quota sum + shared cap) is
// invariant: growth is funded by (and clamped to) the shared pool's cap,
// shrink returns slots to it. In-use accounting is untouched — a lane
// holding more reserved slots than its new quota simply admits nothing on
// reservation until it drains, and an over-committed shared pool drains the
// same way, so in-flight work may transiently exceed the bound by at most
// the widened amount until slots lent out before the change complete.
// That transient is the point during an incident: the widened lane admits
// *now*, not after bulk work finishes. Either direction can make
// promotion possible (growth frees the lane's reservation, shrink widens
// the pool), so queued work is drained exactly like a release. Returns the
// quota actually applied after clamping.
func (a *admitter) setQuota(r, quota int) int {
	if quota < 0 {
		quota = 0
	}
	now := a.clock.Now()
	var runs []*pending
	var toks []admitToken
	var dead []*pending
	a.mu.Lock()
	if a.closed {
		q := a.quota[r]
		a.mu.Unlock()
		return q
	}
	delta := quota - a.quota[r]
	if delta > a.sharedCap {
		delta = a.sharedCap
	}
	a.quota[r] += delta
	a.sharedCap -= delta
	applied := a.quota[r]
	for {
		p, ptok, ok := a.promoteLocked(now, &dead)
		if !ok {
			break
		}
		runs = append(runs, p)
		toks = append(toks, ptok)
	}
	a.mu.Unlock()
	for _, p := range dead {
		a.shedExpired.Inc(1)
		a.countShed(p.rank)
		a.srv.reject(p.req, p.conn, laneByRank[p.rank], "deadline passed in queue", now.Sub(p.enq))
	}
	for i, p := range runs {
		a.srv.spawn(p.req, p.conn, toks[i], now.Sub(p.enq))
	}
	return applied
}

// laneQuota reads rank r's current reservation.
func (a *admitter) laneQuota(r int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.quota[r]
}

// close drops every queued entry (the server is shutting down; their
// connections are closing anyway) and stops further promotion.
func (a *admitter) close() {
	a.mu.Lock()
	a.closed = true
	for r := range a.queues {
		a.queues[r] = nil
		if a.depth[r] != nil {
			a.depth[r].Set(0)
		}
	}
	a.mu.Unlock()
}
