package endpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
	"ndsm/internal/wire"
)

// RetryPolicy parameterizes WithRetry: jittered exponential backoff over a
// bounded number of re-attempts. Only transport-level failures are retried;
// peer-reported errors and deliberate shutdown never are (see Retryable).
type RetryPolicy struct {
	// Max is the number of additional attempts after the first (default 2).
	Max int
	// BaseDelay is the first backoff (0: immediate retry, the
	// reconnect-once idiom).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 10×BaseDelay).
	MaxDelay time.Duration
	// Multiplier grows the delay each attempt (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay drawn uniformly at random and
	// added, de-synchronizing retry storms (default 0.2 when BaseDelay > 0).
	Jitter float64
	// RetryTimeouts also retries calls that timed out. Off by default: a
	// timed-out call may still execute on the peer, so only idempotent
	// protocols should set it.
	RetryTimeouts bool
	// Seed seeds the jitter RNG (default 1; fixed for reproducible tests).
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max <= 0 {
		p.Max = 2
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * p.BaseDelay
	}
	if p.Jitter == 0 && p.BaseDelay > 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// WithRetry retries transport-level failures with jittered exponential
// backoff on the given clock. reg (nil: the default registry) counts retries
// under "<name>.retries" and exhausted calls under "<name>.retries_exhausted".
func WithRetry(clock simtime.Clock, p RetryPolicy, reg *obs.Registry, name string) ClientInterceptor {
	if clock == nil {
		clock = simtime.Real{}
	}
	p = p.withDefaults()
	retries := obs.Or(reg).Counter(name + ".retries")
	exhausted := obs.Or(reg).Counter(name + ".retries_exhausted")
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(p.Seed))
	jitter := func(d time.Duration) time.Duration {
		if p.Jitter <= 0 || d <= 0 {
			return d
		}
		mu.Lock()
		f := rng.Float64()
		mu.Unlock()
		return d + time.Duration(f*p.Jitter*float64(d))
	}
	return func(next ClientFunc) ClientFunc {
		return func(call *Call) (*wire.Message, error) {
			m, err := next(call)
			delay := p.BaseDelay
			for attempt := 0; attempt < p.Max && Retryable(err, p.RetryTimeouts); attempt++ {
				if d := jitter(delay); d > 0 {
					clock.Sleep(d)
				}
				delay = time.Duration(float64(delay) * p.Multiplier)
				if delay > p.MaxDelay {
					delay = p.MaxDelay
				}
				retries.Inc(1)
				call.attempts++
				m, err = next(call)
			}
			if err != nil && Retryable(err, p.RetryTimeouts) {
				exhausted.Inc(1)
			}
			return m, err
		}
	}
}

// Breaker is the circuit-breaker surface WithBreaker drives, keyed by peer
// address (*health.Monitor satisfies it). Allow gates the call; every
// allowed call is concluded with exactly one report.
type Breaker interface {
	// Allow returns nil when a call to peer may proceed, an error when the
	// circuit is open.
	Allow(peer string) error
	// ReportSuccess concludes a call the peer answered (including
	// application-level errors — an answer is proof of life).
	ReportSuccess(peer string)
	// ReportFailure concludes a call that failed at the transport level.
	ReportFailure(peer string)
}

// WithBreaker gates calls through a per-peer circuit breaker: open circuits
// fail fast with ErrCircuitOpen (no wire traffic, no timeout burned), and
// call outcomes feed the breaker. peer keys the circuit; empty means each
// call's Dst. reg (nil: the default registry) counts rejections under
// "<name>.breaker_fast_fails".
//
// Outcome classification: transport-level failures (unavailable, timeout)
// count against the peer; an answered call — success, RemoteError, or a
// shed rejection — counts as proof of life even when it is an application
// failure, because the liveness question is "is the peer there", not "did
// the request succeed".
func WithBreaker(b Breaker, peer string, reg *obs.Registry, name string) ClientInterceptor {
	fastFails := obs.Or(reg).Counter(name + ".breaker_fast_fails")
	return func(next ClientFunc) ClientFunc {
		return func(call *Call) (*wire.Message, error) {
			key := peer
			if key == "" {
				key = call.Dst
			}
			if err := b.Allow(key); err != nil {
				fastFails.Inc(1)
				return nil, fmt.Errorf("%w: %s: %v", ErrCircuitOpen, key, err)
			}
			m, err := next(call)
			switch {
			case err == nil:
				b.ReportSuccess(key)
			case errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTimeout):
				b.ReportFailure(key)
			case errors.Is(err, ErrClosed):
				// Deliberate local shutdown says nothing about the peer.
			default:
				// The peer answered: remote error, shed, or any typed reply.
				b.ReportSuccess(key)
			}
			return m, err
		}
	}
}

// WithMetrics instruments calls in reg (nil: the default registry) under the
// given name prefix: "<name>.calls", "<name>.errors", "<name>.timeouts", and
// the latency histogram "<name>.latency_ms".
func WithMetrics(reg *obs.Registry, name string, clock simtime.Clock) ClientInterceptor {
	if clock == nil {
		clock = simtime.Real{}
	}
	r := obs.Or(reg)
	calls := r.Counter(name + ".calls")
	errs := r.Counter(name + ".errors")
	timeouts := r.Counter(name + ".timeouts")
	latency := r.Histogram(name + ".latency_ms")
	return func(next ClientFunc) ClientFunc {
		return func(call *Call) (*wire.Message, error) {
			start := clock.Now()
			m, err := next(call)
			calls.Inc(1)
			latency.Observe(float64(clock.Now().Sub(start)) / float64(time.Millisecond))
			if err != nil {
				errs.Inc(1)
				if Retryable(err, true) && !Retryable(err, false) {
					timeouts.Inc(1)
				}
			}
			return m, err
		}
	}
}

// WithTracing records a causal span per call and injects its context into
// the call's headers, so the wire message carries trace-id/span-id to the
// peer regardless of codec. The span parents under the tracer's ambient span
// (an enclosing binding.request, discovery round, or server dispatch) and is
// itself ambient while the call runs, so downstream hops — retries, radio
// sends — nest beneath it. ref resolves the tracer per call (nil follows
// trace.SetDefault); when it yields no tracer the interceptor is a
// zero-allocation pass-through, which keeps the disabled hot path inside the
// BenchmarkInteractRPC band.
func WithTracing(ref *trace.Ref, name string) ClientInterceptor {
	return func(next ClientFunc) ClientFunc {
		return func(call *Call) (*wire.Message, error) {
			t := ref.Get()
			if t == nil {
				return next(call)
			}
			sp := t.StartSpan(name, trace.Context{})
			if sp == nil { // trace sampled out
				return next(call)
			}
			sp.SetAttr("topic", call.Topic)
			if call.Dst != "" {
				sp.SetAttr("dst", call.Dst)
			}
			// Copy-on-inject: the caller's header map stays untouched.
			hdrs := make(map[string]string, len(call.Headers)+2)
			for k, v := range call.Headers {
				hdrs[k] = v
			}
			call.Headers = trace.Inject(sp.Context(), hdrs)
			release := sp.Activate()
			m, err := next(call)
			release()
			sp.SetError(err)
			sp.Finish()
			return m, err
		}
	}
}

// WithServerTracing continues the trace a request carried in its headers: a
// server-side span parented on the client span across the wire, ambient
// while the handler runs so the handler's own downstream calls nest beneath
// it. Requests without trace context stay untraced (tracing is opt-in per
// call chain, not per server). ref resolves the tracer per dispatch; nil
// follows trace.SetDefault.
func WithServerTracing(ref *trace.Ref, name string) ServerInterceptor {
	return func(next Handler) Handler {
		return func(req *wire.Message) (*wire.Message, error) {
			t := ref.Get()
			if t == nil {
				return next(req)
			}
			parent := trace.Extract(req.Headers)
			if !parent.Valid() {
				return next(req)
			}
			sp := t.StartSpan(name, parent)
			sp.SetAttr("topic", req.Topic)
			if req.Src != "" {
				sp.SetAttr("src", req.Src)
			}
			release := sp.Activate()
			m, err := next(req)
			release()
			sp.SetError(err)
			sp.Finish()
			return m, err
		}
	}
}

// WithServerMetrics instruments dispatches in reg (nil: the default
// registry): "<name>.requests", "<name>.errors", and the handler latency
// histogram "<name>.latency_ms".
func WithServerMetrics(reg *obs.Registry, name string, clock simtime.Clock) ServerInterceptor {
	if clock == nil {
		clock = simtime.Real{}
	}
	r := obs.Or(reg)
	requests := r.Counter(name + ".requests")
	errs := r.Counter(name + ".errors")
	latency := r.Histogram(name + ".latency_ms")
	return func(next Handler) Handler {
		return func(req *wire.Message) (*wire.Message, error) {
			start := clock.Now()
			m, err := next(req)
			requests.Inc(1)
			latency.Observe(float64(clock.Now().Sub(start)) / float64(time.Millisecond))
			if err != nil {
				errs.Inc(1)
			}
			return m, err
		}
	}
}

// WithServerDeadline sheds requests whose propagated deadline has already
// passed on arrival: the caller has given up, so running the handler and
// sending a reply is pure waste. Expired requests get a KindError reply.
func WithServerDeadline(clock simtime.Clock) ServerInterceptor {
	if clock == nil {
		clock = simtime.Real{}
	}
	return func(next Handler) Handler {
		return func(req *wire.Message) (*wire.Message, error) {
			if !req.Deadline.IsZero() && clock.Now().After(req.Deadline) {
				return nil, fmt.Errorf("endpoint: deadline exceeded before dispatch of %s", req.Topic)
			}
			return next(req)
		}
	}
}
