package endpoint

import "ndsm/internal/wire"

// Lane is a request's admission priority class. Lanes order how a bounded
// server spends its capacity under overload: control traffic is served
// first and shed last, bulk traffic borrows whatever is left and surrenders
// it first. The zero value is LaneDefault, so plain calls are unaffected.
//
// The lane rides in-band as a wire header (HeaderLane), stamped once at the
// endpoint layer — exactly like trace context — so every downstream hop and
// the far server see the same class without out-of-band coordination.
type Lane uint8

const (
	// LaneDefault is ordinary request/reply traffic (the zero value; not
	// stamped on the wire).
	LaneDefault Lane = iota
	// LaneBulk is background traffic — telemetry floods, batch transfers —
	// that sheds first under overload.
	LaneBulk
	// LaneControl is hard-deadline periodic traffic — control loops,
	// actuation — that admission control isolates from bulk load.
	LaneControl

	// NumLanes counts the lane classes (array sizing).
	NumLanes = 3
)

// HeaderLane is the wire header carrying a request's admission lane class
// ("bulk" or "control"; default-lane requests carry no header). On shed
// replies it echoes the lane the shed was charged to.
const HeaderLane = "ndsm-lane"

// rank orders lanes for admission: higher ranks are admitted first from the
// pending queue and shed last. Bulk < default < control.
func (l Lane) rank() int {
	switch l {
	case LaneBulk:
		return 0
	case LaneControl:
		return 2
	default:
		return 1
	}
}

// laneByRank is the inverse of rank, for iterating queues in shed order.
var laneByRank = [NumLanes]Lane{LaneBulk, LaneDefault, LaneControl}

// String returns the lane's wire name.
func (l Lane) String() string {
	switch l {
	case LaneBulk:
		return "bulk"
	case LaneControl:
		return "control"
	default:
		return "default"
	}
}

// ParseLane maps a wire name back to its lane. Unknown names report false
// (callers fall back to LaneDefault — an unrecognized class from a newer
// peer must not be mistaken for control).
func ParseLane(s string) (Lane, bool) {
	switch s {
	case "bulk":
		return LaneBulk, true
	case "control":
		return LaneControl, true
	case "default", "":
		return LaneDefault, true
	}
	return LaneDefault, false
}

// laneHeaderMaps are the shared header maps stamped onto non-default-lane
// requests whose calls carry no headers of their own. They are immutable by
// contract: everything downstream (codecs, transports, observers) treats
// message headers as read-only, and the message pool recycles the struct,
// never the map.
var laneHeaderMaps = [NumLanes]map[string]string{
	0: {HeaderLane: "bulk"},    // LaneBulk.rank()
	2: {HeaderLane: "control"}, // LaneControl.rank()
}

// laneStamped returns headers carrying the lane class: the shared immutable
// map when the call has no headers (zero allocations), a copy-on-stamp
// otherwise (never mutates the caller's map — it may be shared or reused).
func laneStamped(headers map[string]string, lane Lane) map[string]string {
	if lane == LaneDefault {
		return headers
	}
	if headers == nil {
		return laneHeaderMaps[lane.rank()]
	}
	out := make(map[string]string, len(headers)+1)
	for k, v := range headers {
		out[k] = v
	}
	out[HeaderLane] = lane.String()
	return out
}

// laneOf classifies an inbound request: the in-band header wins; unstamped
// traffic falls back to the server's per-topic classification, then default.
func laneOf(m *wire.Message, topicLanes map[string]Lane) Lane {
	if v, ok := m.Headers[HeaderLane]; ok {
		if l, ok := ParseLane(v); ok {
			return l
		}
		return LaneDefault
	}
	if l, ok := topicLanes[m.Topic]; ok {
		return l
	}
	return LaneDefault
}
