package endpoint

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

func newPair(t *testing.T, sopts ServerOptions, copts CallerOptions) (*Server, *Caller) {
	t.Helper()
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewServer(l, sopts)
	c, err := NewCaller(tr, "srv", copts)
	if err != nil {
		t.Fatalf("caller: %v", err)
	}
	t.Cleanup(func() {
		_ = c.Close()
		_ = s.Close()
	})
	return s, c
}

func TestRoundtrip(t *testing.T) {
	s, c := newPair(t, ServerOptions{Name: "srv"}, CallerOptions{})
	s.Handle("echo", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
	})
	m, err := c.Do(&Call{Topic: "echo", Payload: []byte("hi"), Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(m.Payload) != "hi" || m.Kind != wire.KindReply {
		t.Fatalf("bad reply: %+v", m)
	}
	if m.Src != "srv" {
		t.Fatalf("server name not stamped: %q", m.Src)
	}
	if m.Topic != "echo" {
		t.Fatalf("topic not filled: %q", m.Topic)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{Timeout: 5 * time.Second})
	s.Handle("id", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
	})
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("call-%d", i)
			m, err := c.Do(&Call{Topic: "id", Payload: []byte(want)})
			if err != nil {
				errs <- err
				return
			}
			if string(m.Payload) != want {
				errs <- fmt.Errorf("cross-wired reply: got %q want %q", m.Payload, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHandlerError(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{})
	s.Handle("boom", func(req *wire.Message) (*wire.Message, error) {
		return nil, errors.New("kaboom")
	})
	_, err := c.Do(&Call{Topic: "boom", Timeout: 2 * time.Second})
	re, ok := IsRemote(err)
	if !ok {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Msg != "kaboom" || re.Topic != "boom" {
		t.Fatalf("bad remote error: %+v", re)
	}
	if Retryable(err, true) {
		t.Fatal("remote errors must not be retryable")
	}
}

func TestUnknownTopicFallback(t *testing.T) {
	_, c := newPair(t, ServerOptions{}, CallerOptions{})
	_, err := c.Do(&Call{Topic: "nope", Timeout: 2 * time.Second})
	if _, ok := IsRemote(err); !ok {
		t.Fatalf("want remote error for unknown topic, got %v", err)
	}
	if !strings.Contains(err.Error(), `no handler for topic "nope"`) {
		t.Fatalf("bad fallback message: %v", err)
	}
}

func TestUnhandle(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{})
	s.Handle("x", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	if _, err := c.Do(&Call{Topic: "x", Timeout: time.Second}); err != nil {
		t.Fatalf("call: %v", err)
	}
	s.Unhandle("x")
	if _, err := c.Do(&Call{Topic: "x", Timeout: time.Second}); err == nil {
		t.Fatal("want error after Unhandle")
	}
}

func TestTimeoutLeavesConnUsable(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{})
	block := make(chan struct{})
	s.Handle("slow", func(req *wire.Message) (*wire.Message, error) {
		<-block
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	s.Handle("fast", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	_, err := c.Do(&Call{Topic: "slow", Timeout: 30 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	close(block)
	// The same connection must still serve calls: a timeout only abandons
	// the waiter, it doesn't tear down the link.
	if _, err := c.Do(&Call{Topic: "fast", Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
}

func TestNoTimeoutWaitsForever(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{Timeout: 20 * time.Millisecond})
	release := make(chan struct{})
	s.Handle("slow", func(req *wire.Message) (*wire.Message, error) {
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(&Call{Topic: "slow", Timeout: NoTimeout})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("NoTimeout call returned early: %v", err)
	case <-time.After(60 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("call: %v", err)
	}
}

func TestDeadlinePropagation(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{})
	got := make(chan time.Time, 1)
	s.Handle("d", func(req *wire.Message) (*wire.Message, error) {
		got <- req.Deadline
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	before := time.Now()
	if _, err := c.Do(&Call{Topic: "d", Timeout: 5 * time.Second}); err != nil {
		t.Fatalf("call: %v", err)
	}
	dl := <-got
	if dl.IsZero() {
		t.Fatal("deadline not propagated")
	}
	if dl.Before(before.Add(4*time.Second)) || dl.After(before.Add(6*time.Second)) {
		t.Fatalf("deadline %v not ~5s from %v", dl, before)
	}
}

func TestCloseFailsOutstanding(t *testing.T) {
	s, c := newPair(t, ServerOptions{}, CallerOptions{})
	block := make(chan struct{})
	defer close(block)
	s.Handle("hang", func(req *wire.Message) (*wire.Message, error) {
		<-block
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(&Call{Topic: "hang", Timeout: NoTimeout})
		done <- err
	}()
	// Wait until the call is on the wire before closing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.mu.Lock()
		n := len(c.waiters)
		c.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("call never parked")
		}
		time.Sleep(time.Millisecond)
	}
	_ = c.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := c.Do(&Call{Topic: "hang"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: want ErrClosed, got %v", err)
	}
}

func TestEagerDialFailure(t *testing.T) {
	tr := transport.NewMem(transport.NewFabric())
	if _, err := NewCaller(tr, "nobody", CallerOptions{Eager: true}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

func TestNoRedialAfterServerGone(t *testing.T) {
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(l, ServerOptions{})
	s.Handle("ping", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	c, err := NewCaller(tr, "srv", CallerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(&Call{Topic: "ping", Timeout: time.Second}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	_ = s.Close()
	// The in-flight connection dies; without Redial every later call is
	// ErrClosed (possibly after one ErrUnavailable race with the demux).
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Do(&Call{Topic: "ping", Timeout: 100 * time.Millisecond})
		if errors.Is(err, ErrClosed) {
			return
		}
		if err == nil {
			t.Fatal("call succeeded against closed server")
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached ErrClosed, last err: %v", err)
		}
	}
}

func TestRedialRecovers(t *testing.T) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(l, ServerOptions{})
	s.Handle("ping", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	c, err := NewCaller(tr, "srv", CallerOptions{Redial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(&Call{Topic: "ping", Timeout: time.Second}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	_ = s.Close()

	// Restart the server on the same address; redial should find it.
	l2, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(l2, ServerOptions{})
	defer s2.Close()
	s2.Handle("ping", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Do(&Call{Topic: "ping", Timeout: 200 * time.Millisecond})
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("redial never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// flakyTerminal fails the first n attempts with ErrUnavailable.
func flakyTerminal(n int) (ClientFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(call *Call) (*wire.Message, error) {
		if calls.Add(1) <= int64(n) {
			return nil, fmt.Errorf("%w: injected", ErrUnavailable)
		}
		return &wire.Message{Kind: wire.KindReply, Payload: []byte("ok")}, nil
	}, &calls
}

func TestRetryInterceptor(t *testing.T) {
	reg := obs.NewRegistry()
	clock := simtime.NewVirtual(time.Unix(0, 0))
	term, calls := flakyTerminal(2)
	fn := chainClient([]ClientInterceptor{
		WithRetry(clock, RetryPolicy{Max: 3, BaseDelay: 10 * time.Millisecond}, reg, "t"),
	}, term)

	done := make(chan error, 1)
	go func() {
		m, err := fn(&Call{Topic: "x"})
		if err == nil && string(m.Payload) != "ok" {
			err = fmt.Errorf("bad payload %q", m.Payload)
		}
		done <- err
	}()
	// Drive the two backoff sleeps deterministically.
	for i := 0; i < 2; i++ {
		waitPending(t, clock, 1)
		clock.AdvanceToNext()
	}
	if err := <-done; err != nil {
		t.Fatalf("retried call: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := reg.Counter("t.retries").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
	if got := reg.Counter("t.retries_exhausted").Value(); got != 0 {
		t.Fatalf("exhausted counter = %d, want 0", got)
	}
}

func TestRetryExhausted(t *testing.T) {
	reg := obs.NewRegistry()
	term, calls := flakyTerminal(100)
	fn := chainClient([]ClientInterceptor{
		WithRetry(nil, RetryPolicy{Max: 2}, reg, "t"), // zero BaseDelay: no sleeps
	}, term)
	_, err := fn(&Call{Topic: "x"})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + Max retries)", got)
	}
	if got := reg.Counter("t.retries_exhausted").Value(); got != 1 {
		t.Fatalf("exhausted counter = %d, want 1", got)
	}
}

func TestRetryNeverRetriesRemoteOrClosed(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"remote", &RemoteError{Topic: "x", Msg: "app says no"}},
		{"closed", ErrClosed},
		{"timeout-not-opted-in", fmt.Errorf("%w: x", ErrTimeout)},
	} {
		var calls atomic.Int64
		fn := chainClient([]ClientInterceptor{
			WithRetry(nil, RetryPolicy{Max: 5}, obs.NewRegistry(), "t"),
		}, func(call *Call) (*wire.Message, error) {
			calls.Add(1)
			return nil, tc.err
		})
		_, _ = fn(&Call{Topic: "x"})
		if got := calls.Load(); got != 1 {
			t.Fatalf("%s: attempts = %d, want 1 (no retry)", tc.name, got)
		}
	}
}

func TestRetryTimeoutsOptIn(t *testing.T) {
	var calls atomic.Int64
	fn := chainClient([]ClientInterceptor{
		WithRetry(nil, RetryPolicy{Max: 1, RetryTimeouts: true}, obs.NewRegistry(), "t"),
	}, func(call *Call) (*wire.Message, error) {
		calls.Add(1)
		return nil, fmt.Errorf("%w: x", ErrTimeout)
	})
	_, err := fn(&Call{Topic: "x"})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestMetricsInterceptor(t *testing.T) {
	reg := obs.NewRegistry()
	term, _ := flakyTerminal(1)
	fn := chainClient([]ClientInterceptor{WithMetrics(reg, "m", nil)}, term)
	_, _ = fn(&Call{Topic: "x"}) // fails (unavailable)
	_, _ = fn(&Call{Topic: "x"}) // succeeds
	if got := reg.Counter("m.calls").Value(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
	if got := reg.Counter("m.errors").Value(); got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
	if got := reg.Snapshot().Histograms["m.latency_ms"].Count; got != 2 {
		t.Fatalf("latency count = %d, want 2", got)
	}
}

func TestTracingInterceptor(t *testing.T) {
	col := trace.NewCollector(16)
	tr := trace.New(trace.Options{Name: "cli", Collector: col})
	ref := trace.NewRef(tr)
	var gotHeaders map[string]string
	term := func(call *Call) (*wire.Message, error) {
		gotHeaders = call.Headers
		return nil, fmt.Errorf("%w: injected", ErrUnavailable)
	}
	fn := chainClient([]ClientInterceptor{WithTracing(ref, "ep.call")}, term)
	orig := map[string]string{"queue": "q1"}
	call := &Call{Topic: "t1", Dst: "peer-1", Headers: orig}
	_, err := fn(call)
	if err == nil {
		t.Fatal("want terminal error through the interceptor")
	}
	if gotHeaders[trace.HeaderTraceID] == "" || gotHeaders[trace.HeaderSpanID] == "" {
		t.Fatalf("trace headers not injected: %v", gotHeaders)
	}
	if gotHeaders["queue"] != "q1" {
		t.Fatalf("existing headers lost: %v", gotHeaders)
	}
	if _, ok := orig[trace.HeaderTraceID]; ok {
		t.Fatal("caller's header map was mutated")
	}
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "ep.call" || sp.Attrs["topic"] != "t1" || sp.Attrs["dst"] != "peer-1" {
		t.Fatalf("bad span: %+v", sp)
	}
	if sp.Err == "" || !strings.Contains(sp.Err, "injected") {
		t.Fatalf("span error not recorded: %q", sp.Err)
	}
	ctx := trace.Extract(gotHeaders)
	if ctx.TraceID != sp.TraceID || ctx.SpanID != sp.SpanID {
		t.Fatalf("injected context %+v does not match span %+v", ctx, sp)
	}
}

func TestServerTracingInterceptor(t *testing.T) {
	col := trace.NewCollector(16)
	tr := trace.New(trace.Options{Name: "srv", Collector: col})
	ref := trace.NewRef(tr)
	h := chainServer([]ServerInterceptor{WithServerTracing(ref, "srv.dispatch")},
		func(req *wire.Message) (*wire.Message, error) {
			return &wire.Message{Kind: wire.KindReply}, nil
		})

	// An untraced request stays untraced: no root span per dispatch.
	if _, err := h(&wire.Message{Topic: "t0"}); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 0 {
		t.Fatalf("untraced request produced %d spans", col.Len())
	}

	parent := trace.Context{TraceID: 0xabc, SpanID: 0x123}
	req := &wire.Message{Topic: "t1", Src: "cli-1", Headers: trace.Inject(parent, nil)}
	if _, err := h(req); err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.TraceID != parent.TraceID || sp.ParentID != parent.SpanID {
		t.Fatalf("server span not parented on wire context: %+v", sp)
	}
	if sp.Name != "srv.dispatch" || sp.Attrs["src"] != "cli-1" {
		t.Fatalf("bad server span: %+v", sp)
	}
}

// Tracing disabled (no tracer anywhere) must not add allocations to the call
// path — the interceptor is two atomic loads and a tail call.
func TestTracingDisabledZeroAlloc(t *testing.T) {
	trace.SetDefault(nil)
	reply := &wire.Message{Kind: wire.KindReply}
	term := func(call *Call) (*wire.Message, error) { return reply, nil }
	bare := term
	wrapped := chainClient([]ClientInterceptor{WithTracing(nil, "ep.call")}, term)
	call := &Call{Topic: "t1"}
	base := testing.AllocsPerRun(200, func() { _, _ = bare(call) })
	got := testing.AllocsPerRun(200, func() { _, _ = wrapped(call) })
	if got != base {
		t.Fatalf("disabled tracing allocates: wrapped %.1f allocs/op vs bare %.1f", got, base)
	}
}

func TestInterceptorOrder(t *testing.T) {
	var order []string
	mk := func(name string) ClientInterceptor {
		return func(next ClientFunc) ClientFunc {
			return func(call *Call) (*wire.Message, error) {
				order = append(order, name)
				return next(call)
			}
		}
	}
	fn := chainClient([]ClientInterceptor{mk("outer"), mk("inner")},
		func(call *Call) (*wire.Message, error) { return nil, nil })
	_, _ = fn(&Call{})
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v, want [outer inner]", order)
	}
}

func TestServerMetricsInterceptor(t *testing.T) {
	reg := obs.NewRegistry()
	s, c := newPair(t, ServerOptions{
		Interceptors: []ServerInterceptor{WithServerMetrics(reg, "srv", nil)},
	}, CallerOptions{})
	s.Handle("ok", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	if _, err := c.Do(&Call{Topic: "ok", Timeout: time.Second}); err != nil {
		t.Fatalf("call: %v", err)
	}
	_, _ = c.Do(&Call{Topic: "missing", Timeout: time.Second})
	if got := reg.Counter("srv.requests").Value(); got != 2 {
		t.Fatalf("requests = %d, want 2", got)
	}
	if got := reg.Counter("srv.errors").Value(); got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
}

func TestServerDeadlineSheds(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(1000, 0))
	var served atomic.Int64
	h := chainServer([]ServerInterceptor{WithServerDeadline(clock)},
		func(req *wire.Message) (*wire.Message, error) {
			served.Add(1)
			return &wire.Message{Kind: wire.KindReply}, nil
		})
	// Live deadline: served.
	if _, err := h(&wire.Message{Topic: "x", Deadline: clock.Now().Add(time.Second)}); err != nil {
		t.Fatalf("live request: %v", err)
	}
	// Expired deadline: shed.
	if _, err := h(&wire.Message{Topic: "x", Deadline: clock.Now().Add(-time.Second)}); err == nil {
		t.Fatal("expired request not shed")
	}
	if got := served.Load(); got != 1 {
		t.Fatalf("served = %d, want 1", got)
	}
}

func TestOnSendOnRecvHooks(t *testing.T) {
	var sent, recvd atomic.Int64
	s, c := newPair(t, ServerOptions{}, CallerOptions{
		OnSend: func(*wire.Message) { sent.Add(1) },
		OnRecv: func(*wire.Message) { recvd.Add(1) },
	})
	s.Handle("p", func(req *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Do(&Call{Topic: "p", Timeout: time.Second}); err != nil {
			t.Fatalf("call: %v", err)
		}
	}
	if sent.Load() != 3 || recvd.Load() != 3 {
		t.Fatalf("hooks: sent=%d recvd=%d, want 3/3", sent.Load(), recvd.Load())
	}
}

func TestVirtualClockTimeout(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	s, c := newPair(t, ServerOptions{}, CallerOptions{Clock: clock})
	block := make(chan struct{})
	defer close(block)
	s.Handle("hang", func(req *wire.Message) (*wire.Message, error) {
		<-block
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(&Call{Topic: "hang", Timeout: 10 * time.Second})
		done <- err
	}()
	waitPending(t, clock, 1)
	clock.Advance(11 * time.Second)
	if err := <-done; !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func waitPending(t *testing.T, clock *simtime.Virtual, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for clock.Pending() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending timers (have %d)", n, clock.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTracingSurvivesRedial pins that span propagation is per-call, not
// per-connection: after the server dies and the caller redials (a new
// connection generation), the next call's span still crosses the wire and the
// new server's span is parented under it.
func TestTracingSurvivesRedial(t *testing.T) {
	col := trace.NewCollector(64)
	ctr := trace.New(trace.Options{Name: "client", Collector: col, Seed: 1})
	str := trace.New(trace.Options{Name: "server", Collector: col, Seed: 2})
	cref := trace.NewRef(ctr)
	sref := trace.NewRef(str)

	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	serve := func() *Server {
		l, err := tr.Listen("srv")
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer(l, ServerOptions{
			Name:         "srv",
			Interceptors: []ServerInterceptor{WithServerTracing(sref, "srv.serve")},
		})
		s.Handle("ping", func(req *wire.Message) (*wire.Message, error) {
			return &wire.Message{Kind: wire.KindReply}, nil
		})
		return s
	}
	s := serve()
	c, err := NewCaller(tr, "srv", CallerOptions{
		Redial:       true,
		Interceptors: []ClientInterceptor{WithTracing(cref, "client.call")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Do(&Call{Topic: "ping", Timeout: time.Second}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	_ = s.Close()
	s2 := serve() // same address, new listener: a fresh connection generation
	defer s2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Do(&Call{Topic: "ping", Timeout: 200 * time.Millisecond}); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("redial never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Collect the successful client spans and check each has a server child
	// in the same trace — including the one after the redial.
	var clients, servers []trace.Span
	for _, sp := range col.Spans() {
		switch sp.Name {
		case "client.call":
			if sp.Err == "" {
				clients = append(clients, sp)
			}
		case "srv.serve":
			servers = append(servers, sp)
		}
	}
	if len(clients) != 2 {
		t.Fatalf("got %d successful client spans, want 2", len(clients))
	}
	if clients[0].TraceID == clients[1].TraceID {
		t.Fatal("independent calls share a trace ID")
	}
	for i, cs := range clients {
		found := false
		for _, ss := range servers {
			if ss.TraceID == cs.TraceID && ss.ParentID == cs.SpanID {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("call %d (trace %x): no server span parented under client span %x", i, cs.TraceID, cs.SpanID)
		}
	}
}
