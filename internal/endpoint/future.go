package endpoint

import (
	"fmt"
	"sync"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/wire"
)

// Future is the handle for a call started with Caller.Go: a promise for the
// reply. Wait blocks until the reply arrives, the call's deadline passes, or
// the connection dies, and is idempotent — every call returns the same
// outcome. A Future whose Wait is never called does not leak: the caller's
// periodic deadline sweep (or connection teardown) resolves it internally.
//
// A Future is safe for concurrent use.
type Future struct {
	c        *Caller
	id       uint64
	topic    string
	timeout  time.Duration
	deadline time.Time // zero: wait forever
	clock    simtime.Clock

	mu   sync.Mutex
	w    *waiter // nil once resolved
	done bool
	m    *wire.Message
	err  error
}

// resolvedFuture is the shared already-succeeded future returned by one-way
// sends, keeping the fire-and-forget fast path allocation-free.
var resolvedFuture = &Future{done: true}

// failedFuture wraps an immediate (pre-send) failure as a resolved Future.
func failedFuture(err error) *Future {
	return &Future{done: true, err: err}
}

// Wait blocks until the call resolves and returns the reply. The deadline is
// the one fixed when the call was issued: a Wait that starts late gets only
// the remaining time, and a Wait after the deadline returns ErrTimeout
// immediately unless the reply already arrived. On timeout the connection
// stays up — the late reply is discarded by the demux loop.
func (f *Future) Wait() (*wire.Message, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return f.m, f.err
	}
	var timer <-chan time.Time
	if !f.deadline.IsZero() {
		remaining := f.deadline.Sub(f.clock.Now())
		if remaining <= 0 {
			f.expireLocked()
			return f.m, f.err
		}
		timer = f.clock.After(remaining)
	}
	select {
	case r := <-f.w.ch:
		f.settleLocked(r)
	case <-timer:
		f.expireLocked()
	}
	return f.m, f.err
}

// Done reports whether the future has resolved, without waiting for the
// reply (it can contend briefly with a concurrent Wait). A true result means
// Wait will return immediately.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return true
	}
	// A buffered result means the demux already resolved the call; settle it
	// now so the waiter can be pooled.
	select {
	case r := <-f.w.ch:
		f.settleLocked(r)
		return true
	default:
		return false
	}
}

// expireLocked resolves the future as timed out — unless a result raced in,
// in which case the result wins. Caller holds f.mu.
func (f *Future) expireLocked() {
	if f.c.cancelWaiter(f.id, f.w) {
		// We removed the demux entry, so no result was (or ever will be)
		// delivered: the call timed out.
		f.settleLocked(waitResult{err: fmt.Errorf("%w: %s after %v", ErrTimeout, f.topic, f.timeout)})
		return
	}
	// The entry was already removed by the demux, sweep, or teardown — all of
	// which buffer the result before releasing the lock, so this receive
	// cannot block.
	f.settleLocked(<-f.w.ch)
}

// settleLocked records the outcome, translating error replies, and returns
// the waiter to the pool. Caller holds f.mu; the waiter must no longer be
// reachable from the demux map.
func (f *Future) settleLocked(r waitResult) {
	m, err := r.m, r.err
	if err == nil && m.Kind == wire.KindError {
		if m.Headers[HeaderShed] != "" {
			lane, _ := ParseLane(m.Headers[HeaderLane])
			err = &ShedError{Topic: f.topic, Lane: lane}
		} else {
			err = &RemoteError{Topic: f.topic, Msg: string(m.Payload)}
		}
		m = nil
	}
	f.m, f.err, f.done = m, err, true
	putWaiter(f.w)
	f.w = nil
}

// waiterPool recycles waiters (and their reply channels) across calls: the
// demux discipline guarantees at most one buffered send per checkout, and
// putWaiter drains it, so a recycled channel is always empty.
var waiterPool = sync.Pool{
	New: func() any { return &waiter{ch: make(chan waitResult, 1)} },
}

func getWaiter() *waiter { return waiterPool.Get().(*waiter) }

func putWaiter(w *waiter) {
	select {
	case <-w.ch: // drop an undelivered result (cancelled before Wait)
	default:
	}
	w.gen = 0
	w.deadline = time.Time{}
	waiterPool.Put(w)
}

// msgPool recycles request envelopes. A message is returned to the pool as
// soon as Send accepts it — transports must not retain messages past Send
// (see transport.Conn) and OnSend observers must not retain them past the
// callback.
var msgPool = sync.Pool{
	New: func() any { return new(wire.Message) },
}

func getMsg() *wire.Message { return msgPool.Get().(*wire.Message) }

func putMsg(m *wire.Message) {
	*m = wire.Message{}
	msgPool.Put(m)
}
