package endpoint

import (
	"testing"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

func newTestRecorder() *reqlog.Recorder {
	return reqlog.New(reqlog.Options{
		Capacity:    256,
		SampleEvery: 1, // keep everything: these tests assert on exemplars
		Registry:    obs.NewRegistry(),
	})
}

// TestWideEventsClientInterceptor drives the interceptor directly and checks
// the recorded event for each outcome class.
func TestWideEventsClientInterceptor(t *testing.T) {
	rec := newTestRecorder()
	clk := simtime.NewVirtual(time.Unix(1_700_000_000, 0))
	ic := WithWideEvents(WideEventOptions{
		Recorder: rec, Clock: clk, Peer: "srv-1", DefaultTimeout: 100 * time.Millisecond,
	})

	cases := []struct {
		name        string
		err         error
		wantOutcome string
	}{
		{"ok", nil, reqlog.OutcomeOK},
		{"shed", &ShedError{Topic: "t", Lane: LaneBulk}, reqlog.OutcomeShed},
		{"timeout", ErrTimeout, reqlog.OutcomeTimeout},
		{"unavailable", ErrUnavailable, reqlog.OutcomeUnavailable},
		{"remote", &RemoteError{Topic: "t", Msg: "boom"}, reqlog.OutcomeError},
	}
	for _, tc := range cases {
		fn := ic(func(call *Call) (*wire.Message, error) {
			clk.Advance(7 * time.Millisecond)
			return nil, tc.err
		})
		_, _ = fn(&Call{Topic: "topic/" + tc.name, Lane: LaneBulk})
		got := rec.Snapshot(reqlog.Filter{Topic: "topic/" + tc.name})
		if len(got) != 1 {
			t.Fatalf("%s: %d records, want 1", tc.name, len(got))
		}
		ev := got[0]
		if ev.Outcome != tc.wantOutcome || ev.Kind != reqlog.KindClient {
			t.Errorf("%s: outcome=%s kind=%s", tc.name, ev.Outcome, ev.Kind)
		}
		if ev.Latency != 7*time.Millisecond {
			t.Errorf("%s: latency = %v", tc.name, ev.Latency)
		}
		if ev.Peer != "srv-1" || ev.Lane != "bulk" {
			t.Errorf("%s: peer=%s lane=%s", tc.name, ev.Peer, ev.Lane)
		}
		if !ev.HasDeadline || ev.DeadlineSlack != 93*time.Millisecond {
			t.Errorf("%s: deadline slack = %v (has=%v), want 93ms", tc.name, ev.DeadlineSlack, ev.HasDeadline)
		}
	}
}

// TestWideEventsCountRetries checks the retry interceptor's attempt count
// lands on the single wide event recorded for the logical call.
func TestWideEventsCountRetries(t *testing.T) {
	rec := newTestRecorder()
	clk := simtime.NewVirtual(time.Unix(1_700_000_000, 0))
	reg := obs.NewRegistry()
	chain := chainClient([]ClientInterceptor{
		WithWideEvents(WideEventOptions{Recorder: rec, Clock: clk}),
		WithRetry(clk, RetryPolicy{Max: 3}, reg, "test"),
	}, func() ClientFunc {
		n := 0
		return func(call *Call) (*wire.Message, error) {
			n++
			if n < 3 {
				return nil, ErrUnavailable
			}
			return &wire.Message{Kind: wire.KindReply}, nil
		}
	}())
	if _, err := chain(&Call{Topic: "flaky"}); err != nil {
		t.Fatal(err)
	}
	got := rec.Snapshot(reqlog.Filter{Topic: "flaky"})
	if len(got) != 1 {
		t.Fatalf("logical call recorded %d events, want 1", len(got))
	}
	if got[0].Retries != 2 || got[0].Outcome != reqlog.OutcomeOK {
		t.Errorf("event = retries %d outcome %s, want 2 retries ok", got[0].Retries, got[0].Outcome)
	}
}

// TestWideEventsNilRecorderPassthrough pins the disabled path: no recorder,
// no wrapper, zero allocations.
func TestWideEventsNilRecorderPassthrough(t *testing.T) {
	base := func(call *Call) (*wire.Message, error) { return nil, nil }
	fn := WithWideEvents(WideEventOptions{})(base)
	call := &Call{Topic: "x"}
	if avg := testing.AllocsPerRun(1000, func() { _, _ = fn(call) }); avg != 0 {
		t.Errorf("disabled interceptor allocates %.3f allocs/op", avg)
	}
}

// TestWideEventsSampledOutAllocFree pins the enabled hot path: a healthy
// call whose record the sampler drops must not allocate.
func TestWideEventsSampledOutAllocFree(t *testing.T) {
	rec := reqlog.New(reqlog.Options{
		Capacity:    64,
		SampleEvery: 1 << 30,
		Registry:    obs.NewRegistry(),
	})
	clk := simtime.NewVirtual(time.Unix(1_700_000_000, 0))
	fn := WithWideEvents(WideEventOptions{Recorder: rec, Clock: clk})(
		func(call *Call) (*wire.Message, error) { return nil, nil })
	call := &Call{Topic: "warm"}
	for i := 0; i < 50_000; i++ {
		_, _ = fn(call)
	}
	if avg := testing.AllocsPerRun(20_000, func() { _, _ = fn(call) }); avg != 0 {
		t.Errorf("sampled-out wide-event path allocates %.3f allocs/op, want 0", avg)
	}
}

// TestServerRecordsDispatchAndShed runs a bounded server end to end and
// checks both sides: dispatched requests get server wide events with
// latency, sheds get events carrying the reject reason.
func TestServerRecordsDispatchAndShed(t *testing.T) {
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	rec := newTestRecorder()
	block := make(chan struct{})
	release := make(chan struct{})
	srv := NewServer(l, ServerOptions{
		Name:        "srv",
		MaxInFlight: 1,
		ReqLog:      rec,
		Metrics:     obs.NewRegistry(),
	})
	defer srv.Close()
	srv.Handle("work", func(req *wire.Message) (*wire.Message, error) {
		block <- struct{}{}
		<-release
		return &wire.Message{Kind: wire.KindReply}, nil
	})

	c, err := NewCaller(tr, "srv", CallerOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first := c.Go(&Call{Topic: "work"})
	<-block // the slot is held; the next call must shed
	if _, err := c.Do(&Call{Topic: "work"}); !IsShed(err) {
		t.Fatalf("second call err = %v, want shed", err)
	}
	close(release)
	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	var sheds, oks []reqlog.Record
	for time.Now().Before(deadline) {
		sheds = rec.Snapshot(reqlog.Filter{Outcome: reqlog.OutcomeShed})
		oks = rec.Snapshot(reqlog.Filter{Outcome: reqlog.OutcomeOK})
		if len(sheds) == 1 && len(oks) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(sheds) != 1 || len(oks) != 1 {
		t.Fatalf("events: %d shed, %d ok (want 1 each)", len(sheds), len(oks))
	}
	if sheds[0].ShedReason != "server at capacity" || sheds[0].Kind != reqlog.KindServer {
		t.Errorf("shed event: %+v", sheds[0])
	}
	if oks[0].Topic != "work" || oks[0].Latency <= 0 {
		t.Errorf("dispatch event: %+v", oks[0])
	}
}
