package svcdesc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var now = time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)

func printerDesc() *Description {
	return &Description{
		Name:        "printer",
		Provider:    "node-7",
		InstanceID:  "lobby",
		Version:     "2.1",
		Reliability: 0.95,
		PowerLevel:  1.0,
		Attributes: map[string]string{
			"color": "true",
			"ppm":   "30",
			"paper": "A4,Letter",
		},
		Interfaces: []string{"print", "status"},
		Location:   &Location{X: 10, Y: 20},
		TTL:        time.Minute,
	}
}

func TestLocationDistance(t *testing.T) {
	a := Location{0, 0}
	b := Location{3, 4}
	if got := a.Distance(b); got != 5 {
		t.Fatalf("Distance = %v, want 5", got)
	}
}

func TestDescriptionValidate(t *testing.T) {
	if err := printerDesc().Validate(); err != nil {
		t.Fatal(err)
	}
	var nilDesc *Description
	if err := nilDesc.Validate(); err == nil {
		t.Error("nil description validated")
	}
	bad := printerDesc()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name validated")
	}
	bad = printerDesc()
	bad.Provider = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty provider validated")
	}
	bad = printerDesc()
	bad.Reliability = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("reliability > 1 validated")
	}
	bad = printerDesc()
	bad.PowerLevel = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative power validated")
	}
}

func TestDescriptionKey(t *testing.T) {
	d := printerDesc()
	if got := d.Key(); got != "node-7|printer|lobby" {
		t.Fatalf("Key = %q", got)
	}
}

func TestDescriptionClone(t *testing.T) {
	d := printerDesc()
	c := d.Clone()
	c.Attributes["color"] = "false"
	c.Interfaces[0] = "zzz"
	c.Location.X = 999
	if d.Attributes["color"] != "true" || d.Interfaces[0] != "print" || d.Location.X != 10 {
		t.Fatal("clone shares state with original")
	}
	var nilDesc *Description
	if nilDesc.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestNameMatching(t *testing.T) {
	tests := []struct {
		pattern string
		name    string
		want    bool
	}{
		{"printer", "printer", true},
		{"printer", "printer2", false},
		{"printer*", "printer2", true},
		{"sensor/*", "sensor/bloodpressure", true},
		{"sensor/*", "actuator/display", false},
		{"*", "anything", true},
		{"", "anything", true},
	}
	for _, tt := range tests {
		q := &Query{Name: tt.pattern}
		d := &Description{Name: tt.name, Provider: "p", Reliability: 1, PowerLevel: 1}
		if got := q.Matches(d, now); got != tt.want {
			t.Errorf("pattern %q vs %q = %v, want %v", tt.pattern, tt.name, got, tt.want)
		}
	}
}

func TestConstraintOperators(t *testing.T) {
	attrs := map[string]string{"ppm": "30", "paper": "A4,Letter", "model": "LaserJet"}
	tests := []struct {
		c    Constraint
		want bool
	}{
		{Constraint{"ppm", OpEq, "30"}, true},
		{Constraint{"ppm", OpEq, "30.0"}, true}, // numeric equality
		{Constraint{"ppm", OpNe, "25"}, true},
		{Constraint{"ppm", OpLt, "40"}, true},
		{Constraint{"ppm", OpLt, "30"}, false},
		{Constraint{"ppm", OpLe, "30"}, true},
		{Constraint{"ppm", OpGt, "29.5"}, true},
		{Constraint{"ppm", OpGe, "30"}, true},
		{Constraint{"ppm", OpGe, "31"}, false},
		{Constraint{"ppm", OpGt, "7"}, true}, // numeric, not lexicographic ("30" < "7" as strings)
		{Constraint{"paper", OpContains, "A4"}, true},
		{Constraint{"paper", OpContains, "A3"}, false},
		{Constraint{"model", OpEq, "LaserJet"}, true},
		{Constraint{"model", OpLt, "M"}, true}, // string comparison
		{Constraint{"model", OpExists, ""}, true},
		{Constraint{"missing", OpExists, ""}, false},
		{Constraint{"missing", OpEq, "x"}, false},
		{Constraint{"model", Op(99), "x"}, false},
	}
	for _, tt := range tests {
		if got := tt.c.Matches(attrs); got != tt.want {
			t.Errorf("%s %s %q = %v, want %v", tt.c.Attr, tt.c.Op, tt.c.Value, got, tt.want)
		}
	}
}

func TestQueryFullMatch(t *testing.T) {
	d := printerDesc()
	q := &Query{
		Name:              "printer",
		MinVersion:        "2.0",
		Constraints:       []Constraint{{"color", OpEq, "true"}, {"ppm", OpGe, "20"}},
		RequireInterfaces: []string{"print"},
		MinReliability:    0.9,
		Near:              &Location{X: 0, Y: 0},
		MaxDistance:       50,
	}
	if !q.Matches(d, now) {
		t.Fatal("full query should match")
	}
}

func TestQueryRejections(t *testing.T) {
	base := printerDesc()
	tests := map[string]*Query{
		"version":     {Name: "printer", MinVersion: "3.0"},
		"reliability": {Name: "printer", MinReliability: 0.99},
		"power":       {Name: "printer", MinPower: 1.1},
		"constraint":  {Name: "printer", Constraints: []Constraint{{"color", OpEq, "false"}}},
		"interface":   {Name: "printer", RequireInterfaces: []string{"fax"}},
		"distance":    {Name: "printer", Near: &Location{X: 1000, Y: 1000}, MaxDistance: 10},
	}
	for name, q := range tests {
		if q.Matches(base, now) {
			t.Errorf("%s: query should reject", name)
		}
	}
	// Spatial constraint against a service with no location.
	noLoc := printerDesc()
	noLoc.Location = nil
	q := &Query{Name: "printer", Near: &Location{}, MaxDistance: 10}
	if q.Matches(noLoc, now) {
		t.Error("spatial query matched location-less service")
	}
	if (&Query{}).Matches(nil, now) {
		t.Error("nil description matched")
	}
	var nilQ *Query
	if nilQ.Matches(base, now) {
		t.Error("nil query matched")
	}
}

func TestAvailabilityWindow(t *testing.T) {
	d := printerDesc()
	d.AvailableFrom = now.Add(-time.Hour)
	d.AvailableUntil = now.Add(time.Hour)
	q := &Query{Name: "printer"}
	if !q.Matches(d, now) {
		t.Fatal("inside window should match")
	}
	if q.Matches(d, now.Add(-2*time.Hour)) {
		t.Fatal("before window should not match")
	}
	if q.Matches(d, now.Add(2*time.Hour)) {
		t.Fatal("after window should not match")
	}
}

func TestPasswordGate(t *testing.T) {
	d := printerDesc()
	d.PasswordHash = HashPassword("s3cret")
	open := &Query{Name: "printer"}
	if open.Matches(d, now) {
		t.Fatal("protected service matched without password")
	}
	wrong := &Query{Name: "printer", Password: "guess"}
	if wrong.Matches(d, now) {
		t.Fatal("protected service matched with wrong password")
	}
	right := &Query{Name: "printer", Password: "s3cret"}
	if !right.Matches(d, now) {
		t.Fatal("correct password rejected")
	}
}

func TestHashPasswordStable(t *testing.T) {
	if HashPassword("x") != HashPassword("x") {
		t.Fatal("hash not deterministic")
	}
	if HashPassword("x") == HashPassword("y") {
		t.Fatal("distinct passwords collide trivially")
	}
	if len(HashPassword("x")) != 64 {
		t.Fatal("not hex sha-256")
	}
}

func TestCompareVersions(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1.0", "1.0", 0},
		{"1.0", "1.1", -1},
		{"2.0", "1.9", 1},
		{"1.10", "1.9", 1}, // numeric, not lexicographic
		{"1", "1.0", 0},
		{"1.0.1", "1.0", 1},
		{"1.a", "1.b", -1},
		{"", "", 0},
	}
	for _, tt := range tests {
		if got := CompareVersions(tt.a, tt.b); got != tt.want {
			t.Errorf("CompareVersions(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestOpRoundTrip(t *testing.T) {
	for op := OpEq; op <= OpExists; op++ {
		parsed, err := OpFromString(op.String())
		if err != nil || parsed != op {
			t.Errorf("op %v round trip: %v, %v", op, parsed, err)
		}
	}
	if _, err := OpFromString("bogus"); err == nil {
		t.Error("bogus op parsed")
	}
	if s := Op(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown op string: %s", s)
	}
}

func TestFilter(t *testing.T) {
	d1 := printerDesc()
	d2 := printerDesc()
	d2.InstanceID = "lab"
	d2.Reliability = 0.5
	d3 := printerDesc()
	d3.Name = "scanner"
	got := Filter([]*Description{d1, d2, d3}, &Query{Name: "printer", MinReliability: 0.9}, now)
	if len(got) != 1 || got[0] != d1 {
		t.Fatalf("Filter returned %d results", len(got))
	}
}

func TestSortByDistance(t *testing.T) {
	near := printerDesc()
	near.InstanceID = "near"
	near.Location = &Location{X: 1, Y: 0}
	far := printerDesc()
	far.InstanceID = "far"
	far.Location = &Location{X: 100, Y: 0}
	unknown := printerDesc()
	unknown.InstanceID = "unknown"
	unknown.Location = nil

	list := []*Description{unknown, far, near}
	SortByDistance(list, Location{0, 0})
	if list[0].InstanceID != "near" || list[1].InstanceID != "far" || list[2].InstanceID != "unknown" {
		t.Fatalf("order: %s %s %s", list[0].InstanceID, list[1].InstanceID, list[2].InstanceID)
	}
}

func TestXMLDescriptionRoundTrip(t *testing.T) {
	d := printerDesc()
	d.AvailableFrom = now.Add(-time.Hour)
	d.AvailableUntil = now.Add(time.Hour)
	d.PasswordHash = HashPassword("pw")
	data, err := MarshalDescription(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `name="printer"`) {
		t.Fatalf("not XML-ish: %s", data)
	}
	got, err := UnmarshalDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != d.Key() || got.Version != d.Version || got.TTL != d.TTL {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Attributes["ppm"] != "30" || len(got.Interfaces) != 2 {
		t.Fatalf("attributes/interfaces lost: %+v", got)
	}
	if got.Location == nil || got.Location.X != 10 {
		t.Fatalf("location lost: %+v", got.Location)
	}
	if !got.AvailableFrom.Equal(d.AvailableFrom) || !got.AvailableUntil.Equal(d.AvailableUntil) {
		t.Fatal("availability window lost")
	}
	if got.PasswordHash != d.PasswordHash {
		t.Fatal("password hash lost")
	}
}

func TestXMLDescriptionMinimal(t *testing.T) {
	d := &Description{Name: "x", Provider: "p"}
	data, err := MarshalDescription(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.Provider != "p" || got.Location != nil {
		t.Fatalf("minimal round trip: %+v", got)
	}
}

func TestXMLDescriptionInvalid(t *testing.T) {
	if _, err := MarshalDescription(&Description{}); err == nil {
		t.Error("invalid description marshaled")
	}
	if _, err := UnmarshalDescription([]byte("<service>")); err == nil {
		t.Error("malformed xml parsed")
	}
	if _, err := UnmarshalDescription([]byte(`<service name="" provider=""/>`)); err == nil {
		t.Error("invalid parsed description accepted")
	}
	if _, err := UnmarshalDescription([]byte(`<service name="x" provider="p"><availableFrom>bogus</availableFrom></service>`)); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestXMLQueryRoundTrip(t *testing.T) {
	q := &Query{
		Name:              "sensor/*",
		MinVersion:        "1.2",
		Constraints:       []Constraint{{"rate", OpGe, "10"}, {"unit", OpEq, "mmHg"}},
		RequireInterfaces: []string{"read"},
		MinReliability:    0.8,
		MinPower:          0.2,
		Password:          "pw",
		Near:              &Location{X: 5, Y: 6},
		MaxDistance:       30,
	}
	data, err := MarshalQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != q.Name || got.MinVersion != q.MinVersion ||
		got.MinReliability != q.MinReliability || got.MinPower != q.MinPower ||
		got.Password != q.Password || got.MaxDistance != q.MaxDistance {
		t.Fatalf("scalar fields mismatch: %+v", got)
	}
	if len(got.Constraints) != 2 || got.Constraints[0] != q.Constraints[0] {
		t.Fatalf("constraints mismatch: %+v", got.Constraints)
	}
	if got.Near == nil || *got.Near != *q.Near {
		t.Fatalf("near mismatch: %+v", got.Near)
	}
	if len(got.RequireInterfaces) != 1 || got.RequireInterfaces[0] != "read" {
		t.Fatalf("interfaces mismatch: %+v", got.RequireInterfaces)
	}
}

func TestXMLQueryBadOp(t *testing.T) {
	if _, err := UnmarshalQuery([]byte(`<query><where attr="a" op="frob">1</where></query>`)); err == nil {
		t.Error("bad op accepted")
	}
	if _, err := UnmarshalQuery([]byte("<query")); err == nil {
		t.Error("malformed xml accepted")
	}
}

// genDescription builds a random valid description.
func genDescription(r *rand.Rand) *Description {
	randStr := func(n int) string {
		b := make([]rune, 1+r.Intn(n))
		for i := range b {
			b[i] = rune('a' + r.Intn(26))
		}
		return string(b)
	}
	d := &Description{
		Name:        randStr(8),
		Provider:    randStr(8),
		InstanceID:  randStr(4),
		Version:     "1." + randStr(1),
		Reliability: r.Float64(),
		PowerLevel:  r.Float64(),
	}
	if r.Intn(2) == 0 {
		d.Location = &Location{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	if n := r.Intn(4); n > 0 {
		d.Attributes = make(map[string]string, n)
		for i := 0; i < n; i++ {
			d.Attributes[randStr(5)] = randStr(6)
		}
	}
	for i := 0; i < r.Intn(3); i++ {
		d.Interfaces = append(d.Interfaces, randStr(5))
	}
	return d
}

// Property: XML round trip preserves matching behaviour against arbitrary
// name queries.
func TestXMLRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		d := genDescription(r)
		data, err := MarshalDescription(d)
		if err != nil {
			return false
		}
		got, err := UnmarshalDescription(data)
		if err != nil {
			return false
		}
		q := &Query{Name: d.Name}
		return got.Key() == d.Key() && q.Matches(got, now) == q.Matches(d, now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a query with a constraint copied verbatim from the description's
// attributes always matches (OpEq on existing attribute).
func TestSelfConstraintProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		d := genDescription(r)
		q := &Query{Name: d.Name}
		for k, v := range d.Attributes {
			q.Constraints = append(q.Constraints, Constraint{Attr: k, Op: OpEq, Value: v})
		}
		return q.Matches(d, now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
