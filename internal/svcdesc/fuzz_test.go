package svcdesc

import (
	"testing"
	"time"
)

// FuzzMatch drives Query.Matches, Constraint.Matches, Filter and
// CompareVersions with arbitrary strings and operators. None may panic, and
// a few algebraic properties must hold regardless of input:
//
//   - CompareVersions is reflexive and antisymmetric;
//   - a query naming exactly the description's name (with no other
//     criteria) always matches an unconstrained description;
//   - an OpExists constraint matches iff the attribute is present;
//   - a reliability floor above the description's reliability never matches.
func FuzzMatch(f *testing.F) {
	f.Add("printer", "printer/*", "1.2", "color", byte(1), "true", 0.5, "secret")
	f.Add("sensor/bp", "sensor/*", "2.0.1", "rate", byte(5), "9.5", 0.9, "")
	f.Add("", "*", "", "", byte(8), "", 0.0, "pw")
	f.Add("a", "b", "x.y.z", "attr", byte(200), "1e308", -1.5, "\x00\xff")
	f.Add("svc", "svc", "1.0", "n", byte(3), "NaN", 0.25, "p")

	f.Fuzz(func(t *testing.T, name, qname, version, attr string, op byte, value string, minRel float64, password string) {
		now := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
		d := &Description{
			Name:        name,
			Provider:    "fuzz",
			Version:     version,
			Reliability: 0.8,
			PowerLevel:  1,
			Attributes:  map[string]string{attr: value},
			Location:    &Location{X: 1, Y: 2},
		}
		q := &Query{
			Name:           qname,
			MinVersion:     version,
			Constraints:    []Constraint{{Attr: attr, Op: Op(op), Value: value}},
			MinReliability: minRel,
			Password:       password,
			Near:           &Location{X: 3, Y: 4},
			MaxDistance:    100,
		}
		q.Matches(d, now)                      // must not panic
		q.Matches(nil, now)                    // nil description
		(&Query{}).Matches(d, now)             // empty query
		Filter([]*Description{d, nil}, q, now) // nil entries tolerated
		Filter(nil, q, now)

		if got := CompareVersions(version, version); got != 0 {
			t.Fatalf("CompareVersions(%q, %q) = %d, want 0", version, version, got)
		}
		if ab, ba := CompareVersions(version, name), CompareVersions(name, version); ab != -ba {
			t.Fatalf("CompareVersions antisymmetry broken: (%q,%q)=%d but (%q,%q)=%d",
				version, name, ab, name, version, ba)
		}

		exists := Constraint{Attr: attr, Op: OpExists}
		if got := exists.Matches(d.Attributes); !got {
			t.Fatalf("OpExists on present attribute %q = false", attr)
		}
		if got := exists.Matches(nil); got {
			t.Fatalf("OpExists on empty attributes = true for %q", attr)
		}

		exact := &Query{Name: name}
		if !exact.Matches(d, now) {
			t.Fatalf("exact-name query %q failed to match its own description", name)
		}

		if minRel > d.Reliability {
			floor := &Query{Name: name, MinReliability: minRel}
			if floor.Matches(d, now) {
				t.Fatalf("reliability floor %v matched description with reliability %v", minRel, d.Reliability)
			}
		}
	})
}
