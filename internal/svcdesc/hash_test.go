package svcdesc

import (
	"hash/fnv"
	"testing"
)

// TestKeyHashPinned pins the key hash to FNV-1a exactly: registry-cluster
// placement derives from these values, so a change here is a wire-format
// break, not a refactor.
func TestKeyHashPinned(t *testing.T) {
	pinned := map[string]uint64{
		"":                                     0xcbf29ce484222325,
		"node-1|printer|0":                     0xf6e3bc09e6b42d93,
		"10.0.0.7:9000|sensor/bloodpressure|a": 0xd4b065e580d7da4f,
	}
	for key, want := range pinned {
		if got := KeyHash(key); got != want {
			t.Errorf("KeyHash(%q) = %#x, want %#x", key, got, want)
		}
	}
}

// TestKeyHashMatchesStdlib cross-checks the hand-rolled (allocation-free)
// loop against hash/fnv over arbitrary keys.
func TestKeyHashMatchesStdlib(t *testing.T) {
	keys := []string{"a", "ab", "provider|name|instance", "日本語|svc|x", string([]byte{0, 1, 2, 255})}
	for _, key := range keys {
		h := fnv.New64a()
		h.Write([]byte(key))
		if got, want := KeyHash(key), h.Sum64(); got != want {
			t.Errorf("KeyHash(%q) = %#x, stdlib fnv = %#x", key, got, want)
		}
	}
}

func TestDescriptionKeyHash(t *testing.T) {
	d := &Description{Name: "printer", Provider: "node-1", InstanceID: "0"}
	if got, want := d.KeyHash(), KeyHash(d.Key()); got != want {
		t.Errorf("KeyHash() = %#x, want KeyHash(Key()) = %#x", got, want)
	}
}
