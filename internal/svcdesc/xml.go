package svcdesc

import (
	"encoding/xml"
	"fmt"
	"sort"
	"time"
)

// XML forms of Description and Query. These are the interoperable
// representations (§3.3, §3.9): any middleware able to parse XML can
// advertise into or query our registries.

type xmlDescription struct {
	XMLName     xml.Name  `xml:"service"`
	Name        string    `xml:"name,attr"`
	Provider    string    `xml:"provider,attr"`
	InstanceID  string    `xml:"instance,attr,omitempty"`
	Version     string    `xml:"version,attr,omitempty"`
	Reliability float64   `xml:"reliability,attr,omitempty"`
	PowerLevel  float64   `xml:"power,attr,omitempty"`
	From        string    `xml:"availableFrom,omitempty"`
	Until       string    `xml:"availableUntil,omitempty"`
	Password    string    `xml:"passwordHash,omitempty"`
	Location    *xmlPoint `xml:"location"`
	TTLMillis   int64     `xml:"ttlMillis,omitempty"`
	Attributes  []xmlAttr `xml:"attr"`
	Interfaces  []string  `xml:"interface"`
}

type xmlPoint struct {
	X float64 `xml:"x,attr"`
	Y float64 `xml:"y,attr"`
}

type xmlAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// MarshalDescription serializes a description to XML.
func MarshalDescription(d *Description) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	x := xmlDescription{
		Name:        d.Name,
		Provider:    d.Provider,
		InstanceID:  d.InstanceID,
		Version:     d.Version,
		Reliability: d.Reliability,
		PowerLevel:  d.PowerLevel,
		Password:    d.PasswordHash,
		TTLMillis:   d.TTL.Milliseconds(),
		Interfaces:  d.Interfaces,
	}
	if !d.AvailableFrom.IsZero() {
		x.From = d.AvailableFrom.UTC().Format(time.RFC3339Nano)
	}
	if !d.AvailableUntil.IsZero() {
		x.Until = d.AvailableUntil.UTC().Format(time.RFC3339Nano)
	}
	if d.Location != nil {
		x.Location = &xmlPoint{X: d.Location.X, Y: d.Location.Y}
	}
	for _, k := range sortedKeys(d.Attributes) {
		x.Attributes = append(x.Attributes, xmlAttr{Key: k, Value: d.Attributes[k]})
	}
	return xml.Marshal(x)
}

// UnmarshalDescription parses a description from XML.
func UnmarshalDescription(data []byte) (*Description, error) {
	var x xmlDescription
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("svcdesc: parse description: %w", err)
	}
	return descriptionFromXML(x)
}

// descriptionFromXML converts the parsed XML form into a validated
// Description.
func descriptionFromXML(x xmlDescription) (*Description, error) {
	d := &Description{
		Name:         x.Name,
		Provider:     x.Provider,
		InstanceID:   x.InstanceID,
		Version:      x.Version,
		Reliability:  x.Reliability,
		PowerLevel:   x.PowerLevel,
		PasswordHash: x.Password,
		Interfaces:   x.Interfaces,
		TTL:          time.Duration(x.TTLMillis) * time.Millisecond,
	}
	if x.From != "" {
		t, err := time.Parse(time.RFC3339Nano, x.From)
		if err != nil {
			return nil, fmt.Errorf("svcdesc: availableFrom: %w", err)
		}
		d.AvailableFrom = t.UTC()
	}
	if x.Until != "" {
		t, err := time.Parse(time.RFC3339Nano, x.Until)
		if err != nil {
			return nil, fmt.Errorf("svcdesc: availableUntil: %w", err)
		}
		d.AvailableUntil = t.UTC()
	}
	if x.Location != nil {
		d.Location = &Location{X: x.Location.X, Y: x.Location.Y}
	}
	if len(x.Attributes) > 0 {
		d.Attributes = make(map[string]string, len(x.Attributes))
		for _, a := range x.Attributes {
			d.Attributes[a.Key] = a.Value
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MarshalDescriptionList serializes descriptions into a <services> document.
func MarshalDescriptionList(descs []*Description) ([]byte, error) {
	var buf []byte
	buf = append(buf, "<services>"...)
	for _, d := range descs {
		item, err := MarshalDescription(d)
		if err != nil {
			return nil, err
		}
		buf = append(buf, item...)
	}
	buf = append(buf, "</services>"...)
	return buf, nil
}

// UnmarshalDescriptionList parses a <services> document.
func UnmarshalDescriptionList(data []byte) ([]*Description, error) {
	var list struct {
		XMLName xml.Name         `xml:"services"`
		Items   []xmlDescription `xml:"service"`
	}
	if err := xml.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("svcdesc: parse service list: %w", err)
	}
	out := make([]*Description, 0, len(list.Items))
	for _, x := range list.Items {
		d, err := descriptionFromXML(x)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

type xmlQuery struct {
	XMLName        xml.Name        `xml:"query"`
	Name           string          `xml:"name,attr,omitempty"`
	MinVersion     string          `xml:"minVersion,attr,omitempty"`
	MinReliability float64         `xml:"minReliability,attr,omitempty"`
	MinPower       float64         `xml:"minPower,attr,omitempty"`
	Password       string          `xml:"password,omitempty"`
	Near           *xmlPoint       `xml:"near"`
	MaxDistance    float64         `xml:"maxDistance,omitempty"`
	Constraints    []xmlConstraint `xml:"where"`
	Interfaces     []string        `xml:"requireInterface"`
}

type xmlConstraint struct {
	Attr  string `xml:"attr,attr"`
	Op    string `xml:"op,attr"`
	Value string `xml:",chardata"`
}

// MarshalQuery serializes a query to XML.
func MarshalQuery(q *Query) ([]byte, error) {
	x := xmlQuery{
		Name:           q.Name,
		MinVersion:     q.MinVersion,
		MinReliability: q.MinReliability,
		MinPower:       q.MinPower,
		Password:       q.Password,
		MaxDistance:    q.MaxDistance,
		Interfaces:     q.RequireInterfaces,
	}
	if q.Near != nil {
		x.Near = &xmlPoint{X: q.Near.X, Y: q.Near.Y}
	}
	for _, c := range q.Constraints {
		x.Constraints = append(x.Constraints, xmlConstraint{Attr: c.Attr, Op: c.Op.String(), Value: c.Value})
	}
	return xml.Marshal(x)
}

// UnmarshalQuery parses a query from XML.
func UnmarshalQuery(data []byte) (*Query, error) {
	var x xmlQuery
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("svcdesc: parse query: %w", err)
	}
	q := &Query{
		Name:              x.Name,
		MinVersion:        x.MinVersion,
		MinReliability:    x.MinReliability,
		MinPower:          x.MinPower,
		Password:          x.Password,
		MaxDistance:       x.MaxDistance,
		RequireInterfaces: x.Interfaces,
	}
	if x.Near != nil {
		q.Near = &Location{X: x.Near.X, Y: x.Near.Y}
	}
	for _, c := range x.Constraints {
		op, err := OpFromString(c.Op)
		if err != nil {
			return nil, err
		}
		q.Constraints = append(q.Constraints, Constraint{Attr: c.Attr, Op: op, Value: c.Value})
	}
	return q, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
