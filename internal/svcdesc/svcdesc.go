// Package svcdesc defines the middleware's service description language:
// how suppliers describe what they offer, how consumers describe what they
// need, and the matching engine that pairs the two.
//
// Per §3.3 of the paper, descriptions serialize to a markup form (XML) so
// matching criteria survive crossing language and middleware boundaries, and
// the matcher understands both exact and sophisticated criteria — typed
// attribute constraints, wildcards, reliability floors, and a password gate
// (security folded into the matching protocol rather than the transport).
package svcdesc

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Location is a physical position used for spatial QoS ("nearest best
// matched printer", §3.4).
type Location struct {
	X float64
	Y float64
}

// Distance returns the Euclidean distance to another location.
func (l Location) Distance(o Location) float64 {
	return math.Hypot(l.X-o.X, l.Y-o.Y)
}

// Description is a supplier's advertisement of one service.
type Description struct {
	// Name is the service type, e.g. "printer" or "sensor/bloodpressure".
	Name string
	// Provider is the transport address of the supplying node.
	Provider string
	// InstanceID distinguishes multiple instances of the same service type
	// on the same provider.
	InstanceID string
	// Version is a dotted version string, compared numerically per part.
	Version string
	// Attributes carries free-form typed metadata (values compared
	// numerically when both sides parse as numbers).
	Attributes map[string]string
	// Interfaces lists operation names the service implements.
	Interfaces []string
	// Reliability is the supplier's advertised delivery reliability in
	// [0,1] — part of supplier-side QoS (§3.4).
	Reliability float64
	// PowerLevel is the supplier's remaining energy fraction in [0,1]
	// (battery-powered suppliers degrade; consumers may demand a floor).
	PowerLevel float64
	// AvailableFrom/AvailableUntil bound the service's availability window
	// (zero values mean unbounded).
	AvailableFrom  time.Time
	AvailableUntil time.Time
	// PasswordHash, when non-empty, demands that queries present the
	// matching password (hex SHA-256).
	PasswordHash string
	// Location is the supplier's physical position, if known.
	Location *Location
	// TTL is the advertisement's lease duration; registries expire entries
	// after TTL (0 means the registry default).
	TTL time.Duration
}

// Key returns the registry identity of the advertisement.
func (d *Description) Key() string {
	return d.Provider + "|" + d.Name + "|" + d.InstanceID
}

// KeyHash returns the stable 64-bit hash of the advertisement key — the
// value sharded registries place on their consistent-hash ring. See KeyHash.
func (d *Description) KeyHash() uint64 { return KeyHash(d.Key()) }

// KeyHash is FNV-1a over the key bytes. The function is pinned by test: it
// must never change, because every member of a registry cluster (and every
// client routing writes to shard owners) derives placement from it — two
// builds disagreeing on the hash would scatter one service's advertisement
// across disjoint owner sets.
func KeyHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// HashPassword returns the hex SHA-256 of a plaintext password, the format
// stored in PasswordHash.
func HashPassword(plain string) string {
	sum := sha256.Sum256([]byte(plain))
	return hex.EncodeToString(sum[:])
}

// Validate checks structural invariants.
func (d *Description) Validate() error {
	if d == nil {
		return errors.New("svcdesc: nil description")
	}
	if d.Name == "" {
		return errors.New("svcdesc: description needs a Name")
	}
	if d.Provider == "" {
		return errors.New("svcdesc: description needs a Provider")
	}
	if d.Reliability < 0 || d.Reliability > 1 {
		return fmt.Errorf("svcdesc: reliability %v outside [0,1]", d.Reliability)
	}
	if d.PowerLevel < 0 || d.PowerLevel > 1 {
		return fmt.Errorf("svcdesc: power level %v outside [0,1]", d.PowerLevel)
	}
	return nil
}

// Clone returns a deep copy.
func (d *Description) Clone() *Description {
	if d == nil {
		return nil
	}
	out := *d
	if d.Attributes != nil {
		out.Attributes = make(map[string]string, len(d.Attributes))
		for k, v := range d.Attributes {
			out.Attributes[k] = v
		}
	}
	out.Interfaces = append([]string(nil), d.Interfaces...)
	if d.Location != nil {
		loc := *d.Location
		out.Location = &loc
	}
	return &out
}

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
	OpExists
)

var opNames = [...]string{"?", "eq", "ne", "lt", "le", "gt", "ge", "contains", "exists"}

// String returns the operator's mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && o > 0 {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpFromString parses an operator mnemonic.
func OpFromString(s string) (Op, error) {
	for i := 1; i < len(opNames); i++ {
		if opNames[i] == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("svcdesc: unknown operator %q", s)
}

// Constraint is one attribute predicate in a query.
type Constraint struct {
	Attr  string
	Op    Op
	Value string
}

// Matches evaluates the constraint against an attribute map.
func (c Constraint) Matches(attrs map[string]string) bool {
	got, ok := attrs[c.Attr]
	if c.Op == OpExists {
		return ok
	}
	if !ok {
		return false
	}
	// Numeric comparison when both sides parse; string comparison otherwise.
	gn, gerr := strconv.ParseFloat(got, 64)
	wn, werr := strconv.ParseFloat(c.Value, 64)
	numeric := gerr == nil && werr == nil
	switch c.Op {
	case OpEq:
		if numeric {
			return gn == wn
		}
		return got == c.Value
	case OpNe:
		if numeric {
			return gn != wn
		}
		return got != c.Value
	case OpLt:
		if numeric {
			return gn < wn
		}
		return got < c.Value
	case OpLe:
		if numeric {
			return gn <= wn
		}
		return got <= c.Value
	case OpGt:
		if numeric {
			return gn > wn
		}
		return got > c.Value
	case OpGe:
		if numeric {
			return gn >= wn
		}
		return got >= c.Value
	case OpContains:
		return strings.Contains(got, c.Value)
	default:
		return false
	}
}

// Query is a consumer's service request.
type Query struct {
	// Name selects the service type; a trailing "*" makes it a prefix
	// pattern ("sensor/*").
	Name string
	// MinVersion, when non-empty, requires Version >= MinVersion
	// (dotted-numeric comparison).
	MinVersion string
	// Constraints must all hold on the description's attributes.
	Constraints []Constraint
	// RequireInterfaces lists operations the service must implement.
	RequireInterfaces []string
	// MinReliability and MinPower are supplier QoS floors.
	MinReliability float64
	MinPower       float64
	// Password is the plaintext credential presented against
	// PasswordHash-protected services.
	Password string
	// Near, with MaxDistance > 0, constrains suppliers spatially.
	Near        *Location
	MaxDistance float64
}

// Matches reports whether the description satisfies every criterion of the
// query, evaluated at time now (for the availability window).
func (q *Query) Matches(d *Description, now time.Time) bool {
	if d == nil || q == nil {
		return false
	}
	if !nameMatches(q.Name, d.Name) {
		return false
	}
	if q.MinVersion != "" && CompareVersions(d.Version, q.MinVersion) < 0 {
		return false
	}
	if d.Reliability < q.MinReliability {
		return false
	}
	if d.PowerLevel < q.MinPower {
		return false
	}
	if !d.AvailableFrom.IsZero() && now.Before(d.AvailableFrom) {
		return false
	}
	if !d.AvailableUntil.IsZero() && now.After(d.AvailableUntil) {
		return false
	}
	if d.PasswordHash != "" && HashPassword(q.Password) != d.PasswordHash {
		return false
	}
	for _, c := range q.Constraints {
		if !c.Matches(d.Attributes) {
			return false
		}
	}
	for _, want := range q.RequireInterfaces {
		if !containsString(d.Interfaces, want) {
			return false
		}
	}
	if q.Near != nil && q.MaxDistance > 0 {
		if d.Location == nil {
			return false
		}
		if d.Location.Distance(*q.Near) > q.MaxDistance {
			return false
		}
	}
	return true
}

// nameMatches implements exact and trailing-* prefix matching.
func nameMatches(pattern, name string) bool {
	if pattern == "" || pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(name, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == name
}

func containsString(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// CompareVersions compares dotted version strings numerically per part,
// returning -1, 0, or 1. Missing parts count as zero; non-numeric parts
// compare as strings.
func CompareVersions(a, b string) int {
	as := strings.Split(a, ".")
	bs := strings.Split(b, ".")
	n := len(as)
	if len(bs) > n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		av, bv := "0", "0"
		if i < len(as) {
			av = as[i]
		}
		if i < len(bs) {
			bv = bs[i]
		}
		an, aerr := strconv.Atoi(av)
		bn, berr := strconv.Atoi(bv)
		if aerr == nil && berr == nil {
			if an != bn {
				if an < bn {
					return -1
				}
				return 1
			}
			continue
		}
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Filter returns the descriptions matching q, preserving order.
func Filter(descs []*Description, q *Query, now time.Time) []*Description {
	var out []*Description
	for _, d := range descs {
		if q.Matches(d, now) {
			out = append(out, d)
		}
	}
	return out
}

// SortByDistance orders descriptions by distance from loc (unknown locations
// last), stably.
func SortByDistance(descs []*Description, loc Location) {
	sort.SliceStable(descs, func(i, j int) bool {
		di, dj := descs[i].Location, descs[j].Location
		switch {
		case di == nil && dj == nil:
			return false
		case di == nil:
			return false
		case dj == nil:
			return true
		default:
			return di.Distance(loc) < dj.Distance(loc)
		}
	})
}
