package discovery

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

// fakeResolver is a controllable inner resolver: it counts lookups, can
// block them on a gate, and serves a fixed description set.
type fakeResolver struct {
	mu      sync.Mutex
	descs   []*svcdesc.Description
	lookups atomic.Int64
	gate    chan struct{} // non-nil: Lookup blocks until the gate closes
}

func (f *fakeResolver) set(descs ...*svcdesc.Description) {
	f.mu.Lock()
	f.descs = descs
	f.mu.Unlock()
}

func (f *fakeResolver) Register(*svcdesc.Description) error { return nil }
func (f *fakeResolver) Unregister(string) error             { return nil }
func (f *fakeResolver) Renew(string) error                  { return nil }
func (f *fakeResolver) Close() error                        { return nil }

func (f *fakeResolver) Lookup(*svcdesc.Query) ([]*svcdesc.Description, error) {
	f.lookups.Add(1)
	f.mu.Lock()
	gate := f.gate
	descs := append([]*svcdesc.Description(nil), f.descs...)
	f.mu.Unlock()
	if gate != nil {
		<-gate
		// Re-read: the gate pattern is used to swap data mid-flight.
		f.mu.Lock()
		descs = append([]*svcdesc.Description(nil), f.descs...)
		f.mu.Unlock()
	}
	return descs, nil
}

func bpQuery() *svcdesc.Query { return &svcdesc.Query{Name: "sensor/bp"} }

func TestCachedFreshHitServesLocally(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	inner := &fakeResolver{}
	inner.set(desc("n1", "sensor/bp"))
	c := NewCached(inner, CacheOptions{Clock: clock, TTL: time.Second})
	defer c.Close() //nolint:errcheck

	for i := 0; i < 5; i++ {
		got, err := c.Lookup(bpQuery())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Provider != "n1" {
			t.Fatalf("lookup %d = %+v", i, got)
		}
		clock.Advance(100 * time.Millisecond)
	}
	if n := inner.lookups.Load(); n != 1 {
		t.Fatalf("inner lookups = %d, want 1 (all hits after the fill)", n)
	}
}

func TestCachedExpiresExactlyAtTTLBoundary(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	inner := &fakeResolver{}
	inner.set(desc("n1", "sensor/bp"))
	c := NewCached(inner, CacheOptions{Clock: clock, TTL: time.Second, StaleFor: time.Second})
	defer c.Close() //nolint:errcheck

	if _, err := c.Lookup(bpQuery()); err != nil { // fill
		t.Fatal(err)
	}
	clock.Advance(time.Second - time.Nanosecond)
	if _, err := c.Lookup(bpQuery()); err != nil { // age just under TTL: fresh
		t.Fatal(err)
	}
	if n := inner.lookups.Load(); n != 1 {
		t.Fatalf("inner lookups = %d before the boundary, want 1", n)
	}

	clock.Advance(time.Nanosecond) // age == TTL exactly: no longer fresh
	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	// The boundary falls into the stale window, so the entry is served but a
	// revalidation fetch must fire.
	deadline := time.Now().Add(5 * time.Second)
	for inner.lookups.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("inner lookups = %d at the TTL boundary, want 2 (revalidation)", inner.lookups.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCachedStaleServeWhileRevalidate(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	inner := &fakeResolver{}
	inner.set(desc("n1", "sensor/bp"))
	c := NewCached(inner, CacheOptions{Clock: clock, TTL: time.Second, StaleFor: time.Minute})
	defer c.Close() //nolint:errcheck

	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}

	// Make the next wire fetch slow and change what it will return.
	gate := make(chan struct{})
	inner.mu.Lock()
	inner.gate = gate
	inner.mu.Unlock()
	inner.set(desc("n2", "sensor/bp"))

	clock.Advance(2 * time.Second) // into the stale window
	start := time.Now()
	got, err := c.Lookup(bpQuery())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stale lookup blocked for %v on the in-flight revalidation", elapsed)
	}
	if len(got) != 1 || got[0].Provider != "n1" {
		t.Fatalf("stale serve = %+v, want the old n1 result", got)
	}

	close(gate) // let the revalidation land
	inner.mu.Lock()
	inner.gate = nil
	inner.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Lookup(bpQuery())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 1 && got[0].Provider == "n2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revalidated result never became visible: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCachedBlocksPastStaleWindow(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	inner := &fakeResolver{}
	inner.set(desc("n1", "sensor/bp"))
	c := NewCached(inner, CacheOptions{Clock: clock, TTL: time.Second, StaleFor: time.Second})
	defer c.Close() //nolint:errcheck

	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // age == TTL+StaleFor: past the window
	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	if n := inner.lookups.Load(); n != 2 {
		t.Fatalf("inner lookups = %d past the stale window, want a blocking fetch", n)
	}
}

func TestCachedSingleFlightCoalesces(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	inner := &fakeResolver{}
	inner.set(desc("n1", "sensor/bp"))
	gate := make(chan struct{})
	inner.mu.Lock()
	inner.gate = gate
	inner.mu.Unlock()
	c := NewCached(inner, CacheOptions{Clock: clock, TTL: time.Second})
	defer c.Close() //nolint:errcheck

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	results := make([][]*svcdesc.Description, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Lookup(bpQuery())
		}(i)
	}
	// Wait until the one wire fetch is in flight, then give the other
	// callers a moment to pile onto it before releasing.
	deadline := time.Now().Add(5 * time.Second)
	for inner.lookups.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no fetch started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := inner.lookups.Load(); n != 1 {
		t.Fatalf("inner lookups = %d for %d concurrent callers, want 1", n, callers)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(results[i]) != 1 || results[i][0].Provider != "n1" {
			t.Fatalf("caller %d = %+v", i, results[i])
		}
	}
}

func TestCachedInvalidateProviderDropsMatchingEntries(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	inner := &fakeResolver{}
	inner.set(desc("n1", "sensor/bp"))
	c := NewCached(inner, CacheOptions{Clock: clock, TTL: time.Hour})
	defer c.Close() //nolint:errcheck

	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	Invalidate(c, "unrelated-provider")
	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	if n := inner.lookups.Load(); n != 1 {
		t.Fatalf("unrelated invalidation evicted the entry: lookups = %d", n)
	}
	Invalidate(c, "n1")
	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	if n := inner.lookups.Load(); n != 2 {
		t.Fatalf("invalidation did not evict: lookups = %d, want 2", n)
	}
}

func TestCachedWriteClearsCache(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	inner := &fakeResolver{}
	inner.set(desc("n1", "sensor/bp"))
	c := NewCached(inner, CacheOptions{Clock: clock, TTL: time.Hour})
	defer c.Close() //nolint:errcheck

	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(desc("n2", "printer")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(bpQuery()); err != nil {
		t.Fatal(err)
	}
	if n := inner.lookups.Load(); n != 2 {
		t.Fatalf("register did not clear the cache: lookups = %d", n)
	}
}

// TestServerSweepTicker drives the registry server's sweep loop from a
// virtual clock: expired leases vanish with no request traffic at all.
func TestServerSweepTicker(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	store := NewStore(clock, time.Second)
	fabric := transport.NewFabric()
	st := transport.NewMem(fabric)
	l, err := st.Listen("registry")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewResolverServer(store, l, ServerOptions{Clock: clock, SweepEvery: 500 * time.Millisecond})
	defer srv.Close() //nolint:errcheck

	if err := store.Register(desc("n1", "sensor/bp")); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("Len = %d", store.Len())
	}
	// Advance in ticker-sized steps until the loop has both re-armed and
	// swept; the lease is 1s so two ticks suffice once they land.
	deadline := time.Now().Add(5 * time.Second)
	for store.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep ticker never collected the expired lease: Len = %d", store.Len())
		}
		clock.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
