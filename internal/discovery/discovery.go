// Package discovery implements the paper's plug-and-play feature (§3.3):
// service advertisement and lookup in four organizations, matching the
// design space the paper lays out —
//
//   - Centralized: a registry server over any Transport (Server/Client),
//   - Distributed: TTL-bounded query flooding with reverse-path replies and
//     optional advertisement gossip (Agent),
//   - Hybrid: mirrored registries for scalability and fail-over (Mirrored),
//   - Adaptive: picks centralized or distributed per operation from the
//     observed environment — local density and registry health (Adaptive).
//
// Advertisements carry TTL leases; registries expire un-renewed entries so a
// crashed supplier disappears by itself, which is what lets applications
// "adapt as the environment changes".
package discovery

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
)

// Resolver is the uniform discovery API every organization implements —
// centralized client, flood agent, mirrored, adaptive, the sharded cluster
// resolver, and the lease cache that can wrap any of them. Consumers (core
// bindings, the health watcher, command wiring) depend on nothing more
// concrete than this.
type Resolver interface {
	// Register advertises a service (idempotent on the description key;
	// re-registering renews the lease).
	Register(d *svcdesc.Description) error
	// Unregister withdraws an advertisement by its description key.
	Unregister(key string) error
	// Renew extends an advertisement's lease.
	Renew(key string) error
	// Lookup returns the descriptions matching the query.
	Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error)
	// Close releases the registry's resources.
	Close() error
}

// Registry is the historical name for Resolver, kept as an alias so existing
// call sites and implementations need no change.
type Registry = Resolver

// Invalidator is implemented by resolvers that keep local lookup state (the
// lease cache, and any wrapper forwarding to one). Consumers call it when
// out-of-band evidence — a failure detector suspecting a peer, a rebind away
// from a corpse — says cached results naming that provider are no longer
// trustworthy.
type Invalidator interface {
	// InvalidateProvider drops cached lookup results that include the
	// provider.
	InvalidateProvider(provider string)
}

// Invalidate forwards to r's InvalidateProvider when r caches lookups (it
// is a no-op for cache-less resolvers).
func Invalidate(r Resolver, provider string) {
	if inv, ok := r.(Invalidator); ok {
		inv.InvalidateProvider(provider)
	}
}

// Discovery errors.
var (
	ErrNotFound = errors.New("discovery: no such advertisement")
	ErrClosed   = errors.New("discovery: registry closed")
)

// DefaultTTL is the advertisement lease applied when a description carries
// none.
const DefaultTTL = 30 * time.Second

// storeEntry is one leased advertisement.
type storeEntry struct {
	desc    *svcdesc.Description
	expires time.Time
}

// Store is the in-memory leased advertisement table underlying every
// organization. The zero value is not usable; construct with NewStore.
type Store struct {
	clock      simtime.Clock
	defaultTTL time.Duration

	mu      sync.Mutex
	entries map[string]storeEntry
	// version increments on every mutation; callers use it for cheap change
	// detection.
	version atomic.Int64
}

var _ Registry = (*Store)(nil)

// NewStore creates a store expiring entries against the given clock
// (simtime.Real if nil), defaulting leases to defaultTTL (DefaultTTL if 0).
func NewStore(clock simtime.Clock, defaultTTL time.Duration) *Store {
	if clock == nil {
		clock = simtime.Real{}
	}
	if defaultTTL <= 0 {
		defaultTTL = DefaultTTL
	}
	return &Store{
		clock:      clock,
		defaultTTL: defaultTTL,
		entries:    make(map[string]storeEntry),
	}
}

// Register implements Registry.
func (s *Store) Register(d *svcdesc.Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	ttl := d.TTL
	if ttl <= 0 {
		ttl = s.defaultTTL
	}
	d = d.Clone()
	s.mu.Lock()
	s.entries[d.Key()] = storeEntry{desc: d, expires: s.clock.Now().Add(ttl)}
	s.mu.Unlock()
	s.version.Add(1)
	return nil
}

// Unregister implements Registry.
func (s *Store) Unregister(key string) error {
	s.mu.Lock()
	_, ok := s.entries[key]
	delete(s.entries, key)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.version.Add(1)
	return nil
}

// Renew implements Registry.
func (s *Store) Renew(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || s.clock.Now().After(e.expires) {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	ttl := e.desc.TTL
	if ttl <= 0 {
		ttl = s.defaultTTL
	}
	e.expires = s.clock.Now().Add(ttl)
	s.entries[key] = e
	return nil
}

// Lookup implements Registry. Expired entries never match.
func (s *Store) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k, e := range s.entries {
		if now.After(e.expires) {
			continue
		}
		if q.Matches(e.desc, now) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]*svcdesc.Description, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.entries[k].desc.Clone())
	}
	return out, nil
}

// Close implements Registry (a Store holds no external resources).
func (s *Store) Close() error { return nil }

// Sweep removes expired entries and returns how many were removed. Servers
// call it periodically so the table does not accumulate dead suppliers.
func (s *Store) Sweep() int {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for k, e := range s.entries {
		if now.After(e.expires) {
			delete(s.entries, k)
			removed++
		}
	}
	if removed > 0 {
		s.version.Add(1)
	}
	return removed
}

// Len returns the number of (possibly expired) entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Version returns the mutation counter.
func (s *Store) Version() int64 { return s.version.Load() }

// All returns every unexpired description, sorted by key.
func (s *Store) All() []*svcdesc.Description {
	descs, _ := s.Lookup(&svcdesc.Query{})
	return descs
}
