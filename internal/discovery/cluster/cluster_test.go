package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
)

var epoch = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)

func desc(provider, name string) *svcdesc.Description {
	return &svcdesc.Description{
		Name:        name,
		Provider:    provider,
		Reliability: 0.9,
		PowerLevel:  1.0,
	}
}

// --- ring ---

func TestRingCanonicalAndDeterministic(t *testing.T) {
	a := NewRing([]string{"r2", "r0", "r1", "r0", ""}, 32)
	b := NewRing([]string{"r1", "r2", "r0"}, 32)
	if !reflect.DeepEqual(a.Members(), []string{"r0", "r1", "r2"}) {
		t.Fatalf("Members = %v", a.Members())
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("node-%d|svc/%d|", i, i)
		if !reflect.DeepEqual(a.Owners(key, 2), b.Owners(key, 2)) {
			t.Fatalf("placement differs for %q: %v vs %v",
				key, a.Owners(key, 2), b.Owners(key, 2))
		}
	}
}

func TestRingOwnersDistinctAndClamped(t *testing.T) {
	r := NewRing([]string{"r0", "r1", "r2"}, 0)
	owners := r.Owners("some|key|", 5)
	if len(owners) != 3 {
		t.Fatalf("Owners clamp = %v", owners)
	}
	seen := map[string]bool{}
	for _, m := range owners {
		if seen[m] {
			t.Fatalf("duplicate owner in %v", owners)
		}
		seen[m] = true
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(0) = %v", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"r0", "r1", "r2"}, 0)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("prov-%d|svc-%d|", i, i%7), 1)[0]]++
	}
	for m, c := range counts {
		// With 64 vnodes each member should hold a sane share; the bound is
		// deliberately loose (1/6th to 1/1.5th of the keyspace for N=3).
		if c < keys/6 || c > 2*keys/3 {
			t.Fatalf("member %s owns %d of %d keys: unbalanced %v", m, c, keys, counts)
		}
	}
}

func TestRingOwnsAgreesWithOwners(t *testing.T) {
	r := NewRing([]string{"r0", "r1", "r2", "r3", "r4"}, 16)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("p%d|s%d|", i, i)
		owners := r.Owners(key, 2)
		for _, m := range r.Members() {
			want := m == owners[0] || m == owners[1]
			if got := r.Owns(m, key, 2); got != want {
				t.Fatalf("Owns(%s, %s) = %v, owners %v", m, key, got, owners)
			}
		}
	}
}

// --- gossip codec ---

func TestGossipDigestRoundTrip(t *testing.T) {
	in := &Digest{
		From: "r0",
		Entries: []DigestEntry{
			{Key: "a|b|", Seq: 7, Origin: "r1"},
			{Key: "c|d|e", Seq: 1 << 40, Origin: "r2"},
		},
	}
	out, err := DecodeDigest(AppendDigest(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestGossipDeltaRoundTrip(t *testing.T) {
	in := &Delta{
		From: "r1",
		Entries: []DeltaEntry{
			{Key: "a|b|", Seq: 3, Origin: "r0", TTLMillis: 1500, Desc: []byte("<x/>")},
			{Key: "dead|key|", Seq: 9, Origin: "r2", Deleted: true, TTLMillis: 30000},
		},
		Want: []string{"p|q|", "r|s|"},
	}
	out, err := DecodeDelta(AppendDelta(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestGossipDecodeRejects(t *testing.T) {
	valid := AppendDigest(nil, &Digest{From: "r0", Entries: []DigestEntry{{Key: "k", Seq: 1, Origin: "r0"}}})
	cases := map[string][]byte{
		"empty":       nil,
		"bad version": append([]byte{99}, valid[1:]...),
		"wrong kind":  AppendDelta(nil, &Delta{From: "r0"}),
		"trailing":    append(append([]byte(nil), valid...), 0xFF),
		"truncated":   valid[:len(valid)-2],
		"huge count":  append([]byte{gossipVersion, kindDigest, 2, 'r', '0'}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, buf := range cases {
		if _, err := DecodeDigest(buf); err == nil {
			t.Fatalf("%s: decoded", name)
		} else if !errors.Is(err, ErrBadGossip) {
			t.Fatalf("%s: err = %v, want ErrBadGossip", name, err)
		}
	}
	if _, err := DecodeDelta(valid); err == nil {
		t.Fatal("delta decoder accepted a digest")
	}
}

// --- table ---

func TestTableLWWConvergence(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	a := NewTable("ra", clock, time.Minute, time.Minute)
	b := NewTable("rb", clock, time.Minute, time.Minute)
	all := func(string) bool { return true }

	d := desc("n1", "sensor/bp")
	if err := a.Register(d); err != nil {
		t.Fatal(err)
	}
	key := d.Key()

	// Replicate a -> b through a full round.
	delta := a.diff("ra", b.digest("rb"), all, all)
	if n := b.apply(delta.Entries, all); n != 1 {
		t.Fatalf("apply = %d", n)
	}
	if !b.HasLive(key) {
		t.Fatal("entry did not replicate")
	}

	// b unregisters; the tombstone must win on a even though a's copy lives.
	if err := b.Unregister(key); err != nil {
		t.Fatal(err)
	}
	delta = b.diff("rb", a.digest("ra"), all, all)
	if n := a.apply(delta.Entries, all); n != 1 {
		t.Fatalf("tombstone apply = %d", n)
	}
	if a.HasLive(key) {
		t.Fatal("tombstone lost LWW against the live copy")
	}

	// A re-register (new local write on a) must beat the tombstone back.
	if err := a.Register(d); err != nil {
		t.Fatal(err)
	}
	delta = a.diff("ra", b.digest("rb"), all, all)
	b.apply(delta.Entries, all)
	if !b.HasLive(key) {
		t.Fatal("re-register lost against the tombstone")
	}
}

func TestTableLeaseTravelsAsRemainingTTL(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	a := NewTable("ra", clock, time.Minute, time.Minute)
	b := NewTable("rb", clock, time.Minute, time.Minute)
	all := func(string) bool { return true }

	d := desc("n1", "printer")
	d.TTL = 10 * time.Second
	if err := a.Register(d); err != nil {
		t.Fatal(err)
	}
	clock.Advance(4 * time.Second)
	delta := a.diff("ra", b.digest("rb"), all, all)
	b.apply(delta.Entries, all)

	// The copy on b carries only the ~6s that remained, not a fresh 10s.
	clock.Advance(5 * time.Second)
	if !b.HasLive(d.Key()) {
		t.Fatal("lease died early on the replica")
	}
	clock.Advance(2 * time.Second)
	if b.HasLive(d.Key()) {
		t.Fatal("replica outlived the remaining lease")
	}
}

func TestTableSweepRemovesExpired(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	tab := NewTable("ra", clock, 10*time.Second, 5*time.Second)
	d := desc("n1", "sensor/bp")
	if err := tab.Register(d); err != nil {
		t.Fatal(err)
	}
	d2 := desc("n2", "printer")
	if err := tab.Register(d2); err != nil {
		t.Fatal(err)
	}
	if err := tab.Unregister(d2.Key()); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	clock.Advance(6 * time.Second)
	if got := tab.Sweep(); got != 1 { // the tombstone (5s) expired, the lease (10s) not
		t.Fatalf("Sweep = %d", got)
	}
	clock.Advance(5 * time.Second)
	if got := tab.Sweep(); got != 1 {
		t.Fatalf("second Sweep = %d", got)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len after sweeps = %d", tab.Len())
	}
}

func TestTableRenewBumpsSequence(t *testing.T) {
	clock := simtime.NewVirtual(epoch)
	a := NewTable("ra", clock, 10*time.Second, time.Minute)
	b := NewTable("rb", clock, 10*time.Second, time.Minute)
	all := func(string) bool { return true }

	d := desc("n1", "sensor/bp")
	if err := a.Register(d); err != nil {
		t.Fatal(err)
	}
	b.apply(a.diff("ra", b.digest("rb"), all, all).Entries, all)

	clock.Advance(8 * time.Second)
	if err := a.Renew(d.Key()); err != nil {
		t.Fatal(err)
	}
	// The renewal must show up as "a is newer" in the next digest exchange.
	delta := a.diff("ra", b.digest("rb"), all, all)
	if len(delta.Entries) != 1 {
		t.Fatalf("renewal invisible to anti-entropy: %+v", delta)
	}
	b.apply(delta.Entries, all)
	clock.Advance(5 * time.Second) // 13s from register: dead without the renewal
	if !b.HasLive(d.Key()) {
		t.Fatal("renewed lease did not propagate")
	}
}

func TestTableApplyFiltersOwnership(t *testing.T) {
	tab := NewTable("ra", simtime.NewVirtual(epoch), time.Minute, time.Minute)
	de := DeltaEntry{Key: "n1|printer|", Seq: 1, Origin: "rb", TTLMillis: 60000}
	if n := tab.apply([]DeltaEntry{de}, func(string) bool { return false }); n != 0 {
		t.Fatalf("applied a key this member does not own: %d", n)
	}
	if tab.Len() != 0 {
		t.Fatal("misrouted entry stored")
	}
}

func TestTableRejectsMalformedDesc(t *testing.T) {
	tab := NewTable("ra", simtime.NewVirtual(epoch), time.Minute, time.Minute)
	all := func(string) bool { return true }
	de := DeltaEntry{Key: "n1|printer|", Seq: 1, Origin: "rb", TTLMillis: 60000, Desc: []byte("junk")}
	if n := tab.apply([]DeltaEntry{de}, all); n != 0 {
		t.Fatalf("applied junk desc: %d", n)
	}
}

// --- cluster: nodes + resolver over a mem fabric ---

type testCluster struct {
	fabric  *transport.Fabric
	nodes   []*Node
	members []string
}

func newTestCluster(t *testing.T, n, rf int) *testCluster {
	t.Helper()
	tc := &testCluster{fabric: transport.NewFabric()}
	for i := 0; i < n; i++ {
		tc.members = append(tc.members, fmt.Sprintf("registry%d", i))
	}
	for i := 0; i < n; i++ {
		tr := transport.NewMem(tc.fabric)
		l, err := tr.Listen(tc.members[i])
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(tr, l, NodeOptions{
			Self:              tc.members[i],
			Members:           tc.members,
			ReplicationFactor: rf,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range tc.nodes {
			if node != nil {
				_ = node.Close()
			}
		}
	})
	return tc
}

// settle runs full-mesh anti-entropy rounds until no round moves data.
func (tc *testCluster) settle(t *testing.T) {
	t.Helper()
	for round := 0; round < 5; round++ {
		for _, a := range tc.nodes {
			if a == nil {
				continue
			}
			for _, peer := range tc.members {
				if peer == a.Self() {
					continue
				}
				if err := a.SyncWith(peer); err != nil {
					t.Fatalf("sync %s -> %s: %v", a.Self(), peer, err)
				}
			}
		}
	}
}

func (tc *testCluster) resolver(t *testing.T, rf int) *Resolver {
	t.Helper()
	r, err := NewResolver(transport.NewMem(tc.fabric), ResolverOptions{
		Members:           tc.members,
		ReplicationFactor: rf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func TestClusterReplicatesAtFactor(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	res := tc.resolver(t, 2)
	var keys []string
	for i := 0; i < 20; i++ {
		d := desc(fmt.Sprintf("node-%d", i), fmt.Sprintf("svc/%d", i))
		if err := res.Register(d); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, d.Key())
	}
	tc.settle(t)
	for _, key := range keys {
		copies := 0
		for _, node := range tc.nodes {
			if node.Table().HasLive(key) {
				if !node.Ring().Owns(node.Self(), key, 2) {
					t.Fatalf("%s holds %s without owning it", node.Self(), key)
				}
				copies++
			}
		}
		if copies != 2 {
			t.Fatalf("key %s has %d live copies, want 2", key, copies)
		}
	}
}

func TestClusterLookupMergesShards(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	res := tc.resolver(t, 2)
	for i := 0; i < 12; i++ {
		if err := res.Register(desc(fmt.Sprintf("node-%d", i), "sensor/bp")); err != nil {
			t.Fatal(err)
		}
	}
	tc.settle(t)
	got, err := res.Lookup(&svcdesc.Query{Name: "sensor/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("merged lookup = %d descs, want 12", len(got))
	}
	seen := map[string]bool{}
	for _, d := range got {
		if seen[d.Key()] {
			t.Fatalf("duplicate key %s in merge", d.Key())
		}
		seen[d.Key()] = true
	}
}

func TestClusterSurvivesSingleNodeKill(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	res := tc.resolver(t, 2)
	res.SetCallTimeout(500*time.Millisecond, nil)
	for i := 0; i < 12; i++ {
		if err := res.Register(desc(fmt.Sprintf("node-%d", i), "sensor/bp")); err != nil {
			t.Fatal(err)
		}
	}
	tc.settle(t)

	_ = tc.nodes[1].Close()
	tc.nodes[1] = nil

	// Reads: quorum is 2 of 3, so the merge still covers every owner set.
	got, err := res.Lookup(&svcdesc.Query{Name: "sensor/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("post-kill lookup = %d descs, want 12", len(got))
	}

	// Writes: every key keeps at least one live owner at RF=2, so registers
	// must keep succeeding too.
	for i := 0; i < 6; i++ {
		if err := res.Register(desc(fmt.Sprintf("late-%d", i), "printer")); err != nil {
			t.Fatalf("post-kill register: %v", err)
		}
	}
}

func TestClusterLookupFailsBelowQuorum(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	res := tc.resolver(t, 2)
	res.SetCallTimeout(300*time.Millisecond, nil)
	if err := res.Register(desc("n1", "printer")); err != nil {
		t.Fatal(err)
	}
	_ = tc.nodes[0].Close()
	_ = tc.nodes[2].Close()
	tc.nodes[0], tc.nodes[2] = nil, nil
	if _, err := res.Lookup(&svcdesc.Query{Name: "printer"}); err == nil {
		t.Fatal("lookup succeeded below quorum")
	} else if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("err = %v", err)
	}
}

func TestClusterAntiEntropyRepairsKilledReplica(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	res := tc.resolver(t, 2)
	res.SetCallTimeout(500*time.Millisecond, nil)
	var keys []string
	for i := 0; i < 12; i++ {
		d := desc(fmt.Sprintf("node-%d", i), fmt.Sprintf("svc/%d", i))
		if err := res.Register(d); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, d.Key())
	}
	tc.settle(t)

	// Replace a member with an empty table (a restart that lost its state).
	dead := tc.nodes[1]
	self := dead.Self()
	_ = dead.Close()
	tr := transport.NewMem(tc.fabric)
	l, err := tr.Listen(self)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewNode(tr, l, NodeOptions{Self: self, Members: tc.members, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	tc.nodes[1] = fresh

	tc.settle(t)
	for _, key := range keys {
		if fresh.Ring().Owns(self, key, 2) && !fresh.Table().HasLive(key) {
			t.Fatalf("anti-entropy did not repair %s on the restarted member", key)
		}
	}
}

func TestClusterUnregisterPropagates(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	res := tc.resolver(t, 2)
	d := desc("n1", "printer")
	if err := res.Register(d); err != nil {
		t.Fatal(err)
	}
	tc.settle(t)
	if err := res.Unregister(d.Key()); err != nil {
		t.Fatal(err)
	}
	tc.settle(t)
	for _, node := range tc.nodes {
		if node.Table().HasLive(d.Key()) {
			t.Fatalf("%s still serves the unregistered key", node.Self())
		}
	}
	got, err := res.Lookup(&svcdesc.Query{Name: "printer"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("lookup after unregister = %+v", got)
	}
}

func TestClusterServesPlainRegistryClients(t *testing.T) {
	// A cluster member speaks the standard registry protocol: an unmodified
	// discovery.Client pointed at one member works for keys it owns.
	tc := newTestCluster(t, 3, 2)
	res := tc.resolver(t, 2)
	d := desc("n1", "sensor/bp")
	if err := res.Register(d); err != nil {
		t.Fatal(err)
	}
	tc.settle(t)
	var owner string
	for _, node := range tc.nodes {
		if node.Table().HasLive(d.Key()) {
			owner = node.Self()
			break
		}
	}
	if owner == "" {
		t.Fatal("no owner holds the key")
	}
	cli := discovery.NewClient(transport.NewMem(tc.fabric), owner)
	defer cli.Close()
	got, err := cli.Lookup(&svcdesc.Query{Name: "sensor/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Provider != "n1" {
		t.Fatalf("plain client lookup = %+v", got)
	}
}

func TestNodeRejectsSelfOutsideMembers(t *testing.T) {
	tr := transport.NewMem(transport.NewFabric())
	l, err := tr.Listen("registry0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := NewNode(tr, l, NodeOptions{Self: "elsewhere", Members: []string{"registry0"}}); err == nil {
		t.Fatal("node accepted a self outside the membership")
	}
}

func TestNodeBackgroundSyncLoop(t *testing.T) {
	// SyncEvery > 0 drives anti-entropy from the clock with no manual
	// SyncWith calls.
	fabric := transport.NewFabric()
	members := []string{"registry0", "registry1"}
	var nodes []*Node
	for _, self := range members {
		tr := transport.NewMem(fabric)
		l, err := tr.Listen(self)
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(tr, l, NodeOptions{
			Self:              self,
			Members:           members,
			ReplicationFactor: 2,
			SyncEvery:         5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes = append(nodes, node)
	}
	d := desc("n1", "printer")
	if err := nodes[0].Table().Register(d); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !nodes[1].Table().HasLive(d.Key()) {
		if time.Now().After(deadline) {
			t.Fatal("background sync never replicated the entry")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
