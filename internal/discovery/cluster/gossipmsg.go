package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Gossip wire format. Anti-entropy messages ride the endpoint layer as
// ordinary control requests on the gossip topics; payloads use a compact
// length-prefixed binary encoding (uvarints, like the frame layer) rather
// than XML — digests are sent every round and scale with the table size, so
// they are the one discovery payload where encoding cost matters.
//
//	digest := version kind=1 str(from) uvarint(n) n*(str(key) uvarint(seq) str(origin))
//	delta  := version kind=2 str(from) uvarint(n) n*entry uvarint(m) m*str(wantKey)
//	entry  := str(key) uvarint(seq) str(origin) byte(deleted) uvarint(ttlMillis) bytes(desc)
//	str    := uvarint(len) len bytes
const (
	gossipVersion = 1
	kindDigest    = 1
	kindDelta     = 2
)

// Decode hard limits: gossip peers are trusted, but the decoder must stay
// total on arbitrary bytes (it is fuzzed), so claimed lengths are bounded
// before any allocation.
const (
	maxGossipEntries = 1 << 16
	maxGossipKeyLen  = 1 << 12
	maxGossipDescLen = 1 << 20
)

// ErrBadGossip reports an undecodable gossip payload.
var ErrBadGossip = errors.New("cluster: bad gossip payload")

// DigestEntry summarizes one replicated entry: enough for a peer to decide
// staleness without shipping the description.
type DigestEntry struct {
	Key    string
	Seq    uint64
	Origin string
}

// Digest is the anti-entropy opener: the initiator's full table summary.
type Digest struct {
	From    string
	Entries []DigestEntry
}

// DeltaEntry carries one full replicated entry. TTLMillis is the lease
// remaining at send time (receivers re-anchor it on their own clock, so
// members need no clock agreement); Deleted marks a tombstone, whose Desc is
// empty.
type DeltaEntry struct {
	Key       string
	Seq       uint64
	Origin    string
	Deleted   bool
	TTLMillis uint64
	Desc      []byte
}

// Delta is the anti-entropy answer: entries the receiver is missing, plus
// the keys the sender wants back (the pull half of push-pull).
type Delta struct {
	From    string
	Entries []DeltaEntry
	Want    []string
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendDigest encodes d onto dst.
func AppendDigest(dst []byte, d *Digest) []byte {
	dst = append(dst, gossipVersion, kindDigest)
	dst = appendString(dst, d.From)
	dst = binary.AppendUvarint(dst, uint64(len(d.Entries)))
	for _, e := range d.Entries {
		dst = appendString(dst, e.Key)
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = appendString(dst, e.Origin)
	}
	return dst
}

// AppendDelta encodes d onto dst.
func AppendDelta(dst []byte, d *Delta) []byte {
	dst = append(dst, gossipVersion, kindDelta)
	dst = appendString(dst, d.From)
	dst = binary.AppendUvarint(dst, uint64(len(d.Entries)))
	for _, e := range d.Entries {
		dst = appendString(dst, e.Key)
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = appendString(dst, e.Origin)
		deleted := byte(0)
		if e.Deleted {
			deleted = 1
		}
		dst = append(dst, deleted)
		dst = binary.AppendUvarint(dst, e.TTLMillis)
		dst = appendBytes(dst, e.Desc)
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.Want)))
	for _, k := range d.Want {
		dst = appendString(dst, k)
	}
	return dst
}

// decoder walks a gossip payload with bounds checks on every read.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrBadGossip
	}
	d.off += n
	return v, nil
}

func (d *decoder) str(limit int) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) || d.off+int(n) > len(d.buf) {
		return "", ErrBadGossip
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) bytes(limit int) ([]byte, error) {
	s, err := d.str(limit)
	if err != nil {
		return nil, err
	}
	if s == "" {
		return nil, nil
	}
	return []byte(s), nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, ErrBadGossip
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) header(kind byte) error {
	v, err := d.byte()
	if err != nil {
		return err
	}
	if v != gossipVersion {
		return fmt.Errorf("%w: version %d", ErrBadGossip, v)
	}
	k, err := d.byte()
	if err != nil {
		return err
	}
	if k != kind {
		return fmt.Errorf("%w: kind %d, want %d", ErrBadGossip, k, kind)
	}
	return nil
}

func (d *decoder) count() (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > maxGossipEntries {
		return 0, fmt.Errorf("%w: %d entries", ErrBadGossip, n)
	}
	// A digest entry takes at least 3 bytes on the wire; reject counts the
	// remaining buffer cannot possibly hold before allocating for them.
	if int(n) > len(d.buf)-d.off {
		return 0, ErrBadGossip
	}
	return int(n), nil
}

func (d *decoder) done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadGossip, len(d.buf)-d.off)
	}
	return nil
}

// DecodeDigest decodes a digest payload.
func DecodeDigest(buf []byte) (*Digest, error) {
	d := &decoder{buf: buf}
	if err := d.header(kindDigest); err != nil {
		return nil, err
	}
	out := &Digest{}
	var err error
	if out.From, err = d.str(maxGossipKeyLen); err != nil {
		return nil, err
	}
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out.Entries = make([]DigestEntry, 0, n)
	for i := 0; i < n; i++ {
		var e DigestEntry
		if e.Key, err = d.str(maxGossipKeyLen); err != nil {
			return nil, err
		}
		if e.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		if e.Origin, err = d.str(maxGossipKeyLen); err != nil {
			return nil, err
		}
		out.Entries = append(out.Entries, e)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeDelta decodes a delta payload.
func DecodeDelta(buf []byte) (*Delta, error) {
	d := &decoder{buf: buf}
	if err := d.header(kindDelta); err != nil {
		return nil, err
	}
	out := &Delta{}
	var err error
	if out.From, err = d.str(maxGossipKeyLen); err != nil {
		return nil, err
	}
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	out.Entries = make([]DeltaEntry, 0, n)
	for i := 0; i < n; i++ {
		var e DeltaEntry
		if e.Key, err = d.str(maxGossipKeyLen); err != nil {
			return nil, err
		}
		if e.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		if e.Origin, err = d.str(maxGossipKeyLen); err != nil {
			return nil, err
		}
		del, err := d.byte()
		if err != nil {
			return nil, err
		}
		if del > 1 {
			return nil, fmt.Errorf("%w: deleted flag %d", ErrBadGossip, del)
		}
		e.Deleted = del == 1
		if e.TTLMillis, err = d.uvarint(); err != nil {
			return nil, err
		}
		if e.Desc, err = d.bytes(maxGossipDescLen); err != nil {
			return nil, err
		}
		out.Entries = append(out.Entries, e)
	}
	m, err := d.count()
	if err != nil {
		return nil, err
	}
	out.Want = make([]string, 0, m)
	for i := 0; i < m; i++ {
		k, err := d.str(maxGossipKeyLen)
		if err != nil {
			return nil, err
		}
		out.Want = append(out.Want, k)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return out, nil
}
