package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
)

// DefaultTombstoneTTL is how long an unregister tombstone is kept for
// anti-entropy to propagate before it is swept.
const DefaultTombstoneTTL = 30 * time.Second

// replEntry is one replicated advertisement (or its tombstone).
type replEntry struct {
	desc    *svcdesc.Description // nil for tombstones
	seq     uint64
	origin  string // member that performed the write (LWW tie-break)
	deleted bool
	expires time.Time
}

// newer reports whether (seq, origin) orders a after b — the last-writer-wins
// rule. Sequence numbers are Lamport-style (each member's counter advances
// past every sequence it has seen), so a genuinely later write has a larger
// seq; concurrent writes with equal seq break the tie on the origin member
// name, which every replica orders identically, so all copies converge.
func newer(aSeq uint64, aOrigin string, b *replEntry) bool {
	if aSeq != b.seq {
		return aSeq > b.seq
	}
	return aOrigin > b.origin
}

// Table is one member's replicated lease table: the LWW-converging state
// anti-entropy exchanges. It implements discovery.Resolver (so a registry
// Server can expose it on the wire unchanged) plus the gossip bookkeeping —
// Lamport sequence assignment, tombstones, and digest/delta construction.
type Table struct {
	self         string
	clock        simtime.Clock
	defaultTTL   time.Duration
	tombstoneTTL time.Duration

	mu      sync.Mutex
	entries map[string]*replEntry
	lamport uint64
}

var (
	_ discovery.Resolver = (*Table)(nil)
	_ discovery.Sweeper  = (*Table)(nil)
)

// NewTable creates the member's table. self names this member in LWW
// tie-breaks; clock defaults to simtime.Real; defaultTTL to
// discovery.DefaultTTL; tombstoneTTL to DefaultTombstoneTTL.
func NewTable(self string, clock simtime.Clock, defaultTTL, tombstoneTTL time.Duration) *Table {
	if clock == nil {
		clock = simtime.Real{}
	}
	if defaultTTL <= 0 {
		defaultTTL = discovery.DefaultTTL
	}
	if tombstoneTTL <= 0 {
		tombstoneTTL = DefaultTombstoneTTL
	}
	return &Table{
		self:         self,
		clock:        clock,
		defaultTTL:   defaultTTL,
		tombstoneTTL: tombstoneTTL,
		entries:      make(map[string]*replEntry),
	}
}

// nextSeqLocked assigns the next local write sequence.
func (t *Table) nextSeqLocked() uint64 {
	t.lamport++
	return t.lamport
}

// observeSeqLocked advances the Lamport counter past a remote sequence.
func (t *Table) observeSeqLocked(seq uint64) {
	if seq > t.lamport {
		t.lamport = seq
	}
}

// Register implements discovery.Resolver. A re-register overwrites any
// tombstone: the service is back.
func (t *Table) Register(d *svcdesc.Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	ttl := d.TTL
	if ttl <= 0 {
		ttl = t.defaultTTL
	}
	d = d.Clone()
	t.mu.Lock()
	t.entries[d.Key()] = &replEntry{
		desc:    d,
		seq:     t.nextSeqLocked(),
		origin:  t.self,
		expires: t.clock.Now().Add(ttl),
	}
	t.mu.Unlock()
	return nil
}

// Unregister implements discovery.Resolver, writing a tombstone so the
// deletion wins anti-entropy against still-replicating copies instead of
// being resurrected by them.
func (t *Table) Unregister(key string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok || e.deleted || t.clock.Now().After(e.expires) {
		return fmt.Errorf("%w: %s", discovery.ErrNotFound, key)
	}
	t.entries[key] = &replEntry{
		seq:     t.nextSeqLocked(),
		origin:  t.self,
		deleted: true,
		expires: t.clock.Now().Add(t.tombstoneTTL),
	}
	return nil
}

// Renew implements discovery.Resolver. The renewal bumps the entry's
// sequence so the extended lease propagates to the other owners.
func (t *Table) Renew(key string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok || e.deleted || t.clock.Now().After(e.expires) {
		return fmt.Errorf("%w: %s", discovery.ErrNotFound, key)
	}
	ttl := e.desc.TTL
	if ttl <= 0 {
		ttl = t.defaultTTL
	}
	e.seq = t.nextSeqLocked()
	e.origin = t.self
	e.expires = t.clock.Now().Add(ttl)
	return nil
}

// Lookup implements discovery.Resolver over this member's shard. Expired
// entries and tombstones never match.
func (t *Table) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var keys []string
	for k, e := range t.entries {
		if e.deleted || now.After(e.expires) {
			continue
		}
		if q.Matches(e.desc, now) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]*svcdesc.Description, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.entries[k].desc.Clone())
	}
	return out, nil
}

// Close implements discovery.Resolver (a Table holds no external resources).
func (t *Table) Close() error { return nil }

// Sweep implements discovery.Sweeper: expired leases and expired tombstones
// are removed. Expiry needs no tombstone of its own — every replica ages the
// lease on its own clock (deltas carry remaining TTL), so copies die out
// independently.
func (t *Table) Sweep() int {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	removed := 0
	for k, e := range t.entries {
		if now.After(e.expires) {
			delete(t.entries, k)
			removed++
		}
	}
	return removed
}

// Len returns the number of entries, tombstones included.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// LiveKeys returns the keys of unexpired, non-tombstone entries, sorted.
func (t *Table) LiveKeys() []string {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var keys []string
	for k, e := range t.entries {
		if !e.deleted && !now.After(e.expires) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// HasLive reports whether the key is present, live, and unexpired.
func (t *Table) HasLive(key string) bool {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	return ok && !e.deleted && !now.After(e.expires)
}

// counts returns (live, tombstone) entry counts.
func (t *Table) counts() (int, int) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	live, tombs := 0, 0
	for _, e := range t.entries {
		if now.After(e.expires) {
			continue
		}
		if e.deleted {
			tombs++
		} else {
			live++
		}
	}
	return live, tombs
}

// digest summarizes the whole table (tombstones included — a peer must learn
// deletions too).
func (t *Table) digest(from string) *Digest {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &Digest{From: from, Entries: make([]DigestEntry, 0, len(t.entries))}
	for k, e := range t.entries {
		d.Entries = append(d.Entries, DigestEntry{Key: k, Seq: e.seq, Origin: e.origin})
	}
	sort.Slice(d.Entries, func(i, j int) bool { return d.Entries[i].Key < d.Entries[j].Key })
	return d
}

// deltaEntryLocked encodes one entry for the wire. Caller holds t.mu.
func (t *Table) deltaEntryLocked(key string, e *replEntry, now time.Time) (DeltaEntry, bool) {
	out := DeltaEntry{Key: key, Seq: e.seq, Origin: e.origin, Deleted: e.deleted}
	ttl := e.expires.Sub(now)
	if ttl <= 0 {
		return out, false // expired while queued; let it die quietly
	}
	out.TTLMillis = uint64(ttl / time.Millisecond)
	if out.TTLMillis == 0 {
		out.TTLMillis = 1
	}
	if !e.deleted {
		payload, err := svcdesc.MarshalDescription(e.desc)
		if err != nil {
			return out, false
		}
		out.Desc = payload
	}
	return out, true
}

// deltaFor collects the entries named by keys (skipping any that expired or
// vanished meanwhile).
func (t *Table) deltaFor(from string, keys []string) *Delta {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &Delta{From: from}
	for _, k := range keys {
		e, ok := t.entries[k]
		if !ok {
			continue
		}
		if de, ok := t.deltaEntryLocked(k, e, now); ok {
			d.Entries = append(d.Entries, de)
		}
	}
	return d
}

// diff compares the table against a peer's digest, restricted by ownership:
// owns(key) reports whether the PEER owns a key (entries it should receive
// and entries it is entitled to ask for live on its owner set, not ours).
// It returns the entries the peer is missing or holds stale, and the keys we
// hold stale or miss entirely — the push and pull halves of one round.
func (t *Table) diff(from string, peer *Digest, peerOwns, selfOwns func(key string) bool) *Delta {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	theirs := make(map[string]DigestEntry, len(peer.Entries))
	for _, e := range peer.Entries {
		theirs[e.Key] = e
	}
	d := &Delta{From: from}
	for k, e := range t.entries {
		if !peerOwns(k) {
			continue
		}
		pe, ok := theirs[k]
		if !ok || newer(e.seq, e.origin, &replEntry{seq: pe.Seq, origin: pe.Origin}) {
			if de, ok := t.deltaEntryLocked(k, e, now); ok {
				d.Entries = append(d.Entries, de)
			}
		}
	}
	sort.Slice(d.Entries, func(i, j int) bool { return d.Entries[i].Key < d.Entries[j].Key })
	for _, pe := range peer.Entries {
		if !selfOwns(pe.Key) {
			continue
		}
		e, ok := t.entries[pe.Key]
		if !ok || newer(pe.Seq, pe.Origin, e) {
			d.Want = append(d.Want, pe.Key)
		}
	}
	sort.Strings(d.Want)
	return d
}

// apply merges remote delta entries under LWW, restricted to keys this
// member owns (misrouted entries are ignored — nobody would anti-entropy
// them here, so accepting them would strand stale copies). It returns how
// many entries were applied.
func (t *Table) apply(entries []DeltaEntry, owns func(key string) bool) int {
	now := t.clock.Now()
	applied := 0
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, de := range entries {
		if !owns(de.Key) {
			continue
		}
		t.observeSeqLocked(de.Seq)
		if cur, ok := t.entries[de.Key]; ok && !newer(de.Seq, de.Origin, cur) {
			continue
		}
		e := &replEntry{
			seq:     de.Seq,
			origin:  de.Origin,
			deleted: de.Deleted,
			expires: now.Add(time.Duration(de.TTLMillis) * time.Millisecond),
		}
		if !de.Deleted {
			desc, err := svcdesc.UnmarshalDescription(de.Desc)
			if err != nil || desc.Validate() != nil {
				continue
			}
			e.desc = desc
		}
		t.entries[de.Key] = e
		applied++
	}
	return applied
}
