package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Gossip protocol topics, served on the same listener as the registry
// protocol: a member is one port, one endpoint server.
const (
	TopicGossipDigest = "disc.gossip.digest"
	TopicGossipDelta  = "disc.gossip.delta"
)

// DefaultReplicationFactor is the owner-set size R when unspecified.
const DefaultReplicationFactor = 2

// DefaultGossipTimeout bounds one gossip exchange on the wire (wall time —
// gossip is data-path traffic, like every other endpoint call).
const DefaultGossipTimeout = 2 * time.Second

// NodeOptions assembles one registry-cluster member.
type NodeOptions struct {
	// Self is this member's transport address; it must appear in Members.
	Self string
	// Members is the full cluster membership (self included).
	Members []string
	// ReplicationFactor is the owner-set size R (default
	// DefaultReplicationFactor, clamped to the membership size).
	ReplicationFactor int
	// VNodes is the consistent-hash virtual-node count per member (default
	// DefaultVNodes). Every member and every client must agree on it.
	VNodes int
	// Clock times leases, the sync loop, and the sweep ticker (default
	// real).
	Clock simtime.Clock
	// DefaultTTL is the advertisement lease applied when a description
	// carries none (default discovery.DefaultTTL).
	DefaultTTL time.Duration
	// TombstoneTTL is how long unregister tombstones survive for
	// anti-entropy to propagate (default DefaultTombstoneTTL).
	TombstoneTTL time.Duration
	// SyncEvery is the anti-entropy period: each interval the member
	// push-pull exchanges with the next peer in round-robin order. Zero
	// disables the background loop — the owner drives SyncNow explicitly
	// (how deterministic simulations schedule gossip).
	SyncEvery time.Duration
	// SweepEvery drives lease expiry from the server's ticker (zero: sweep
	// only on request arrival).
	SweepEvery time.Duration
	// GossipTimeout bounds one gossip exchange (default
	// DefaultGossipTimeout).
	GossipTimeout time.Duration
	// Metrics receives the member's instruments (process default if nil).
	Metrics *obs.Registry
	// Tracer records the member's server spans (nil: process default).
	Tracer *trace.Tracer
}

// Node is one registry-cluster member: the replicated shard table served
// over the standard registry protocol, plus the gossip half that keeps the
// R owner copies of every key converging.
type Node struct {
	self    string
	ring    *Ring
	rf      int
	table   *Table
	srv     *discovery.Server
	tr      transport.Transport
	clock   simtime.Clock
	timeout time.Duration
	metrics *obs.Registry
	peers   []string // members minus self, canonical order

	mu       sync.Mutex
	callers  map[string]*endpoint.Caller
	nextPeer int
	lastSync time.Time
	closed   bool

	stop      chan struct{}
	loopWG    sync.WaitGroup
	closeOnce sync.Once
}

// NewNode starts a cluster member serving on l over tr (tr also carries its
// outbound gossip).
func NewNode(tr transport.Transport, l transport.Listener, opts NodeOptions) (*Node, error) {
	if opts.Self == "" {
		return nil, errors.New("cluster: node needs a Self address")
	}
	ring := NewRing(opts.Members, opts.VNodes)
	selfIncluded := false
	for _, m := range ring.Members() {
		if m == opts.Self {
			selfIncluded = true
			break
		}
	}
	if !selfIncluded {
		return nil, fmt.Errorf("cluster: self %q not in members %v", opts.Self, opts.Members)
	}
	rf := opts.ReplicationFactor
	if rf <= 0 {
		rf = DefaultReplicationFactor
	}
	if rf > ring.Size() {
		rf = ring.Size()
	}
	if opts.Clock == nil {
		opts.Clock = simtime.Real{}
	}
	if opts.GossipTimeout <= 0 {
		opts.GossipTimeout = DefaultGossipTimeout
	}
	n := &Node{
		self:    opts.Self,
		ring:    ring,
		rf:      rf,
		table:   NewTable(opts.Self, opts.Clock, opts.DefaultTTL, opts.TombstoneTTL),
		tr:      tr,
		clock:   opts.Clock,
		timeout: opts.GossipTimeout,
		metrics: obs.Or(opts.Metrics),
		callers: make(map[string]*endpoint.Caller),
		stop:    make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m != opts.Self {
			n.peers = append(n.peers, m)
		}
	}
	n.srv = discovery.NewResolverServer(n.table, l, discovery.ServerOptions{
		Clock:      opts.Clock,
		SweepEvery: opts.SweepEvery,
		Metrics:    opts.Metrics,
	})
	n.srv.SetTracer(opts.Tracer)
	n.srv.Handle(TopicGossipDigest, n.handleDigest)
	n.srv.Handle(TopicGossipDelta, n.handleDelta)
	if opts.SyncEvery > 0 && len(n.peers) > 0 {
		n.loopWG.Add(1)
		go n.syncLoop(opts.SyncEvery)
	}
	return n, nil
}

// Self returns the member's address.
func (n *Node) Self() string { return n.self }

// Addr returns the listener's bound address.
func (n *Node) Addr() string { return n.srv.Addr() }

// Table exposes the member's replicated table (simulations and invariant
// checkers introspect replication through it).
func (n *Node) Table() *Table { return n.table }

// Ring exposes the member's placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// ownsSelf reports whether this member owns key.
func (n *Node) ownsSelf(key string) bool { return n.ring.Owns(n.self, key, n.rf) }

// syncLoop runs anti-entropy rounds on the clock until Close.
func (n *Node) syncLoop(every time.Duration) {
	defer n.loopWG.Done()
	for {
		select {
		case <-n.clock.After(every):
			_ = n.SyncNow()
		case <-n.stop:
			return
		}
	}
}

// caller returns (creating lazily) the redial-safe caller to a peer.
func (n *Node) caller(peer string) (*endpoint.Caller, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, discovery.ErrClosed
	}
	if c := n.callers[peer]; c != nil {
		return c, nil
	}
	c, err := endpoint.NewCaller(n.tr, peer, endpoint.CallerOptions{
		Redial: true,
		Interceptors: []endpoint.ClientInterceptor{
			// One redial-and-retry on connection-level failures, like the
			// registry client: a peer restart tears the old connection down
			// and the round should survive it. Timeouts are not retried —
			// against a dead peer that would double every round's stall.
			endpoint.WithRetry(nil, endpoint.RetryPolicy{Max: 1}, nil, "cluster.gossip"),
		},
	})
	if err != nil {
		return nil, err
	}
	n.callers[peer] = c
	return c, nil
}

// SyncNow runs one anti-entropy round with the next peer in round-robin
// order. It returns the first wire error; a dead peer is an error the next
// round routes past, not a stall.
func (n *Node) SyncNow() error {
	if len(n.peers) == 0 {
		return nil
	}
	n.mu.Lock()
	peer := n.peers[n.nextPeer%len(n.peers)]
	n.nextPeer++
	n.mu.Unlock()
	return n.SyncWith(peer)
}

// SyncWith runs one push-pull anti-entropy round with the given peer:
// digest out, delta back (applied), and a second delta out for whatever the
// peer asked for.
func (n *Node) SyncWith(peer string) error {
	c, err := n.caller(peer)
	if err != nil {
		return err
	}
	n.metrics.Counter("discovery.cluster.gossip.rounds").Inc(1)
	reply, err := c.Do(&endpoint.Call{
		Kind:    wire.KindControl,
		Topic:   TopicGossipDigest,
		Payload: AppendDigest(nil, n.table.digest(n.self)),
		Timeout: n.timeout,
	})
	if err != nil {
		n.metrics.Counter("discovery.cluster.gossip.errors").Inc(1)
		return fmt.Errorf("cluster: sync %s: %w", peer, err)
	}
	delta, err := DecodeDelta(reply.Payload)
	if err != nil {
		n.metrics.Counter("discovery.cluster.gossip.errors").Inc(1)
		return fmt.Errorf("cluster: sync %s: %w", peer, err)
	}
	if applied := n.table.apply(delta.Entries, n.ownsSelf); applied > 0 {
		n.metrics.Counter("discovery.cluster.gossip.deltas_applied").Inc(int64(applied))
	}
	if len(delta.Want) > 0 {
		push := n.table.deltaFor(n.self, delta.Want)
		if _, err := c.Do(&endpoint.Call{
			Kind:    wire.KindControl,
			Topic:   TopicGossipDelta,
			Payload: AppendDelta(nil, push),
			Timeout: n.timeout,
		}); err != nil {
			n.metrics.Counter("discovery.cluster.gossip.errors").Inc(1)
			return fmt.Errorf("cluster: sync push %s: %w", peer, err)
		}
	}
	n.observeSync()
	return nil
}

// observeSync records anti-entropy health: the achieved gap between
// successful rounds (the replication-lag bound) and the shard's size.
func (n *Node) observeSync() {
	now := n.clock.Now()
	n.mu.Lock()
	last := n.lastSync
	n.lastSync = now
	n.mu.Unlock()
	if !last.IsZero() {
		n.metrics.Gauge("discovery.cluster.gossip.lag_ms").Set(
			float64(now.Sub(last)) / float64(time.Millisecond))
	}
	live, tombs := n.table.counts()
	n.metrics.Gauge("discovery.cluster.entries").Set(float64(live))
	n.metrics.Gauge("discovery.cluster.tombstones").Set(float64(tombs))
}

// handleDigest answers a peer's anti-entropy opener: push what the peer is
// missing on its owner set, ask for what we are missing on ours.
func (n *Node) handleDigest(req *wire.Message) (*wire.Message, error) {
	dig, err := DecodeDigest(req.Payload)
	if err != nil {
		return nil, err
	}
	peerOwns := func(key string) bool { return n.ring.Owns(dig.From, key, n.rf) }
	delta := n.table.diff(n.self, dig, peerOwns, n.ownsSelf)
	return &wire.Message{Kind: wire.KindReply, Payload: AppendDelta(nil, delta)}, nil
}

// handleDelta applies a peer's pushed entries (the pull half landing).
func (n *Node) handleDelta(req *wire.Message) (*wire.Message, error) {
	delta, err := DecodeDelta(req.Payload)
	if err != nil {
		return nil, err
	}
	if applied := n.table.apply(delta.Entries, n.ownsSelf); applied > 0 {
		n.metrics.Counter("discovery.cluster.gossip.deltas_applied").Inc(int64(applied))
	}
	return &wire.Message{Kind: wire.KindAck}, nil
}

// SetTracer installs the member's server tracer.
func (n *Node) SetTracer(t *trace.Tracer) { n.srv.SetTracer(t) }

// Close stops the sync loop, the gossip callers, and the server.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { close(n.stop) })
	n.loopWG.Wait()
	n.mu.Lock()
	n.closed = true
	callers := make([]*endpoint.Caller, 0, len(n.callers))
	for _, c := range n.callers {
		callers = append(callers, c)
	}
	n.callers = make(map[string]*endpoint.Caller)
	n.mu.Unlock()
	for _, c := range callers {
		_ = c.Close()
	}
	return n.srv.Close()
}
