// Package cluster is the replicated, sharded registry organization: service
// descriptions are consistent-hash sharded across N registry nodes (virtual
// nodes smooth the key distribution), replicated at factor R by leaderless
// gossip anti-entropy (periodic digest exchange + delta sync over the
// existing endpoint layer, last-writer-wins on lease sequence), and read
// through a scatter-gather client resolver that any consumer can wrap in the
// discovery lease cache for local steady-state lookups.
//
// The organization "tolerates inconsistency": after a write, owners converge
// within one anti-entropy round rather than on a synchronous quorum, which
// is what keeps every registry operation available through the death of any
// R-1 members.
package cluster

import (
	"sort"
	"strconv"

	"ndsm/internal/svcdesc"
)

// DefaultVNodes is how many ring points each member contributes when
// unspecified — enough to keep shard imbalance within a few percent at
// single-digit cluster sizes.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over the cluster membership. It is
// immutable after construction; placement is a pure function of (members,
// vnodes, key), so every client and every member computes identical owner
// sets with no coordination.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds the ring. Members are deduplicated and sorted so the ring
// is canonical regardless of argument order; vnodes defaults to
// DefaultVNodes when <= 0.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   svcdesc.KeyHash(m + "#" + strconv.Itoa(v)),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member
	})
	return r
}

// Members returns the canonical (sorted, deduplicated) membership.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Owners returns the first n distinct members clockwise from the key's ring
// position — the key's preference list. n is clamped to the membership size.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.members) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := svcdesc.KeyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Owns reports whether member is in the key's owner set at replication
// factor rf.
func (r *Ring) Owns(member, key string, rf int) bool {
	for _, m := range r.Owners(key, rf) {
		if m == member {
			return true
		}
	}
	return false
}
