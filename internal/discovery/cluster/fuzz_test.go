package cluster

import (
	"reflect"
	"testing"
)

// FuzzGossipDecode drives both gossip decoders over arbitrary bytes: they
// must stay total (no panic, no runaway allocation) and, when a payload does
// decode, the decoded value must survive an encode/decode round trip
// unchanged. (Byte-level canonicality is not required — binary.Uvarint
// accepts non-minimal encodings the encoder never emits.)
func FuzzGossipDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(AppendDigest(nil, &Digest{From: "r0"}))
	f.Add(AppendDigest(nil, &Digest{
		From: "registry0",
		Entries: []DigestEntry{
			{Key: "n1|sensor/bp|", Seq: 7, Origin: "registry1"},
			{Key: "n2|printer|", Seq: 1 << 33, Origin: "registry2"},
		},
	}))
	f.Add(AppendDelta(nil, &Delta{From: "r1"}))
	f.Add(AppendDelta(nil, &Delta{
		From: "registry1",
		Entries: []DeltaEntry{
			{Key: "n1|sensor/bp|", Seq: 3, Origin: "registry0", TTLMillis: 1500,
				Desc: []byte("<description><name>sensor/bp</name></description>")},
			{Key: "n9|gone|", Seq: 12, Origin: "registry2", Deleted: true, TTLMillis: 30000},
		},
		Want: []string{"n3|svc/a|", "n4|svc/b|"},
	}))
	f.Add([]byte{gossipVersion, kindDigest, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{gossipVersion, kindDelta, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, data []byte) {
		if dig, err := DecodeDigest(data); err == nil {
			again, err := DecodeDigest(AppendDigest(nil, dig))
			if err != nil {
				t.Fatalf("re-decode digest: %v", err)
			}
			if !reflect.DeepEqual(dig, again) {
				t.Fatalf("digest round trip: %+v != %+v", dig, again)
			}
		}
		if delta, err := DecodeDelta(data); err == nil {
			again, err := DecodeDelta(AppendDelta(nil, delta))
			if err != nil {
				t.Fatalf("re-decode delta: %v", err)
			}
			if !reflect.DeepEqual(delta, again) {
				t.Fatalf("delta round trip: %+v != %+v", delta, again)
			}
		}
	})
}
