package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/health"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
)

// ResolverOptions configures a cluster-aware client resolver.
type ResolverOptions struct {
	// Members is the registry cluster membership. It must match the
	// members the nodes themselves were built with.
	Members []string
	// ReplicationFactor is the owner-set size R (default
	// DefaultReplicationFactor, clamped to the membership size). It must
	// match the nodes' factor.
	ReplicationFactor int
	// VNodes is the consistent-hash virtual-node count (default
	// DefaultVNodes). It must match the nodes' count.
	VNodes int
	// Monitor, when set, watches the member set: every successful call
	// heartbeats the member, every failure is reported, so the consumer's
	// failure detector tracks registry nodes exactly like service peers.
	Monitor *health.Monitor
	// Metrics receives the resolver's instruments (process default if nil).
	Metrics *obs.Registry
}

// Resolver is the cluster-aware client side of the sharded registry: writes
// go to every owner of the key concurrently and return on the first success
// (anti-entropy repairs the rest), lookups scatter-gather the whole
// membership and succeed once a quorum of N-R+1 members answered — the
// smallest responder set guaranteed to intersect every key's owner set, so a
// quorum-complete merge misses nothing.
//
// A Resolver is what consumers wrap in discovery.NewCached: the cache
// absorbs the scatter-gather cost so the steady state is a local hit.
type Resolver struct {
	ring    *Ring
	rf      int
	quorum  int
	tr      transport.Transport
	monitor *health.Monitor
	metrics *obs.Registry

	mu           sync.Mutex
	clients      map[string]*discovery.Client
	callTimeout  time.Duration
	timeoutClock simtime.Clock
	tracer       *trace.Tracer
	closed       bool
}

var _ discovery.Resolver = (*Resolver)(nil)

// NewResolver creates a resolver over the given cluster membership.
func NewResolver(tr transport.Transport, opts ResolverOptions) (*Resolver, error) {
	ring := NewRing(opts.Members, opts.VNodes)
	if ring.Size() == 0 {
		return nil, fmt.Errorf("cluster: resolver needs at least one member")
	}
	rf := opts.ReplicationFactor
	if rf <= 0 {
		rf = DefaultReplicationFactor
	}
	if rf > ring.Size() {
		rf = ring.Size()
	}
	return &Resolver{
		ring:    ring,
		rf:      rf,
		quorum:  ring.Size() - rf + 1,
		tr:      tr,
		monitor: opts.Monitor,
		metrics: obs.Or(opts.Metrics),
		clients: make(map[string]*discovery.Client),
	}, nil
}

// Members returns the canonical cluster membership.
func (r *Resolver) Members() []string { return r.ring.Members() }

// Quorum returns the lookup responder quorum (N-R+1).
func (r *Resolver) Quorum() int { return r.quorum }

// SetCallTimeout bounds each member call (see discovery.Client.SetCallTimeout).
func (r *Resolver) SetCallTimeout(d time.Duration, clock simtime.Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.callTimeout, r.timeoutClock = d, clock
	for _, c := range r.clients {
		c.SetCallTimeout(d, clock)
	}
}

// SetTracer installs the tracer on every member client.
func (r *Resolver) SetTracer(t *trace.Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer = t
	for _, c := range r.clients {
		c.SetTracer(t)
	}
}

// client returns (creating lazily) the member's registry client.
func (r *Resolver) client(member string) (*discovery.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, discovery.ErrClosed
	}
	if c := r.clients[member]; c != nil {
		return c, nil
	}
	c := discovery.NewClient(r.tr, member)
	if r.callTimeout > 0 {
		c.SetCallTimeout(r.callTimeout, r.timeoutClock)
	}
	if r.tracer != nil {
		c.SetTracer(r.tracer)
	}
	r.clients[member] = c
	return c, nil
}

// observe feeds the optional member-set monitor.
func (r *Resolver) observe(member string, err error) {
	if r.monitor == nil {
		return
	}
	if err == nil {
		r.monitor.Heartbeat(member)
		r.monitor.ReportSuccess(member)
	} else {
		r.monitor.ReportFailure(member)
	}
}

// fanout runs op against every owner of key concurrently and returns on the
// first success; stragglers finish in the background (their results only
// feed the monitor). With all owners down it returns the first error.
func (r *Resolver) fanout(key string, op func(c *discovery.Client) error) error {
	owners := r.ring.Owners(key, r.rf)
	errc := make(chan error, len(owners))
	for _, m := range owners {
		m := m
		go func() {
			c, err := r.client(m)
			if err == nil {
				err = op(c)
			}
			r.observe(m, err)
			errc <- err
		}()
	}
	var firstErr error
	for range owners {
		err := <-errc
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Register implements discovery.Resolver: the advertisement is written to
// every owner of its key.
func (r *Resolver) Register(d *svcdesc.Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	return r.fanout(d.Key(), func(c *discovery.Client) error { return c.Register(d) })
}

// Unregister implements discovery.Resolver.
func (r *Resolver) Unregister(key string) error {
	return r.fanout(key, func(c *discovery.Client) error { return c.Unregister(key) })
}

// Renew implements discovery.Resolver.
func (r *Resolver) Renew(key string) error {
	return r.fanout(key, func(c *discovery.Client) error { return c.Renew(key) })
}

// Lookup implements discovery.Resolver: every member is queried
// concurrently and the call returns as soon as a responder quorum has
// answered, merged and deduplicated by description key. Below quorum the
// merge could silently miss keys whose owners were all unreachable, so it
// fails instead.
func (r *Resolver) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	r.metrics.Counter("discovery.cluster.resolver.lookups").Inc(1)
	members := r.ring.Members()
	type result struct {
		descs []*svcdesc.Description
		err   error
	}
	resc := make(chan result, len(members))
	for _, m := range members {
		m := m
		go func() {
			c, err := r.client(m)
			var descs []*svcdesc.Description
			if err == nil {
				descs, err = c.Lookup(q)
			}
			r.observe(m, err)
			resc <- result{descs: descs, err: err}
		}()
	}
	merged := make(map[string]*svcdesc.Description)
	successes := 0
	var firstErr error
	for range members {
		res := <-resc
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		successes++
		for _, d := range res.descs {
			if _, ok := merged[d.Key()]; !ok {
				merged[d.Key()] = d
			}
		}
		if successes >= r.quorum {
			keys := make([]string, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := make([]*svcdesc.Description, 0, len(keys))
			for _, k := range keys {
				out = append(out, merged[k])
			}
			return out, nil
		}
	}
	r.metrics.Counter("discovery.cluster.resolver.quorum_failures").Inc(1)
	if firstErr == nil {
		firstErr = discovery.ErrClosed
	}
	return nil, fmt.Errorf("cluster: lookup quorum %d/%d members: %w",
		successes, r.quorum, firstErr)
}

// Close implements discovery.Resolver, closing every member client.
func (r *Resolver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	clients := make([]*discovery.Client, 0, len(r.clients))
	for _, c := range r.clients {
		clients = append(clients, c)
	}
	r.clients = make(map[string]*discovery.Client)
	r.mu.Unlock()
	var firstErr error
	for _, c := range clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
