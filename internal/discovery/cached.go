package discovery

import (
	"sync"
	"time"

	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
)

// DefaultCacheTTL is the lookup-result lease applied when CacheOptions.TTL
// is zero.
const DefaultCacheTTL = time.Second

// CacheOptions tunes a cached resolver.
type CacheOptions struct {
	// Clock ages cache leases (simtime.Real if nil).
	Clock simtime.Clock
	// TTL is the freshness lease on a cached lookup result: strictly younger
	// than TTL serves locally with no wire traffic; at the boundary (age ==
	// TTL) the entry is no longer fresh. Default DefaultCacheTTL.
	TTL time.Duration
	// StaleFor extends the lease for serve-stale-while-revalidate: a result
	// aged within [TTL, TTL+StaleFor) is still served locally, but a
	// background refresh is kicked off so the next lookup sees fresh data.
	// Beyond the stale window the lookup blocks on the wire. Default TTL.
	StaleFor time.Duration
	// Metrics receives hit/miss/stale/coalesced counters (process default if
	// nil).
	Metrics *obs.Registry
}

// cacheEntry is one leased lookup result.
type cacheEntry struct {
	descs   []*svcdesc.Description
	fetched time.Time
}

// flight is one in-progress fetch that concurrent identical lookups
// coalesce onto.
type flight struct {
	done  chan struct{}
	descs []*svcdesc.Description
	err   error
}

// Cached wraps any Resolver with a client-side lookup cache under lease:
// steady-state lookups are local hits, a result inside the stale window is
// served immediately while one background fetch revalidates it, and
// concurrent identical lookups coalesce into a single wire call
// (single-flight). Writes pass through and clear the cache; the failure
// detector invalidates by provider through the Invalidator interface.
type Cached struct {
	inner    Resolver
	clock    simtime.Clock
	ttl      time.Duration
	staleFor time.Duration
	metrics  *obs.Registry

	mu      sync.Mutex
	entries map[string]*cacheEntry
	flights map[string]*flight
	closed  bool
}

var (
	_ Resolver    = (*Cached)(nil)
	_ Invalidator = (*Cached)(nil)
)

// NewCached wraps inner with a lookup cache.
func NewCached(inner Resolver, opts CacheOptions) *Cached {
	if opts.Clock == nil {
		opts.Clock = simtime.Real{}
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultCacheTTL
	}
	if opts.StaleFor <= 0 {
		opts.StaleFor = opts.TTL
	}
	return &Cached{
		inner:    inner,
		clock:    opts.Clock,
		ttl:      opts.TTL,
		staleFor: opts.StaleFor,
		metrics:  obs.Or(opts.Metrics),
		entries:  make(map[string]*cacheEntry),
		flights:  make(map[string]*flight),
	}
}

// Register implements Resolver, clearing the cache: a local write changes
// what lookups should see, and local writes are rare enough that coherence
// beats hit rate.
func (c *Cached) Register(d *svcdesc.Description) error {
	err := c.inner.Register(d)
	if err == nil {
		c.clear()
	}
	return err
}

// Unregister implements Resolver (clears the cache, like Register).
func (c *Cached) Unregister(key string) error {
	err := c.inner.Unregister(key)
	if err == nil {
		c.clear()
	}
	return err
}

// Renew implements Resolver. A renewal changes no membership, only lease
// bookkeeping, so the cache stays.
func (c *Cached) Renew(key string) error { return c.inner.Renew(key) }

// Lookup implements Resolver.
func (c *Cached) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	payload, err := svcdesc.MarshalQuery(q)
	if err != nil {
		return nil, err
	}
	key := string(payload)
	now := c.clock.Now()

	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		age := now.Sub(e.fetched)
		if age < c.ttl {
			descs := cloneDescs(e.descs)
			c.mu.Unlock()
			c.metrics.Counter("discovery.cache.hits").Inc(1)
			return descs, nil
		}
		if age < c.ttl+c.staleFor {
			descs := cloneDescs(e.descs)
			c.revalidateLocked(key, q)
			c.mu.Unlock()
			c.metrics.Counter("discovery.cache.stale_served").Inc(1)
			return descs, nil
		}
	}
	// Miss (or expired past the stale window): fetch through, coalescing
	// onto any identical fetch already in flight.
	if f := c.flights[key]; f != nil {
		c.mu.Unlock()
		c.metrics.Counter("discovery.cache.coalesced").Inc(1)
		<-f.done
		return cloneDescs(f.descs), f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	c.metrics.Counter("discovery.cache.misses").Inc(1)
	c.fetch(key, q, f)
	return cloneDescs(f.descs), f.err
}

// revalidateLocked kicks a background refresh for key unless one is already
// in flight. Caller holds c.mu.
func (c *Cached) revalidateLocked(key string, q *svcdesc.Query) {
	if c.flights[key] != nil || c.closed {
		return
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	qc := cloneQuery(q)
	go func() {
		c.metrics.Counter("discovery.cache.revalidations").Inc(1)
		c.fetch(key, qc, f)
	}()
}

// fetch performs the wire lookup for a flight, installs the result in the
// cache on success, and releases every coalesced waiter.
func (c *Cached) fetch(key string, q *svcdesc.Query, f *flight) {
	descs, err := c.inner.Lookup(q)
	f.descs, f.err = descs, err
	c.mu.Lock()
	if err == nil {
		c.entries[key] = &cacheEntry{descs: cloneDescs(descs), fetched: c.clock.Now()}
		c.metrics.Gauge("discovery.cache.entries").Set(float64(len(c.entries)))
	}
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
}

// InvalidateProvider implements Invalidator: every cached result listing the
// provider is dropped, so the next lookup re-resolves on the wire instead of
// re-serving a suspected corpse for the rest of its lease.
func (c *Cached) InvalidateProvider(provider string) {
	c.mu.Lock()
	dropped := 0
	for key, e := range c.entries {
		for _, d := range e.descs {
			if d != nil && d.Provider == provider {
				delete(c.entries, key)
				dropped++
				break
			}
		}
	}
	if dropped > 0 {
		c.metrics.Gauge("discovery.cache.entries").Set(float64(len(c.entries)))
	}
	c.mu.Unlock()
	if dropped > 0 {
		c.metrics.Counter("discovery.cache.invalidations").Inc(int64(dropped))
	}
}

// clear drops every cached result.
func (c *Cached) clear() {
	c.mu.Lock()
	c.entries = make(map[string]*cacheEntry)
	c.mu.Unlock()
	c.metrics.Gauge("discovery.cache.entries").Set(0)
}

// Close implements Resolver.
func (c *Cached) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.inner.Close()
}

func cloneDescs(in []*svcdesc.Description) []*svcdesc.Description {
	if in == nil {
		return nil
	}
	out := make([]*svcdesc.Description, len(in))
	for i, d := range in {
		out[i] = d.Clone()
	}
	return out
}

func cloneQuery(q *svcdesc.Query) *svcdesc.Query {
	if q == nil {
		return nil
	}
	out := *q
	out.Constraints = append([]svcdesc.Constraint(nil), q.Constraints...)
	out.RequireInterfaces = append([]string(nil), q.RequireInterfaces...)
	if q.Near != nil {
		near := *q.Near
		out.Near = &near
	}
	return &out
}
