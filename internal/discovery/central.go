package discovery

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Registry protocol topics (centralized organization). Requests are
// KindControl messages; replies are KindReply (success) or KindError with
// the error text as payload.
const (
	topicRegister   = "disc.register"
	topicUnregister = "disc.unregister"
	topicRenew      = "disc.renew"
	topicLookup     = "disc.lookup"
)

// Server is the centralized registry: a Store exposed over a transport
// listener via the shared endpoint engine.
type Server struct {
	store    *Store
	ep       *endpoint.Server
	traceRef *trace.Ref

	// Requests counts handled requests by topic.
	Requests stats.Counter
}

// NewServer starts serving the store on the listener in a background
// accept loop.
func NewServer(store *Store, l transport.Listener) *Server {
	s := &Server{store: store, traceRef: trace.NewRef(nil)}
	s.ep = endpoint.NewServer(l, endpoint.ServerOptions{
		Kinds: []wire.Kind{wire.KindControl, wire.KindRequest},
		Interceptors: []endpoint.ServerInterceptor{
			endpoint.WithServerTracing(s.traceRef, "disc.serve"),
			s.sweepAndCount,
			endpoint.WithServerMetrics(nil, "discovery.server", nil),
		},
		Fallback: func(req *wire.Message) (*wire.Message, error) {
			return nil, fmt.Errorf("discovery: unknown topic %q", req.Topic)
		},
	})
	s.ep.Handle(topicRegister, s.handleRegister)
	s.ep.Handle(topicUnregister, s.handleUnregister)
	s.ep.Handle(topicRenew, s.handleRenew)
	s.ep.Handle(topicLookup, s.handleLookup)
	return s
}

// sweepAndCount expires stale leases before every operation and tallies the
// request by topic — unknown topics included, as before the endpoint port.
func (s *Server) sweepAndCount(next endpoint.Handler) endpoint.Handler {
	return func(req *wire.Message) (*wire.Message, error) {
		s.store.Sweep()
		s.Requests.Inc(req.Topic, 1)
		return next(req)
	}
}

// SetTracer installs the registry server's tracer (nil reverts to the
// process default).
func (s *Server) SetTracer(t *trace.Tracer) { s.traceRef.Set(t) }

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ep.Addr() }

// Store returns the server's backing store.
func (s *Server) Store() *Store { return s.store }

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error { return s.ep.Close() }

func (s *Server) handleRegister(req *wire.Message) (*wire.Message, error) {
	d, err := svcdesc.UnmarshalDescription(req.Payload)
	if err != nil {
		return nil, err
	}
	if err := s.store.Register(d); err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindAck}, nil
}

func (s *Server) handleUnregister(req *wire.Message) (*wire.Message, error) {
	if err := s.store.Unregister(string(req.Payload)); err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindAck}, nil
}

func (s *Server) handleRenew(req *wire.Message) (*wire.Message, error) {
	if err := s.store.Renew(string(req.Payload)); err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindAck}, nil
}

func (s *Server) handleLookup(req *wire.Message) (*wire.Message, error) {
	q, err := svcdesc.UnmarshalQuery(req.Payload)
	if err != nil {
		return nil, err
	}
	descs, err := s.store.Lookup(q)
	if err != nil {
		return nil, err
	}
	payload, err := svcdesc.MarshalDescriptionList(descs)
	if err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindReply, Payload: payload}, nil
}

// Client is the centralized organization's Registry implementation: the
// registry protocol spoken through an endpoint.Caller, with lazy dialing,
// one redial-and-retry on connection-level failures, and per-call timeouts.
type Client struct {
	caller   *endpoint.Caller
	traceRef *trace.Ref

	mu      sync.Mutex
	timeout time.Duration

	// Messages counts protocol messages sent and received (the message-cost
	// metric of experiments E1/E2).
	Messages stats.Counter
}

var _ Registry = (*Client)(nil)

// NewClient returns a client that will connect lazily to the registry at
// addr over tr.
func NewClient(tr transport.Transport, addr string) *Client {
	c := &Client{traceRef: trace.NewRef(nil)}
	// NewCaller without Eager cannot fail: the dial happens on first use.
	c.caller, _ = endpoint.NewCaller(tr, addr, endpoint.CallerOptions{
		Redial: true,
		Interceptors: []endpoint.ClientInterceptor{
			// Tracing outermost: the span covers the retry loop, so one
			// registry call with a redial is still one span on the timeline.
			endpoint.WithTracing(c.traceRef, "disc.call"),
			// The pre-endpoint client reconnected and re-sent exactly once
			// after a torn-down connection or an expired wait; retry Max 1
			// with no backoff reproduces that.
			endpoint.WithRetry(nil, endpoint.RetryPolicy{Max: 1, RetryTimeouts: true},
				nil, "discovery.client"),
			endpoint.WithMetrics(nil, "discovery.client", nil),
		},
		OnSend: func(*wire.Message) { c.Messages.Inc("sent", 1) },
		OnRecv: func(*wire.Message) { c.Messages.Inc("received", 1) },
	})
	return c
}

// SetCallTimeout bounds each request/response exchange: if the registry's
// reply does not arrive within d the call fails (after one retry). Without a
// timeout a lost reply datagram blocks the caller forever — unacceptable on
// lossy radio substrates, where the adaptive registry needs the central
// organization to *fail* so it can fall back to flooding. A zero d restores
// unbounded waits; a nil clock means wall time.
func (c *Client) SetCallTimeout(d time.Duration, clock simtime.Clock) {
	c.caller.SetClock(clock)
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// SetTracer installs the client's tracer (nil reverts to the process
// default).
func (c *Client) SetTracer(t *trace.Tracer) { c.traceRef.Set(t) }

// Register implements Registry.
func (c *Client) Register(d *svcdesc.Description) error {
	payload, err := svcdesc.MarshalDescription(d)
	if err != nil {
		return err
	}
	_, err = c.call(topicRegister, payload)
	return err
}

// Unregister implements Registry.
func (c *Client) Unregister(key string) error {
	_, err := c.call(topicUnregister, []byte(key))
	return err
}

// Renew implements Registry.
func (c *Client) Renew(key string) error {
	_, err := c.call(topicRenew, []byte(key))
	return err
}

// Lookup implements Registry.
func (c *Client) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	payload, err := svcdesc.MarshalQuery(q)
	if err != nil {
		return nil, err
	}
	r := obs.Default()
	r.Counter("discovery.lookup.queries").Inc(1)
	start := time.Now()
	reply, err := c.call(topicLookup, payload)
	r.Histogram("discovery.lookup.latency_ms").Observe(
		float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		r.Counter("discovery.lookup.errors").Inc(1)
		return nil, err
	}
	descs, err := svcdesc.UnmarshalDescriptionList(reply.Payload)
	if err == nil {
		if len(descs) > 0 {
			r.Counter("discovery.lookup.hits").Inc(1)
		} else {
			r.Counter("discovery.lookup.misses").Inc(1)
		}
	}
	return descs, err
}

// Close implements Registry.
func (c *Client) Close() error { return c.caller.Close() }

// call performs one request/response exchange through the endpoint and maps
// its errors back onto the discovery protocol's vocabulary.
func (c *Client) call(topic string, payload []byte) (*wire.Message, error) {
	timeout := c.callTimeout()
	reply, err := c.caller.Do(&endpoint.Call{
		Kind:    wire.KindControl,
		Topic:   topic,
		Payload: payload,
		Timeout: timeout,
	})
	if err != nil {
		return nil, translateErr(topic, timeout, err)
	}
	return reply, nil
}

func (c *Client) callTimeout() time.Duration {
	c.mu.Lock()
	timeout := c.timeout
	c.mu.Unlock()
	if timeout <= 0 {
		timeout = endpoint.NoTimeout
	}
	return timeout
}

// translateErr maps endpoint outcomes onto the discovery error vocabulary.
func translateErr(topic string, timeout time.Duration, err error) error {
	if re, ok := endpoint.IsRemote(err); ok {
		return fmt.Errorf("discovery: registry: %s", re.Msg)
	}
	if errors.Is(err, endpoint.ErrTimeout) {
		return fmt.Errorf("discovery: %s: no reply within %v", topic, timeout)
	}
	if errors.Is(err, endpoint.ErrClosed) {
		return ErrClosed
	}
	return fmt.Errorf("discovery: %s: %w", topic, err)
}

// RegisterBatch registers many descriptions in one pipelined burst: every
// request is on the wire before the first reply is awaited, so a supplier
// advertising N services pays roughly one round trip instead of N (and the
// requests coalesce into batched frames on transports that support it). It
// returns the first error encountered; registrations after a marshal
// failure are not sent, but requests already pipelined still complete on
// the registry.
func (c *Client) RegisterBatch(ds []*svcdesc.Description) error {
	timeout := c.callTimeout()
	futs := make([]*endpoint.Future, 0, len(ds))
	var firstErr error
	for _, d := range ds {
		payload, err := svcdesc.MarshalDescription(d)
		if err != nil {
			firstErr = err
			break
		}
		futs = append(futs, c.caller.Go(&endpoint.Call{
			Kind:    wire.KindControl,
			Topic:   topicRegister,
			Payload: payload,
			Timeout: timeout,
		}))
	}
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil && firstErr == nil {
			firstErr = translateErr(topicRegister, timeout, err)
		}
	}
	return firstErr
}
