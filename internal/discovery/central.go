package discovery

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Registry protocol topics (centralized organization). Requests are
// KindControl messages; replies are KindReply (success) or KindError with
// the error text as payload.
const (
	topicRegister   = "disc.register"
	topicUnregister = "disc.unregister"
	topicRenew      = "disc.renew"
	topicLookup     = "disc.lookup"
)

// Server is the centralized registry: a Store exposed over a transport
// listener. Start with Serve (blocking) or let NewServer's goroutine run it.
type Server struct {
	store    *Store
	listener transport.Listener

	mu     sync.Mutex
	conns  map[transport.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	// Requests counts handled requests by topic.
	Requests stats.Counter
}

// NewServer starts serving the store on the listener in a background
// accept loop.
func NewServer(store *Store, l transport.Listener) *Server {
	s := &Server{store: store, listener: l, conns: make(map[transport.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Store returns the server's backing store.
func (s *Server) Store() *Store { return s.store }

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	_ = s.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := conn.Recv()
		if err != nil {
			return
		}
		reply := s.handle(req)
		reply.Corr = req.ID
		if err := conn.Send(reply); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *wire.Message) *wire.Message {
	s.store.Sweep()
	s.Requests.Inc(req.Topic, 1)
	fail := func(err error) *wire.Message {
		return &wire.Message{Kind: wire.KindError, Topic: req.Topic, Payload: []byte(err.Error())}
	}
	switch req.Topic {
	case topicRegister:
		d, err := svcdesc.UnmarshalDescription(req.Payload)
		if err != nil {
			return fail(err)
		}
		if err := s.store.Register(d); err != nil {
			return fail(err)
		}
		return &wire.Message{Kind: wire.KindAck, Topic: req.Topic}
	case topicUnregister:
		if err := s.store.Unregister(string(req.Payload)); err != nil {
			return fail(err)
		}
		return &wire.Message{Kind: wire.KindAck, Topic: req.Topic}
	case topicRenew:
		if err := s.store.Renew(string(req.Payload)); err != nil {
			return fail(err)
		}
		return &wire.Message{Kind: wire.KindAck, Topic: req.Topic}
	case topicLookup:
		q, err := svcdesc.UnmarshalQuery(req.Payload)
		if err != nil {
			return fail(err)
		}
		descs, err := s.store.Lookup(q)
		if err != nil {
			return fail(err)
		}
		payload, err := svcdesc.MarshalDescriptionList(descs)
		if err != nil {
			return fail(err)
		}
		return &wire.Message{Kind: wire.KindReply, Topic: req.Topic, Payload: payload}
	default:
		return fail(fmt.Errorf("discovery: unknown topic %q", req.Topic))
	}
}

// Client is the centralized organization's Registry implementation: a
// request/response protocol over one transport connection.
type Client struct {
	tr   transport.Transport
	addr string

	mu     sync.Mutex // serializes request/response exchanges
	conn   transport.Conn
	closed bool

	// timeout bounds each exchange when non-zero (see SetCallTimeout).
	timeout time.Duration
	clock   simtime.Clock

	nextID atomic.Uint64

	// Messages counts protocol messages sent and received (the message-cost
	// metric of experiments E1/E2).
	Messages stats.Counter
}

var _ Registry = (*Client)(nil)

// NewClient returns a client that will connect lazily to the registry at
// addr over tr.
func NewClient(tr transport.Transport, addr string) *Client {
	return &Client{tr: tr, addr: addr}
}

// SetCallTimeout bounds each request/response exchange: if the registry's
// reply does not arrive within d the connection is dropped and the call
// fails. Without a timeout a lost reply datagram blocks the caller forever —
// unacceptable on lossy radio substrates, where the adaptive registry needs
// the central organization to *fail* so it can fall back to flooding. A zero
// d restores unbounded waits; a nil clock means wall time.
func (c *Client) SetCallTimeout(d time.Duration, clock simtime.Clock) {
	if clock == nil {
		clock = simtime.Real{}
	}
	c.mu.Lock()
	c.timeout = d
	c.clock = clock
	c.mu.Unlock()
}

// Register implements Registry.
func (c *Client) Register(d *svcdesc.Description) error {
	payload, err := svcdesc.MarshalDescription(d)
	if err != nil {
		return err
	}
	_, err = c.call(topicRegister, payload)
	return err
}

// Unregister implements Registry.
func (c *Client) Unregister(key string) error {
	_, err := c.call(topicUnregister, []byte(key))
	return err
}

// Renew implements Registry.
func (c *Client) Renew(key string) error {
	_, err := c.call(topicRenew, []byte(key))
	return err
}

// Lookup implements Registry.
func (c *Client) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	payload, err := svcdesc.MarshalQuery(q)
	if err != nil {
		return nil, err
	}
	reply, err := c.call(topicLookup, payload)
	if err != nil {
		return nil, err
	}
	return svcdesc.UnmarshalDescriptionList(reply.Payload)
}

// Close implements Registry.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// call performs one request/response exchange, reconnecting once on a
// stale-connection failure.
func (c *Client) call(topic string, payload []byte) (*wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	reply, err := c.exchangeLocked(topic, payload)
	if err != nil && !errors.Is(err, ErrClosed) && c.conn == nil {
		// Connection was torn down; a single reconnect attempt.
		reply, err = c.exchangeLocked(topic, payload)
	}
	return reply, err
}

func (c *Client) exchangeLocked(topic string, payload []byte) (*wire.Message, error) {
	if c.conn == nil {
		conn, err := c.tr.Dial(c.addr)
		if err != nil {
			return nil, fmt.Errorf("discovery: connect registry: %w", err)
		}
		c.conn = conn
	}
	req := &wire.Message{
		ID:      c.nextID.Add(1),
		Kind:    wire.KindControl,
		Topic:   topic,
		Payload: payload,
	}
	if err := c.conn.Send(req); err != nil {
		c.dropConnLocked()
		return nil, fmt.Errorf("discovery: send %s: %w", topic, err)
	}
	c.Messages.Inc("sent", 1)

	type result struct {
		m   *wire.Message
		err error
	}
	conn := c.conn
	ch := make(chan result, 1)
	go func() {
		for {
			reply, err := conn.Recv()
			if err != nil {
				ch <- result{nil, err}
				return
			}
			c.Messages.Inc("received", 1)
			if reply.Corr != req.ID {
				continue // stale reply from a timed-out predecessor
			}
			ch <- result{reply, nil}
			return
		}
	}()
	var timer <-chan time.Time
	if c.timeout > 0 {
		timer = c.clock.After(c.timeout)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			c.dropConnLocked()
			return nil, fmt.Errorf("discovery: recv %s: %w", topic, r.err)
		}
		if r.m.Kind == wire.KindError {
			return nil, fmt.Errorf("discovery: registry: %s", r.m.Payload)
		}
		return r.m, nil
	case <-timer:
		// Dropping the connection unblocks the receive goroutine.
		c.dropConnLocked()
		return nil, fmt.Errorf("discovery: %s: no reply within %v", topic, c.timeout)
	}
}

func (c *Client) dropConnLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}
