package discovery

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// Registry protocol topics (centralized organization). Requests are
// KindControl messages; replies are KindReply (success) or KindError with
// the error text as payload. Exported so other servers speaking the same
// protocol (a registry-cluster node) stay on one topic vocabulary.
const (
	TopicRegister   = "disc.register"
	TopicUnregister = "disc.unregister"
	TopicRenew      = "disc.renew"
	TopicLookup     = "disc.lookup"
)

// Sweeper is implemented by backings whose lease table benefits from
// periodic expiry (Store, a cluster node's replicated table).
type Sweeper interface {
	// Sweep removes expired entries, returning how many were removed.
	Sweep() int
}

// ServerOptions tunes a registry server beyond its defaults.
type ServerOptions struct {
	// Clock times the sweep ticker (simtime.Real if nil).
	Clock simtime.Clock
	// SweepEvery drives lease expiry from a ticker so a quiet registry still
	// sheds dead leases: without it, expiry only happens opportunistically on
	// the next incoming request, and a registry nobody talks to keeps corpses
	// forever. Zero disables the ticker (requests still sweep).
	SweepEvery time.Duration
	// Metrics receives the server's instruments (process default if nil).
	Metrics *obs.Registry
}

// Server exposes any Resolver backing over a transport listener via the
// shared endpoint engine, speaking the centralized registry protocol.
type Server struct {
	backing  Resolver
	store    *Store // non-nil when the backing is a plain Store
	sweeper  Sweeper
	ep       *endpoint.Server
	traceRef *trace.Ref

	stopSweep chan struct{}
	sweepWG   sync.WaitGroup
	closeOnce sync.Once

	// Requests counts handled requests by topic.
	Requests stats.Counter
}

// NewServer starts serving the store on the listener in a background
// accept loop.
func NewServer(store *Store, l transport.Listener) *Server {
	return NewResolverServer(store, l, ServerOptions{})
}

// NewResolverServer starts serving any Resolver backing on the listener —
// the same wire protocol NewServer speaks, over whatever lease table the
// backing keeps.
func NewResolverServer(backing Resolver, l transport.Listener, opts ServerOptions) *Server {
	s := &Server{backing: backing, traceRef: trace.NewRef(nil)}
	s.store, _ = backing.(*Store)
	s.sweeper, _ = backing.(Sweeper)
	s.ep = endpoint.NewServer(l, endpoint.ServerOptions{
		Kinds: []wire.Kind{wire.KindControl, wire.KindRequest},
		Interceptors: []endpoint.ServerInterceptor{
			endpoint.WithServerTracing(s.traceRef, "disc.serve"),
			s.sweepAndCount,
			endpoint.WithServerMetrics(opts.Metrics, "discovery.server", nil),
		},
		Fallback: func(req *wire.Message) (*wire.Message, error) {
			return nil, fmt.Errorf("discovery: unknown topic %q", req.Topic)
		},
	})
	s.ep.Handle(TopicRegister, s.handleRegister)
	s.ep.Handle(TopicUnregister, s.handleUnregister)
	s.ep.Handle(TopicRenew, s.handleRenew)
	s.ep.Handle(TopicLookup, s.handleLookup)
	if opts.SweepEvery > 0 && s.sweeper != nil {
		clock := opts.Clock
		if clock == nil {
			clock = simtime.Real{}
		}
		s.stopSweep = make(chan struct{})
		s.sweepWG.Add(1)
		go s.sweepLoop(clock, opts.SweepEvery)
	}
	return s
}

// sweepLoop expires stale leases on the ticker until Close.
func (s *Server) sweepLoop(clock simtime.Clock, every time.Duration) {
	defer s.sweepWG.Done()
	for {
		select {
		case <-clock.After(every):
			s.sweeper.Sweep()
		case <-s.stopSweep:
			return
		}
	}
}

// sweepAndCount expires stale leases before every operation and tallies the
// request by topic — unknown topics included, as before the endpoint port.
func (s *Server) sweepAndCount(next endpoint.Handler) endpoint.Handler {
	return func(req *wire.Message) (*wire.Message, error) {
		if s.sweeper != nil {
			s.sweeper.Sweep()
		}
		s.Requests.Inc(req.Topic, 1)
		return next(req)
	}
}

// SetTracer installs the registry server's tracer (nil reverts to the
// process default).
func (s *Server) SetTracer(t *trace.Tracer) { s.traceRef.Set(t) }

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ep.Addr() }

// Store returns the server's backing store (nil when the backing is not a
// plain *Store).
func (s *Server) Store() *Store { return s.store }

// Handle registers an extra topic on the server's listener — how a cluster
// node rides its registry listener for gossip without a second protocol
// port.
func (s *Server) Handle(topic string, h endpoint.Handler) { s.ep.Handle(topic, h) }

// Close stops the sweep ticker and the endpoint server.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.stopSweep != nil {
			close(s.stopSweep)
		}
	})
	s.sweepWG.Wait()
	return s.ep.Close()
}

func (s *Server) handleRegister(req *wire.Message) (*wire.Message, error) {
	d, err := svcdesc.UnmarshalDescription(req.Payload)
	if err != nil {
		return nil, err
	}
	if err := s.backing.Register(d); err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindAck}, nil
}

func (s *Server) handleUnregister(req *wire.Message) (*wire.Message, error) {
	if err := s.backing.Unregister(string(req.Payload)); err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindAck}, nil
}

func (s *Server) handleRenew(req *wire.Message) (*wire.Message, error) {
	if err := s.backing.Renew(string(req.Payload)); err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindAck}, nil
}

func (s *Server) handleLookup(req *wire.Message) (*wire.Message, error) {
	q, err := svcdesc.UnmarshalQuery(req.Payload)
	if err != nil {
		return nil, err
	}
	descs, err := s.backing.Lookup(q)
	if err != nil {
		return nil, err
	}
	payload, err := svcdesc.MarshalDescriptionList(descs)
	if err != nil {
		return nil, err
	}
	return &wire.Message{Kind: wire.KindReply, Payload: payload}, nil
}

// Client is the centralized organization's Registry implementation: the
// registry protocol spoken through an endpoint.Caller, with lazy dialing,
// one redial-and-retry on connection-level failures, and per-call timeouts.
type Client struct {
	caller   *endpoint.Caller
	traceRef *trace.Ref

	mu      sync.Mutex
	timeout time.Duration

	// Messages counts protocol messages sent and received (the message-cost
	// metric of experiments E1/E2).
	Messages stats.Counter
}

var _ Registry = (*Client)(nil)

// NewClient returns a client that will connect lazily to the registry at
// addr over tr.
func NewClient(tr transport.Transport, addr string) *Client {
	c := &Client{traceRef: trace.NewRef(nil)}
	// NewCaller without Eager cannot fail: the dial happens on first use.
	c.caller, _ = endpoint.NewCaller(tr, addr, endpoint.CallerOptions{
		Redial: true,
		Interceptors: []endpoint.ClientInterceptor{
			// Tracing outermost: the span covers the retry loop, so one
			// registry call with a redial is still one span on the timeline.
			endpoint.WithTracing(c.traceRef, "disc.call"),
			// The pre-endpoint client reconnected and re-sent exactly once
			// after a torn-down connection or an expired wait; retry Max 1
			// with no backoff reproduces that.
			endpoint.WithRetry(nil, endpoint.RetryPolicy{Max: 1, RetryTimeouts: true},
				nil, "discovery.client"),
			endpoint.WithMetrics(nil, "discovery.client", nil),
		},
		OnSend: func(*wire.Message) { c.Messages.Inc("sent", 1) },
		OnRecv: func(*wire.Message) { c.Messages.Inc("received", 1) },
	})
	return c
}

// SetCallTimeout bounds each request/response exchange: if the registry's
// reply does not arrive within d the call fails (after one retry). Without a
// timeout a lost reply datagram blocks the caller forever — unacceptable on
// lossy radio substrates, where the adaptive registry needs the central
// organization to *fail* so it can fall back to flooding. A zero d restores
// unbounded waits; a nil clock means wall time.
func (c *Client) SetCallTimeout(d time.Duration, clock simtime.Clock) {
	c.caller.SetClock(clock)
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// SetTracer installs the client's tracer (nil reverts to the process
// default).
func (c *Client) SetTracer(t *trace.Tracer) { c.traceRef.Set(t) }

// Register implements Registry.
func (c *Client) Register(d *svcdesc.Description) error {
	payload, err := svcdesc.MarshalDescription(d)
	if err != nil {
		return err
	}
	_, err = c.call(TopicRegister, payload)
	return err
}

// Unregister implements Registry.
func (c *Client) Unregister(key string) error {
	_, err := c.call(TopicUnregister, []byte(key))
	return err
}

// Renew implements Registry.
func (c *Client) Renew(key string) error {
	_, err := c.call(TopicRenew, []byte(key))
	return err
}

// Lookup implements Registry.
func (c *Client) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	payload, err := svcdesc.MarshalQuery(q)
	if err != nil {
		return nil, err
	}
	r := obs.Default()
	r.Counter("discovery.lookup.queries").Inc(1)
	start := time.Now()
	reply, err := c.call(TopicLookup, payload)
	r.Histogram("discovery.lookup.latency_ms").Observe(
		float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		r.Counter("discovery.lookup.errors").Inc(1)
		return nil, err
	}
	descs, err := svcdesc.UnmarshalDescriptionList(reply.Payload)
	if err == nil {
		if len(descs) > 0 {
			r.Counter("discovery.lookup.hits").Inc(1)
		} else {
			r.Counter("discovery.lookup.misses").Inc(1)
		}
	}
	return descs, err
}

// Close implements Registry.
func (c *Client) Close() error { return c.caller.Close() }

// call performs one request/response exchange through the endpoint and maps
// its errors back onto the discovery protocol's vocabulary.
func (c *Client) call(topic string, payload []byte) (*wire.Message, error) {
	timeout := c.callTimeout()
	reply, err := c.caller.Do(&endpoint.Call{
		Kind:    wire.KindControl,
		Topic:   topic,
		Payload: payload,
		Timeout: timeout,
	})
	if err != nil {
		return nil, translateErr(topic, timeout, err)
	}
	return reply, nil
}

func (c *Client) callTimeout() time.Duration {
	c.mu.Lock()
	timeout := c.timeout
	c.mu.Unlock()
	if timeout <= 0 {
		timeout = endpoint.NoTimeout
	}
	return timeout
}

// translateErr maps endpoint outcomes onto the discovery error vocabulary.
func translateErr(topic string, timeout time.Duration, err error) error {
	if re, ok := endpoint.IsRemote(err); ok {
		return fmt.Errorf("discovery: registry: %s", re.Msg)
	}
	if errors.Is(err, endpoint.ErrTimeout) {
		return fmt.Errorf("discovery: %s: no reply within %v", topic, timeout)
	}
	if errors.Is(err, endpoint.ErrClosed) {
		return ErrClosed
	}
	return fmt.Errorf("discovery: %s: %w", topic, err)
}

// RegisterBatch registers many descriptions in one pipelined burst: every
// request is on the wire before the first reply is awaited, so a supplier
// advertising N services pays roughly one round trip instead of N (and the
// requests coalesce into batched frames on transports that support it). It
// returns the first error encountered; registrations after a marshal
// failure are not sent, but requests already pipelined still complete on
// the registry.
func (c *Client) RegisterBatch(ds []*svcdesc.Description) error {
	timeout := c.callTimeout()
	futs := make([]*endpoint.Future, 0, len(ds))
	var firstErr error
	for _, d := range ds {
		payload, err := svcdesc.MarshalDescription(d)
		if err != nil {
			firstErr = err
			break
		}
		futs = append(futs, c.caller.Go(&endpoint.Call{
			Kind:    wire.KindControl,
			Topic:   TopicRegister,
			Payload: payload,
			Timeout: timeout,
		}))
	}
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil && firstErr == nil {
			firstErr = translateErr(TopicRegister, timeout, err)
		}
	}
	return firstErr
}
