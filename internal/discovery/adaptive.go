package discovery

import (
	"fmt"
	"sync"
	"time"

	"ndsm/internal/simtime"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
)

// Mode names the organization an adaptive registry picked for an operation.
type Mode string

// Adaptive modes.
const (
	ModeCentral Mode = "central"
	ModeFlood   Mode = "flood"
)

// Policy decides which organization to use for the next operation, given
// the locally observable environment (§3.3: "allow the service discovery
// approach to adapt to the current environment, selecting a centralized or
// distributed approach based on some aspects of the network itself such as
// density or traffic").
type Policy func(env Env) Mode

// Env is what the adaptive registry can observe locally.
type Env struct {
	// Density is the node's current radio neighbour count.
	Density int
	// CentralHealthy reports whether the registry server answered recently.
	CentralHealthy bool
}

// DensityPolicy returns the default policy: a dense neighbourhood makes
// flooding expensive (every neighbour rebroadcasts), so prefer the central
// registry when it is healthy and the density is at or above threshold;
// otherwise flood — sparse floods are cheap and need no infrastructure.
func DensityPolicy(threshold int) Policy {
	return func(env Env) Mode {
		if !env.CentralHealthy {
			return ModeFlood
		}
		if env.Density >= threshold {
			return ModeCentral
		}
		return ModeFlood
	}
}

// AlwaysCentral and AlwaysFlood pin the mode (useful as experiment
// baselines).
func AlwaysCentral(Env) Mode { return ModeCentral }

// AlwaysFlood pins the distributed mode.
func AlwaysFlood(Env) Mode { return ModeFlood }

// Adaptive is the adaptive organization: it owns a centralized client and a
// distributed agent and routes each operation per policy, falling back to
// the other mode on failure. Registrations always go to both worlds — the
// local agent answers floods regardless of mode, and the central registry
// stays warm for when the policy flips.
type Adaptive struct {
	central   Registry
	flood     *Agent
	policy    Policy
	densityFn func() int
	clock     simtime.Clock

	mu            sync.Mutex
	centralOK     bool
	lastProbe     time.Time
	probeInterval time.Duration

	// Decisions counts operations by mode chosen.
	Decisions stats.Counter
}

var _ Registry = (*Adaptive)(nil)

// NewAdaptive builds an adaptive registry. densityFn reports the node's
// current radio density (e.g. closing over netsim.Network.Density). policy
// defaults to DensityPolicy(6).
func NewAdaptive(central Registry, flood *Agent, densityFn func() int, policy Policy, clock simtime.Clock) *Adaptive {
	if policy == nil {
		policy = DensityPolicy(6)
	}
	if clock == nil {
		clock = simtime.Real{}
	}
	return &Adaptive{
		central:       central,
		flood:         flood,
		policy:        policy,
		densityFn:     densityFn,
		clock:         clock,
		centralOK:     true, // optimistic until proven otherwise
		probeInterval: 2 * time.Second,
	}
}

// env snapshots the observable environment.
func (a *Adaptive) env() Env {
	a.mu.Lock()
	healthy := a.centralOK
	a.mu.Unlock()
	density := 0
	if a.densityFn != nil {
		density = a.densityFn()
	}
	return Env{Density: density, CentralHealthy: healthy}
}

// markCentral records the health of the last central-registry exchange.
func (a *Adaptive) markCentral(ok bool) {
	a.mu.Lock()
	a.centralOK = ok
	a.lastProbe = a.clock.Now()
	a.mu.Unlock()
}

// shouldReprobe reports whether enough time has passed to retry an unhealthy
// central registry.
func (a *Adaptive) shouldReprobe() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return !a.centralOK && a.clock.Now().Sub(a.lastProbe) >= a.probeInterval
}

// Register implements Registry: into the local flood store always, and into
// the central registry when reachable.
func (a *Adaptive) Register(d *svcdesc.Description) error {
	floodErr := a.flood.Register(d)
	var centralErr error
	if a.central != nil {
		centralErr = a.central.Register(d)
		a.markCentral(centralErr == nil)
	}
	if floodErr != nil && centralErr != nil {
		return fmt.Errorf("discovery: adaptive register failed everywhere: %w", centralErr)
	}
	return floodErr
}

// Unregister implements Registry.
func (a *Adaptive) Unregister(key string) error {
	floodErr := a.flood.Unregister(key)
	if a.central != nil {
		if err := a.central.Unregister(key); err == nil {
			a.markCentral(true)
			return nil
		}
	}
	return floodErr
}

// Renew implements Registry.
func (a *Adaptive) Renew(key string) error {
	floodErr := a.flood.Renew(key)
	if a.central != nil {
		if err := a.central.Renew(key); err == nil {
			a.markCentral(true)
			return nil
		}
	}
	return floodErr
}

// Lookup implements Registry: policy picks the mode; failure falls back to
// the other mode and updates health.
func (a *Adaptive) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	mode := a.policy(a.env())
	if mode == ModeCentral && a.central == nil {
		mode = ModeFlood
	}
	// Periodically re-probe an unhealthy central registry so we notice
	// recovery.
	if mode == ModeFlood && a.central != nil && a.shouldReprobe() {
		if descs, err := a.central.Lookup(q); err == nil {
			a.markCentral(true)
			a.Decisions.Inc(string(ModeCentral), 1)
			return descs, nil
		}
		a.markCentral(false)
	}

	switch mode {
	case ModeCentral:
		descs, err := a.central.Lookup(q)
		if err == nil {
			a.markCentral(true)
			if len(descs) > 0 {
				a.Decisions.Inc(string(ModeCentral), 1)
				return descs, nil
			}
			// Healthy but empty: the server may just have expired every
			// lease (renewals lost, suppliers slow) while the suppliers
			// themselves are alive and answering floods. One flood round can
			// only add information — backfill from it, and return the
			// confirmed emptiness only if the flood agrees.
			a.Decisions.Inc("central_empty_flood", 1)
			if fdescs, ferr := a.flood.Lookup(q); ferr == nil && len(fdescs) > 0 {
				return fdescs, nil
			}
			return descs, nil
		}
		a.markCentral(false)
		a.Decisions.Inc("central_failover", 1)
		fallthrough
	default:
		descs, err := a.flood.Lookup(q)
		if err != nil {
			return nil, err
		}
		a.Decisions.Inc(string(ModeFlood), 1)
		return descs, nil
	}
}

// InvalidateProvider implements Invalidator, forwarding to the central side
// (the flood agent holds no cache to invalidate). A consumer stack like
// watched(adaptive(cached(cluster))) needs this hop or suspicion-driven
// invalidations would stop here and strand stale cache entries below.
func (a *Adaptive) InvalidateProvider(provider string) {
	if a.central != nil {
		Invalidate(a.central, provider)
	}
}

// Close implements Registry.
func (a *Adaptive) Close() error {
	var firstErr error
	if a.central != nil {
		firstErr = a.central.Close()
	}
	if err := a.flood.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
