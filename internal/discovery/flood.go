package discovery

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/simtime"
	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
	"ndsm/internal/trace"
)

// ProtoDiscovery is the netmux protocol byte of the distributed discovery
// agent.
const ProtoDiscovery byte = 0xD1

// Flood protocol message types.
const (
	floodQuery  = "query"
	floodReply  = "reply"
	floodAdvert = "advert"
)

// floodMsg is the distributed protocol envelope (JSON after the protocol
// byte).
type floodMsg struct {
	Type string `json:"type"`
	// QID identifies a query within its origin.
	QID uint64 `json:"qid,omitempty"`
	// Origin is the querying node.
	Origin string `json:"origin,omitempty"`
	// TTL bounds query propagation in hops.
	TTL int `json:"ttl,omitempty"`
	// Path lists the nodes a query traversed, origin first. Replies walk it
	// backwards.
	Path []string `json:"path,omitempty"`
	// Query is the XML query (query messages).
	Query []byte `json:"query,omitempty"`
	// Matches is the XML service list (reply and advert messages).
	Matches []byte `json:"matches,omitempty"`
	// Trace and Span carry causal trace context across nodes (hex, same
	// format as the endpoint layer's wire headers). The flood protocol has no
	// header map, so the envelope carries them directly; each forwarding hop
	// rewrites Span to its own span so parent links follow the actual path.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
}

// traceContext reads the envelope's causal context (zero when absent).
func (m *floodMsg) traceContext() trace.Context {
	return trace.Context{TraceID: trace.ParseID(m.Trace), SpanID: trace.ParseID(m.Span)}
}

// setTraceContext stamps the envelope with a span's context (no-op for
// invalid contexts, keeping untraced floods byte-identical to before).
func (m *floodMsg) setTraceContext(c trace.Context) {
	if !c.Valid() {
		return
	}
	m.Trace = trace.FormatID(c.TraceID)
	m.Span = trace.FormatID(c.SpanID)
}

func (m *floodMsg) encode() []byte {
	body, err := json.Marshal(m)
	if err != nil {
		// floodMsg contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("discovery: encode flood message: %v", err))
	}
	return append([]byte{ProtoDiscovery}, body...)
}

func decodeFloodMsg(data []byte) (*floodMsg, error) {
	if len(data) < 1 || data[0] != ProtoDiscovery {
		return nil, fmt.Errorf("discovery: not a discovery datagram")
	}
	var m floodMsg
	if err := json.Unmarshal(data[1:], &m); err != nil {
		return nil, fmt.Errorf("discovery: decode flood message: %w", err)
	}
	return &m, nil
}

// AgentConfig tunes a distributed discovery agent.
type AgentConfig struct {
	// QueryTTL bounds query flooding in hops (default 8).
	QueryTTL int
	// CollectWindow is how long Lookup gathers replies (default 100ms).
	CollectWindow time.Duration
	// MaxResults ends collection early once this many distinct matches
	// arrived (0: no cap).
	MaxResults int
	// Gossip enables advertisement push: Tick broadcasts the node's own
	// services to radio neighbours, and Lookup answers from the gossip cache
	// without flooding when it can.
	Gossip bool
	// QueryRetry re-issues a query once, halfway through the collect window,
	// when no reply has arrived yet — the flooding organization's parity with
	// the central client's reconnect-and-retry. The retry uses a fresh QID
	// (peers dedup on origin/qid, so re-flooding the old one would die one
	// hop out) aliased to the same pending query.
	QueryRetry bool
	// CacheTTL bounds gossip cache entries (default 10s).
	CacheTTL time.Duration
	// Clock drives collection windows and cache expiry (default real).
	Clock simtime.Clock
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.QueryTTL <= 0 {
		c.QueryTTL = 8
	}
	if c.CollectWindow <= 0 {
		c.CollectWindow = 100 * time.Millisecond
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = simtime.Real{}
	}
	return c
}

// pendingQuery collects replies for one in-flight lookup.
type pendingQuery struct {
	mu      sync.Mutex
	matches map[string]*svcdesc.Description
	notify  chan struct{} // signaled (capacity 1) on each new batch
}

// Agent is the fully distributed discovery organization: every node answers
// for its own services; queries flood the radio neighbourhood and replies
// return along the reverse path. No infrastructure node exists, so the
// organization survives any single failure — at O(N) query cost.
type Agent struct {
	cfg      AgentConfig
	mux      *netmux.Mux
	local    *Store
	cache    *Store
	traceRef *trace.Ref

	qid atomic.Uint64

	mu      sync.Mutex
	seen    map[string]bool // "origin/qid" dedup
	pending map[uint64]*pendingQuery
	closed  bool

	stop chan struct{}
	done chan struct{}

	// Messages counts protocol datagrams by kind (E1/E2's cost metric).
	Messages stats.Counter
}

var _ Registry = (*Agent)(nil)

// NewAgent starts a discovery agent on the node's mux.
func NewAgent(mux *netmux.Mux, cfg AgentConfig) *Agent {
	cfg = cfg.withDefaults()
	a := &Agent{
		cfg:      cfg,
		mux:      mux,
		local:    NewStore(cfg.Clock, 0),
		cache:    NewStore(cfg.Clock, cfg.CacheTTL),
		traceRef: trace.NewRef(nil),
		seen:     make(map[string]bool),
		pending:  make(map[uint64]*pendingQuery),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go a.loop(mux.Channel(ProtoDiscovery))
	return a
}

// Local returns the agent's own-service store.
func (a *Agent) Local() *Store { return a.local }

// SetTracer installs the agent's tracer (nil reverts to the process
// default).
func (a *Agent) SetTracer(t *trace.Tracer) { a.traceRef.Set(t) }

// CacheLen reports how many gossiped descriptions are cached.
func (a *Agent) CacheLen() int {
	a.cache.Sweep()
	return a.cache.Len()
}

// Register implements Registry: services live in the node's local store.
func (a *Agent) Register(d *svcdesc.Description) error { return a.local.Register(d) }

// Unregister implements Registry.
func (a *Agent) Unregister(key string) error { return a.local.Unregister(key) }

// Renew implements Registry.
func (a *Agent) Renew(key string) error { return a.local.Renew(key) }

// Close implements Registry.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	close(a.stop)
	<-a.done
	return nil
}

// Lookup implements Registry: local matches are free; with gossip enabled
// the cache may answer instantly; otherwise the query floods and replies are
// collected for the configured window. When a tracer is installed the flood
// runs under a "flood.lookup" span, with one "flood.round" child per query
// flood (initial plus retry) whose context travels inside the envelope.
func (a *Agent) Lookup(q *svcdesc.Query) (out []*svcdesc.Description, err error) {
	a.mu.Lock()
	closed := a.closed
	a.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}

	results := make(map[string]*svcdesc.Description)
	locals, _ := a.local.Lookup(q)
	for _, d := range locals {
		results[d.Key()] = d
	}
	if a.cfg.Gossip {
		cached, _ := a.cache.Lookup(q)
		for _, d := range cached {
			results[d.Key()] = d
		}
		if a.cfg.MaxResults > 0 && len(results) >= a.cfg.MaxResults {
			return mapToSlice(results), nil
		}
		if len(cached) > 0 {
			// Cache answered; skip the flood entirely (the cost shift that
			// makes gossip worthwhile under high query rates).
			return mapToSlice(results), nil
		}
	}

	queryXML, err := svcdesc.MarshalQuery(q)
	if err != nil {
		return nil, err
	}
	if tr := a.traceRef.Get(); tr != nil {
		sp, done := tr.Scope("flood.lookup")
		sp.SetAttr("service", q.Name)
		defer func() {
			sp.SetError(err)
			done()
		}()
	}
	pq := &pendingQuery{matches: make(map[string]*svcdesc.Description), notify: make(chan struct{}, 1)}
	var qids []uint64
	defer func() {
		a.mu.Lock()
		for _, id := range qids {
			delete(a.pending, id)
		}
		a.mu.Unlock()
	}()
	flood := func() error {
		qid := a.qid.Add(1)
		a.mu.Lock()
		a.pending[qid] = pq
		a.seen[seenKey(string(a.mux.ID()), qid)] = true
		a.mu.Unlock()
		qids = append(qids, qid)
		msg := &floodMsg{
			Type:   floodQuery,
			QID:    qid,
			Origin: string(a.mux.ID()),
			TTL:    a.cfg.QueryTTL,
			Path:   []string{string(a.mux.ID())},
			Query:  queryXML,
		}
		// One child span per flood round; its context rides in the envelope
		// so remote handlers join this trace. Active during the broadcast so
		// the per-hop radio spans nest beneath it.
		rsp := a.traceRef.Get().StartSpan("flood.round", trace.Context{})
		rsp.SetAttr("qid", fmt.Sprintf("%d", qid))
		msg.setTraceContext(rsp.Context())
		release := rsp.Activate()
		_, berr := a.mux.Broadcast(msg.encode())
		release()
		rsp.SetError(berr)
		rsp.Finish()
		if berr != nil {
			return fmt.Errorf("discovery: flood query: %w", berr)
		}
		return nil
	}
	if err := flood(); err != nil {
		return nil, err
	}
	a.count("query_sent")

	deadline := a.cfg.Clock.After(a.cfg.CollectWindow)
	var retry <-chan time.Time
	if a.cfg.QueryRetry {
		retry = a.cfg.Clock.After(a.cfg.CollectWindow / 2)
	}
	for {
		select {
		case <-deadline:
			a.harvest(pq, results)
			return mapToSlice(results), nil
		case <-a.stop:
			return nil, ErrClosed
		case <-retry:
			retry = nil
			a.harvest(pq, results)
			if len(results) > 0 {
				continue // something answered; no need to re-flood
			}
			if err := flood(); err != nil {
				continue // the window may still yield replies to the first qid
			}
			a.count("query_retry")
		case <-pq.notify:
			a.harvest(pq, results)
			if a.cfg.MaxResults > 0 && len(results) >= a.cfg.MaxResults {
				return mapToSlice(results), nil
			}
		}
	}
}

// count tallies a protocol event in the agent's Messages counter and mirrors
// it into the shared observability registry.
func (a *Agent) count(name string) {
	a.Messages.Inc(name, 1)
	obs.Default().Counter("discovery.flood." + name).Inc(1)
}

func (a *Agent) harvest(pq *pendingQuery, into map[string]*svcdesc.Description) {
	pq.mu.Lock()
	for k, d := range pq.matches {
		into[k] = d
	}
	pq.mu.Unlock()
}

func mapToSlice(m map[string]*svcdesc.Description) []*svcdesc.Description {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic ordering for callers and tests
	out := make([]*svcdesc.Description, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Tick gossips the node's own services one hop out (no-op unless Gossip).
func (a *Agent) Tick() {
	if !a.cfg.Gossip {
		return
	}
	descs := a.local.All()
	if len(descs) == 0 {
		return
	}
	payload, err := svcdesc.MarshalDescriptionList(descs)
	if err != nil {
		return
	}
	msg := &floodMsg{Type: floodAdvert, Matches: payload}
	if _, err := a.mux.Broadcast(msg.encode()); err == nil {
		a.count("advert_sent")
	}
}

func seenKey(origin string, qid uint64) string {
	return fmt.Sprintf("%s/%d", origin, qid)
}

func (a *Agent) loop(inbox <-chan netsim.Packet) {
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			return
		case pkt, ok := <-inbox:
			if !ok {
				return
			}
			a.handle(pkt)
		}
	}
}

func (a *Agent) handle(pkt netsim.Packet) {
	msg, err := decodeFloodMsg(pkt.Data)
	if err != nil {
		a.count("garbage")
		return
	}
	switch msg.Type {
	case floodQuery:
		a.handleQuery(msg)
	case floodReply:
		a.handleReply(msg)
	case floodAdvert:
		a.handleAdvert(msg)
	default:
		a.count("garbage")
	}
}

func (a *Agent) handleQuery(msg *floodMsg) {
	a.count("query_recv")
	key := seenKey(msg.Origin, msg.QID)
	a.mu.Lock()
	if a.seen[key] {
		a.mu.Unlock()
		return
	}
	a.seen[key] = true
	a.mu.Unlock()

	// Continue the trace the envelope carries: this node's handling is a
	// child of the sender's span, and stays ambient while we reply and
	// forward so the radio hops nest beneath it. Untraced queries stay
	// untraced — no root span per handled flood.
	var sp *trace.Span
	if ctx := msg.traceContext(); ctx.Valid() {
		sp = a.traceRef.Get().StartSpan("flood.handle_query", ctx)
		sp.SetAttr("origin", msg.Origin)
	}
	release := sp.Activate()
	defer func() {
		release()
		sp.Finish()
	}()

	q, err := svcdesc.UnmarshalQuery(msg.Query)
	if err != nil {
		sp.SetError(err)
		return
	}
	if matches, _ := a.local.Lookup(q); len(matches) > 0 {
		payload, err := svcdesc.MarshalDescriptionList(matches)
		if err == nil && len(msg.Path) > 0 {
			reply := &floodMsg{
				Type:    floodReply,
				QID:     msg.QID,
				Origin:  msg.Origin,
				Path:    msg.Path,
				Matches: payload,
			}
			reply.setTraceContext(sp.Context())
			parent := netsim.NodeID(msg.Path[len(msg.Path)-1])
			if err := a.mux.Send(parent, reply.encode()); err == nil {
				a.count("reply_sent")
			}
		}
	}

	if msg.TTL > 1 {
		fwd := *msg
		fwd.TTL--
		fwd.Path = append(append([]string(nil), msg.Path...), string(a.mux.ID()))
		// Re-stamp the forwarded copy so the next hop parents under this
		// node's span, not the origin's — the tree follows the flood path.
		fwd.setTraceContext(sp.Context())
		if _, err := a.mux.Broadcast(fwd.encode()); err == nil {
			a.count("query_fwd")
		}
	}
}

func (a *Agent) handleReply(msg *floodMsg) {
	a.count("reply_recv")
	if len(msg.Path) == 0 || msg.Path[len(msg.Path)-1] != string(a.mux.ID()) {
		return // not addressed to us at this stage
	}
	var sp *trace.Span
	if ctx := msg.traceContext(); ctx.Valid() {
		sp = a.traceRef.Get().StartSpan("flood.handle_reply", ctx)
		sp.SetAttr("origin", msg.Origin)
	}
	release := sp.Activate()
	defer func() {
		release()
		sp.Finish()
	}()
	remaining := msg.Path[:len(msg.Path)-1]
	if len(remaining) == 0 {
		// We are the origin: deliver to the pending query.
		a.deliverReply(msg)
		return
	}
	fwd := *msg
	fwd.Path = append([]string(nil), remaining...)
	fwd.setTraceContext(sp.Context())
	next := netsim.NodeID(remaining[len(remaining)-1])
	if err := a.mux.Send(next, fwd.encode()); err == nil {
		a.count("reply_fwd")
	}
}

func (a *Agent) deliverReply(msg *floodMsg) {
	if msg.Origin != string(a.mux.ID()) {
		return
	}
	a.mu.Lock()
	pq := a.pending[msg.QID]
	a.mu.Unlock()
	if pq == nil {
		return // query already completed
	}
	descs, err := svcdesc.UnmarshalDescriptionList(msg.Matches)
	if err != nil {
		return
	}
	pq.mu.Lock()
	for _, d := range descs {
		pq.matches[d.Key()] = d
	}
	pq.mu.Unlock()
	select {
	case pq.notify <- struct{}{}:
	default:
	}
}

func (a *Agent) handleAdvert(msg *floodMsg) {
	a.count("advert_recv")
	descs, err := svcdesc.UnmarshalDescriptionList(msg.Matches)
	if err != nil {
		return
	}
	for _, d := range descs {
		// Cache under the gossip TTL regardless of the supplier's own lease.
		d.TTL = a.cfg.CacheTTL
		_ = a.cache.Register(d)
	}
}
