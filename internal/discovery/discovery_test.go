package discovery

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

var epoch = time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)

func desc(provider, name string) *svcdesc.Description {
	return &svcdesc.Description{
		Name:        name,
		Provider:    provider,
		Reliability: 0.9,
		PowerLevel:  1.0,
		Attributes:  map[string]string{"unit": "mmHg"},
	}
}

func TestStoreRegisterLookup(t *testing.T) {
	s := NewStore(nil, 0)
	if err := s.Register(desc("n1", "sensor/bp")); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(desc("n2", "printer")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(&svcdesc.Query{Name: "sensor/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Provider != "n1" {
		t.Fatalf("Lookup = %+v", got)
	}
	all, _ := s.Lookup(&svcdesc.Query{})
	if len(all) != 2 {
		t.Fatalf("wildcard lookup = %d", len(all))
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore(nil, 0)
	if err := s.Register(&svcdesc.Description{}); err == nil {
		t.Fatal("invalid description registered")
	}
}

func TestStoreLookupReturnsClones(t *testing.T) {
	s := NewStore(nil, 0)
	if err := s.Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Lookup(&svcdesc.Query{})
	got[0].Attributes["unit"] = "tampered"
	again, _ := s.Lookup(&svcdesc.Query{})
	if again[0].Attributes["unit"] != "mmHg" {
		t.Fatal("lookup exposed internal state")
	}
}

func TestStoreRegisterClonesInput(t *testing.T) {
	s := NewStore(nil, 0)
	d := desc("n1", "svc")
	if err := s.Register(d); err != nil {
		t.Fatal(err)
	}
	d.Attributes["unit"] = "tampered"
	got, _ := s.Lookup(&svcdesc.Query{})
	if got[0].Attributes["unit"] != "mmHg" {
		t.Fatal("store shares caller's description")
	}
}

func TestStoreUnregister(t *testing.T) {
	s := NewStore(nil, 0)
	d := desc("n1", "svc")
	if err := s.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister(d.Key()); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister(d.Key()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second unregister: %v", err)
	}
	got, _ := s.Lookup(&svcdesc.Query{})
	if len(got) != 0 {
		t.Fatal("entry survived unregister")
	}
}

func TestStoreExpiryAndRenew(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	s := NewStore(clk, 10*time.Second)
	d := desc("n1", "svc")
	if err := s.Register(d); err != nil {
		t.Fatal(err)
	}

	clk.Advance(9 * time.Second)
	if got, _ := s.Lookup(&svcdesc.Query{}); len(got) != 1 {
		t.Fatal("entry expired early")
	}
	if err := s.Renew(d.Key()); err != nil {
		t.Fatal(err)
	}
	clk.Advance(9 * time.Second)
	if got, _ := s.Lookup(&svcdesc.Query{}); len(got) != 1 {
		t.Fatal("renewed entry expired early")
	}
	clk.Advance(2 * time.Second)
	if got, _ := s.Lookup(&svcdesc.Query{}); len(got) != 0 {
		t.Fatal("expired entry still matches")
	}
	if err := s.Renew(d.Key()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renew of expired entry: %v", err)
	}
}

func TestStoreCustomTTL(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	s := NewStore(clk, time.Minute)
	d := desc("n1", "svc")
	d.TTL = time.Second
	if err := s.Register(d); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if got, _ := s.Lookup(&svcdesc.Query{}); len(got) != 0 {
		t.Fatal("per-description TTL ignored")
	}
}

func TestStoreSweep(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	s := NewStore(clk, time.Second)
	for i := 0; i < 3; i++ {
		if err := s.Register(desc(fmt.Sprintf("n%d", i), "svc")); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(2 * time.Second)
	if s.Len() != 3 {
		t.Fatal("entries physically removed before sweep")
	}
	if removed := s.Sweep(); removed != 3 {
		t.Fatalf("Sweep removed %d, want 3", removed)
	}
	if s.Len() != 0 {
		t.Fatal("entries survive sweep")
	}
	if s.Sweep() != 0 {
		t.Fatal("second sweep removed something")
	}
}

func TestStoreVersionBumps(t *testing.T) {
	s := NewStore(nil, 0)
	v0 := s.Version()
	_ = s.Register(desc("n1", "svc"))
	if s.Version() == v0 {
		t.Fatal("version not bumped on register")
	}
	v1 := s.Version()
	_ = s.Unregister(desc("n1", "svc").Key())
	if s.Version() == v1 {
		t.Fatal("version not bumped on unregister")
	}
}

func TestStoreReRegisterRenews(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	s := NewStore(clk, 10*time.Second)
	d := desc("n1", "svc")
	_ = s.Register(d)
	clk.Advance(8 * time.Second)
	_ = s.Register(d) // re-register refreshes the lease
	clk.Advance(8 * time.Second)
	if got, _ := s.Lookup(&svcdesc.Query{}); len(got) != 1 {
		t.Fatal("re-registration did not refresh lease")
	}
}

// --- centralized organization ---

func newCentralPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	fabric := transport.NewFabric()
	st := transport.NewMem(fabric)
	l, err := st.Listen("registry")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore(nil, 0), l)
	cli := NewClient(transport.NewMem(fabric), "registry")
	t.Cleanup(func() {
		_ = cli.Close()
		_ = srv.Close()
		_ = st.Close()
	})
	return srv, cli
}

func TestCentralRegisterLookup(t *testing.T) {
	_, cli := newCentralPair(t)
	if err := cli.Register(desc("n1", "sensor/bp")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Register(desc("n2", "printer")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Lookup(&svcdesc.Query{Name: "printer"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Provider != "n2" {
		t.Fatalf("Lookup = %+v", got)
	}
	if got[0].Attributes["unit"] != "mmHg" {
		t.Fatal("attributes lost over the wire")
	}
}

func TestCentralUnregisterRenew(t *testing.T) {
	_, cli := newCentralPair(t)
	d := desc("n1", "svc")
	if err := cli.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := cli.Renew(d.Key()); err != nil {
		t.Fatal(err)
	}
	if err := cli.Unregister(d.Key()); err != nil {
		t.Fatal(err)
	}
	if err := cli.Unregister(d.Key()); err == nil {
		t.Fatal("double unregister accepted")
	}
	if err := cli.Renew("bogus|key|x"); err == nil {
		t.Fatal("renew of unknown key accepted")
	}
}

func TestCentralLookupEmpty(t *testing.T) {
	_, cli := newCentralPair(t)
	got, err := cli.Lookup(&svcdesc.Query{Name: "nothing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d", len(got))
	}
}

func TestCentralInvalidRegister(t *testing.T) {
	_, cli := newCentralPair(t)
	if err := cli.Register(&svcdesc.Description{}); err == nil {
		t.Fatal("invalid description accepted")
	}
}

func TestCentralMessageCounters(t *testing.T) {
	_, cli := newCentralPair(t)
	_ = cli.Register(desc("n1", "svc"))
	if _, err := cli.Lookup(&svcdesc.Query{}); err != nil {
		t.Fatal(err)
	}
	snap := cli.Messages.Snapshot()
	if snap["sent"] != 2 || snap["received"] != 2 {
		t.Fatalf("counters = %v", snap)
	}
}

func TestCentralClientClosed(t *testing.T) {
	_, cli := newCentralPair(t)
	_ = cli.Close()
	if _, err := cli.Lookup(&svcdesc.Query{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestCentralServerCountsRequests(t *testing.T) {
	srv, cli := newCentralPair(t)
	_ = cli.Register(desc("n1", "svc"))
	_, _ = cli.Lookup(&svcdesc.Query{})
	snap := srv.Requests.Snapshot()
	if snap[TopicRegister] != 1 || snap[TopicLookup] != 1 {
		t.Fatalf("server counters = %v", snap)
	}
}

func TestCentralDialFailure(t *testing.T) {
	cli := NewClient(transport.NewMem(transport.NewFabric()), "nowhere")
	defer cli.Close()
	if _, err := cli.Lookup(&svcdesc.Query{}); err == nil {
		t.Fatal("lookup against missing registry succeeded")
	}
}

// --- distributed (flood) organization ---

// floodField builds n nodes in a line with spacing 10 and range 12, each
// with a mux and an agent.
func floodField(t *testing.T, n int, cfg AgentConfig) (*netsim.Network, []*Agent) {
	t.Helper()
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	t.Cleanup(net.Close)
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		id := netsim.NodeID(fmt.Sprintf("n%d", i))
		if err := net.AddNode(id, netsim.Position{X: float64(i) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(fmt.Sprintf("n%d", i))
		mux, err := netmux.New(net, id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mux.Close)
		a := NewAgent(mux, cfg)
		t.Cleanup(func() { _ = a.Close() })
		agents[i] = a
	}
	return net, agents
}

func TestFloodLookupAcrossHops(t *testing.T) {
	_, agents := floodField(t, 5, AgentConfig{CollectWindow: 200 * time.Millisecond})
	d := desc("n4", "sensor/bp")
	if err := agents[4].Register(d); err != nil {
		t.Fatal(err)
	}
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "sensor/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Provider != "n4" {
		t.Fatalf("Lookup = %+v", got)
	}
}

func TestFloodLookupLocalIsFree(t *testing.T) {
	_, agents := floodField(t, 2, AgentConfig{CollectWindow: 50 * time.Millisecond})
	if err := agents[0].Register(desc("n0", "svc")); err != nil {
		t.Fatal(err)
	}
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("local lookup = %v, %v", got, err)
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	_, agents := floodField(t, 6, AgentConfig{QueryTTL: 2, CollectWindow: 150 * time.Millisecond})
	if err := agents[5].Register(desc("n5", "far-svc")); err != nil {
		t.Fatal(err)
	}
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "far-svc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("TTL 2 should not reach 5 hops away, got %+v", got)
	}
}

func TestFloodMultipleSuppliers(t *testing.T) {
	_, agents := floodField(t, 4, AgentConfig{CollectWindow: 200 * time.Millisecond})
	for i := 1; i < 4; i++ {
		if err := agents[i].Register(desc(fmt.Sprintf("n%d", i), "svc")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("found %d suppliers, want 3", len(got))
	}
}

func TestFloodMaxResultsEndsEarly(t *testing.T) {
	_, agents := floodField(t, 3, AgentConfig{CollectWindow: 5 * time.Second, MaxResults: 1})
	if err := agents[1].Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("MaxResults did not end collection early")
	}
}

func TestFloodGossipCacheAnswers(t *testing.T) {
	_, agents := floodField(t, 2, AgentConfig{
		Gossip:        true,
		CollectWindow: 100 * time.Millisecond,
		CacheTTL:      time.Minute,
	})
	if err := agents[1].Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	agents[1].Tick() // gossip n1's services to n0

	deadline := time.Now().Add(5 * time.Second)
	for agents[0].CacheLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gossip never reached the neighbour cache")
		}
		time.Sleep(time.Millisecond)
	}
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("cache lookup = %v, %v", got, err)
	}
	if agents[0].Messages.Get("query_sent") != 0 {
		t.Fatal("cache hit still flooded a query")
	}
}

func TestFloodAgentClosed(t *testing.T) {
	_, agents := floodField(t, 2, AgentConfig{})
	_ = agents[0].Close()
	_ = agents[0].Close() // idempotent
	if _, err := agents[0].Lookup(&svcdesc.Query{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFloodDedupSuppression(t *testing.T) {
	// Dense clique: the query reaches every agent directly and via
	// forwarders; each agent must process it exactly once.
	net := netsim.New(netsim.Config{Range: 100, Unlimited: true})
	t.Cleanup(net.Close)
	var agents []*Agent
	for i := 0; i < 4; i++ {
		id := netsim.NodeID(fmt.Sprintf("n%d", i))
		if err := net.AddNode(id, netsim.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		mux, err := netmux.New(net, netsim.NodeID(fmt.Sprintf("n%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mux.Close)
		a := NewAgent(mux, AgentConfig{CollectWindow: 150 * time.Millisecond})
		t.Cleanup(func() { _ = a.Close() })
		agents = append(agents, a)
	}
	if err := agents[3].Register(desc("n3", "svc")); err != nil {
		t.Fatal(err)
	}
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	// n3 received the query from n0 directly and from n1/n2 forwards, but
	// must have replied exactly once.
	if sent := agents[3].Messages.Get("reply_sent"); sent != 1 {
		t.Fatalf("n3 replied %d times, want 1", sent)
	}
}

// --- hybrid (mirrored) organization ---

// failingRegistry always errors (a crashed mirror).
type failingRegistry struct{}

func (failingRegistry) Register(*svcdesc.Description) error { return errors.New("mirror down") }
func (failingRegistry) Unregister(string) error             { return errors.New("mirror down") }
func (failingRegistry) Renew(string) error                  { return errors.New("mirror down") }
func (failingRegistry) Lookup(*svcdesc.Query) ([]*svcdesc.Description, error) {
	return nil, errors.New("mirror down")
}
func (failingRegistry) Close() error { return nil }

func TestMirroredNeedsMirror(t *testing.T) {
	if _, err := NewMirrored(); err == nil {
		t.Fatal("zero mirrors accepted")
	}
}

func TestMirroredWritesToAll(t *testing.T) {
	s1, s2 := NewStore(nil, 0), NewStore(nil, 0)
	m, err := NewMirrored(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 1 || s2.Len() != 1 {
		t.Fatalf("mirrors have %d/%d entries", s1.Len(), s2.Len())
	}
}

func TestMirroredSurvivesFailedMirror(t *testing.T) {
	healthy := NewStore(nil, 0)
	m, err := NewMirrored(failingRegistry{}, healthy)
	if err != nil {
		t.Fatal(err)
	}
	d := desc("n1", "svc")
	if err := m.Register(d); err != nil {
		t.Fatalf("register with one healthy mirror: %v", err)
	}
	got, err := m.Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if err := m.Unregister(d.Key()); err != nil {
		t.Fatal(err)
	}
}

func TestMirroredAllFailed(t *testing.T) {
	m, err := NewMirrored(failingRegistry{}, failingRegistry{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(desc("n1", "svc")); err == nil {
		t.Fatal("register with all mirrors down succeeded")
	}
	if _, err := m.Lookup(&svcdesc.Query{}); err == nil {
		t.Fatal("lookup with all mirrors down succeeded")
	}
}

func TestMirroredRoundRobin(t *testing.T) {
	s1, s2 := NewStore(nil, 0), NewStore(nil, 0)
	m, _ := NewMirrored(s1, s2)
	_ = m.Register(desc("n1", "svc"))
	for i := 0; i < 4; i++ {
		if _, err := m.Lookup(&svcdesc.Query{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Ops.Snapshot()
	if snap["lookup_ok_0"] != 2 || snap["lookup_ok_1"] != 2 {
		t.Fatalf("round robin uneven: %v", snap)
	}
}

// --- adaptive organization ---

func adaptiveFixture(t *testing.T, central Registry, density int, policy Policy) (*Adaptive, []*Agent) {
	t.Helper()
	_, agents := floodField(t, 3, AgentConfig{CollectWindow: 150 * time.Millisecond})
	a := NewAdaptive(central, agents[0], func() int { return density }, policy, nil)
	return a, agents
}

func TestAdaptivePrefersCentralWhenDense(t *testing.T) {
	srv, cli := newCentralPair(t)
	_ = srv
	ad, _ := adaptiveFixture(t, cli, 10, DensityPolicy(6))
	if err := ad.Register(desc("n0", "svc")); err != nil {
		t.Fatal(err)
	}
	got, err := ad.Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if ad.Decisions.Get(string(ModeCentral)) != 1 {
		t.Fatalf("decisions = %v", ad.Decisions.Snapshot())
	}
}

func TestAdaptiveFloodsWhenSparse(t *testing.T) {
	_, cli := newCentralPair(t)
	ad, agents := adaptiveFixture(t, cli, 1, DensityPolicy(6))
	if err := agents[1].Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	got, err := ad.Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if ad.Decisions.Get(string(ModeFlood)) != 1 {
		t.Fatalf("decisions = %v", ad.Decisions.Snapshot())
	}
}

func TestAdaptiveFailsOverToFlood(t *testing.T) {
	ad, agents := adaptiveFixture(t, failingRegistry{}, 10, DensityPolicy(6))
	if err := agents[1].Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	got, err := ad.Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	snap := ad.Decisions.Snapshot()
	if snap["central_failover"] != 1 || snap[string(ModeFlood)] != 1 {
		t.Fatalf("decisions = %v", snap)
	}
	// Health is now false: next lookup goes straight to flood.
	if _, err := ad.Lookup(&svcdesc.Query{Name: "svc"}); err != nil {
		t.Fatal(err)
	}
	if snap := ad.Decisions.Snapshot(); snap["central_failover"] != 1 {
		t.Fatalf("unhealthy central retried immediately: %v", snap)
	}
}

func TestAdaptiveBackfillsEmptyCentralFromFlood(t *testing.T) {
	// The central registry is healthy but knows nothing (its leases expired);
	// the supplier is alive and flood-reachable. The lookup must backfill.
	_, cli := newCentralPair(t)
	ad, agents := adaptiveFixture(t, cli, 10, DensityPolicy(6))
	if err := agents[1].Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	got, err := ad.Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v (empty central should backfill from flood)", got, err)
	}
	snap := ad.Decisions.Snapshot()
	if snap["central_empty_flood"] != 1 {
		t.Fatalf("decisions = %v", snap)
	}
	// Central stays marked healthy: emptiness is an answer, not a failure.
	if _, err := ad.Lookup(&svcdesc.Query{Name: "no-such"}); err != nil {
		t.Fatal(err)
	}
	if snap := ad.Decisions.Snapshot(); snap["central_failover"] != 0 {
		t.Fatalf("empty central treated as failure: %v", snap)
	}
}

func TestAdaptiveWithoutCentral(t *testing.T) {
	ad, agents := adaptiveFixture(t, nil, 10, DensityPolicy(1))
	if err := agents[0].Register(desc("n0", "svc")); err != nil {
		t.Fatal(err)
	}
	got, err := ad.Lookup(&svcdesc.Query{Name: "svc"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
}

func TestAdaptivePinnedPolicies(t *testing.T) {
	if AlwaysCentral(Env{}) != ModeCentral || AlwaysFlood(Env{}) != ModeFlood {
		t.Fatal("pinned policies wrong")
	}
	pol := DensityPolicy(5)
	if pol(Env{Density: 5, CentralHealthy: true}) != ModeCentral {
		t.Fatal("dense healthy should pick central")
	}
	if pol(Env{Density: 5, CentralHealthy: false}) != ModeFlood {
		t.Fatal("unhealthy central should flood")
	}
	if pol(Env{Density: 2, CentralHealthy: true}) != ModeFlood {
		t.Fatal("sparse should flood")
	}
}

func TestFloodMsgGarbage(t *testing.T) {
	if _, err := decodeFloodMsg(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := decodeFloodMsg([]byte{ProtoDiscovery, '{'}); err == nil {
		t.Fatal("truncated json decoded")
	}
	if _, err := decodeFloodMsg([]byte{0x00, '{', '}'}); err == nil {
		t.Fatal("wrong magic decoded")
	}
}

func TestFloodMsgRoundTrip(t *testing.T) {
	in := &floodMsg{Type: floodQuery, QID: 9, Origin: "n0", TTL: 3, Path: []string{"n0", "n1"}, Query: []byte("<query/>")}
	out, err := decodeFloodMsg(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.QID != in.QID || out.Origin != in.Origin ||
		out.TTL != in.TTL || len(out.Path) != 2 || string(out.Query) != "<query/>" {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestUnknownTopicError(t *testing.T) {
	fabric := transport.NewFabric()
	st := transport.NewMem(fabric)
	l, err := st.Listen("registry")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore(nil, 0), l)
	defer srv.Close()
	conn, err := transport.NewMem(fabric).Dial("registry")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&wire.Message{ID: 1, Kind: wire.KindControl, Topic: "disc.bogus"}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != wire.KindError || !strings.Contains(string(reply.Payload), "unknown topic") {
		t.Fatalf("reply = %+v", reply)
	}
	if snap := srv.Requests.Snapshot(); snap["disc.bogus"] != 1 {
		t.Fatalf("unknown topic not counted: %v", snap)
	}
}

func TestMirroredReconcile(t *testing.T) {
	s1, s2 := NewStore(nil, 0), NewStore(nil, 0)
	m, err := NewMirrored(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	// Divergence: one entry only in s1, one only in s2, one in both.
	if err := s1.Register(desc("only-1", "svc")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Register(desc("only-2", "svc")); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(desc("both", "svc")); err != nil {
		t.Fatal(err)
	}
	repaired, err := m.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 2 {
		t.Fatalf("repaired = %d, want 2", repaired)
	}
	if s1.Len() != 3 || s2.Len() != 3 {
		t.Fatalf("mirror sizes %d/%d, want 3/3", s1.Len(), s2.Len())
	}
	// Converged: a second round repairs nothing.
	repaired, err = m.Reconcile()
	if err != nil || repaired != 0 {
		t.Fatalf("second reconcile = %d, %v", repaired, err)
	}
}

func TestMirroredReconcileSkipsDownMirror(t *testing.T) {
	healthy := NewStore(nil, 0)
	m, err := NewMirrored(healthy, failingRegistry{})
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Register(desc("n1", "svc")); err != nil {
		t.Fatal(err)
	}
	repaired, err := m.Reconcile()
	if err != nil || repaired != 0 {
		t.Fatalf("reconcile with down mirror = %d, %v", repaired, err)
	}
	if m.Ops.Get("reconcile_skip_1") != 1 {
		t.Fatalf("ops = %v", m.Ops.Snapshot())
	}
}

// TestFloodLookupUnderLoss: the distributed organization's redundancy (every
// neighbour rebroadcasts) makes queries survive a lossy radio; repeated
// lookups converge on finding the service even at 20% per-packet loss.
func TestFloodLookupUnderLoss(t *testing.T) {
	net := netsim.New(netsim.Config{Range: 100, LossRate: 0.2, Unlimited: true, Seed: 77})
	t.Cleanup(net.Close)
	// A dense clique of 6 nodes: many redundant paths.
	var agents []*Agent
	for i := 0; i < 6; i++ {
		id := netsim.NodeID(fmt.Sprintf("n%d", i))
		if err := net.AddNode(id, netsim.Position{X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		mux, err := netmux.New(net, netsim.NodeID(fmt.Sprintf("n%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mux.Close)
		a := NewAgent(mux, AgentConfig{CollectWindow: 300 * time.Millisecond, MaxResults: 1})
		t.Cleanup(func() { _ = a.Close() })
		agents = append(agents, a)
	}
	if err := agents[5].Register(desc("n5", "lossy-svc")); err != nil {
		t.Fatal(err)
	}
	// A real client retries a failed discovery; with one retry the find
	// probability under 20% loss is very high. Demand a clear majority so
	// the test stays robust to seed and scheduler drift.
	lookupWithRetry := func() bool {
		for attempt := 0; attempt < 2; attempt++ {
			got, err := agents[0].Lookup(&svcdesc.Query{Name: "lossy-svc"})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 1 {
				return true
			}
		}
		return false
	}
	found := 0
	const tries = 8
	for i := 0; i < tries; i++ {
		if lookupWithRetry() {
			found++
		}
	}
	if found < 6 {
		t.Fatalf("found only %d/%d under 20%% loss (with retry)", found, tries)
	}
}

// TestFloodQueryRetry drives the QueryRetry knob deterministically: the
// first flood is swallowed by total packet loss, the retry (halfway through
// the collect window, on a fresh QID) goes out after the radio heals, and
// the lookup still succeeds within the original window.
func TestFloodQueryRetry(t *testing.T) {
	clk := simtime.NewVirtual(epoch)
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true, Clock: clk})
	t.Cleanup(net.Close)
	ids := []netsim.NodeID{"n0", "n1"}
	for i, id := range ids {
		if err := net.AddNode(id, netsim.Position{X: float64(i) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	agents := make([]*Agent, len(ids))
	for i, id := range ids {
		mux, err := netmux.New(net, id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mux.Close)
		a := NewAgent(mux, AgentConfig{
			CollectWindow: time.Second,
			MaxResults:    1,
			QueryRetry:    true,
			Clock:         clk,
		})
		t.Cleanup(func() { _ = a.Close() })
		agents[i] = a
	}
	if err := agents[1].Register(desc("n1", "sensor/hr")); err != nil {
		t.Fatal(err)
	}

	net.SetLossRate(1) // the first flood vanishes into the ether
	type lookupResult struct {
		descs []*svcdesc.Description
		err   error
	}
	done := make(chan lookupResult, 1)
	go func() {
		descs, err := agents[0].Lookup(&svcdesc.Query{Name: "sensor/hr"})
		done <- lookupResult{descs, err}
	}()

	// The lookup parks two timers: the collect-window deadline and the
	// half-window retry.
	waitTimers := time.Now().Add(5 * time.Second)
	for clk.Pending() < 2 {
		if time.Now().After(waitTimers) {
			t.Fatalf("lookup never parked its timers (pending=%d)", clk.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	net.SetLossRate(0) // radio heals before the retry fires
	clk.Advance(500 * time.Millisecond)

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.descs) != 1 || r.descs[0].Provider != "n1" {
			t.Fatalf("retry lookup results = %v", r.descs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lookup never returned after retry")
	}
	if got := agents[0].Messages.Get("query_retry"); got != 1 {
		t.Fatalf("query_retry = %d, want 1", got)
	}
	if got := agents[0].Messages.Get("query_sent"); got != 1 {
		t.Fatalf("query_sent = %d, want 1 (retries are counted separately)", got)
	}
}

// TestFloodTracePropagatesAcrossNetmuxHop pins cross-node trace propagation
// through the flood protocol's JSON envelope: a traced Lookup on the origin
// and traced agents on the remotes must produce one connected trace — every
// remote handle_query/handle_reply span shares the origin's trace ID, and
// parent links follow the flood path back to the origin's round span.
func TestFloodTracePropagatesAcrossNetmuxHop(t *testing.T) {
	col := trace.NewCollector(256)
	tracers := make([]*trace.Tracer, 3)
	for i := range tracers {
		tracers[i] = trace.New(trace.Options{
			Name:      fmt.Sprintf("n%d", i),
			Collector: col,
			Seed:      int64(i + 1),
		})
	}
	_, agents := floodField(t, 3, AgentConfig{CollectWindow: 200 * time.Millisecond})
	for i, a := range agents {
		a.SetTracer(tracers[i])
	}
	if err := agents[2].Register(desc("n2", "sensor/bp")); err != nil {
		t.Fatal(err)
	}
	got, err := agents[0].Lookup(&svcdesc.Query{Name: "sensor/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Lookup = %+v", got)
	}

	spans := col.Spans()
	byID := make(map[uint64]trace.Span, len(spans))
	var lookup *trace.Span
	for i := range spans {
		byID[spans[i].SpanID] = spans[i]
		if spans[i].Name == "flood.lookup" {
			lookup = &spans[i]
		}
	}
	if lookup == nil {
		t.Fatalf("no flood.lookup span; got %d spans", len(spans))
	}
	remoteHandles := 0
	for _, sp := range spans {
		if sp.TraceID != lookup.TraceID {
			t.Errorf("span %s on %s has trace %x, want %x", sp.Name, sp.Node, sp.TraceID, lookup.TraceID)
			continue
		}
		// Every non-root span's parent must exist in the collected set.
		if sp.ParentID != 0 {
			if _, ok := byID[sp.ParentID]; !ok && sp.SpanID != lookup.SpanID {
				t.Errorf("span %s on %s: parent %x not in trace", sp.Name, sp.Node, sp.ParentID)
			}
		}
		if sp.Name == "flood.handle_query" && sp.Node != "n0" {
			remoteHandles++
		}
	}
	if remoteHandles == 0 {
		t.Error("no remote flood.handle_query spans — trace context did not cross the netmux hop")
	}
	// The remote supplier (n2, two hops out) must appear in the trace.
	seenN2 := false
	for _, sp := range spans {
		if sp.Node == "n2" {
			seenN2 = true
		}
	}
	if !seenN2 {
		t.Error("supplier node n2 recorded no spans in the lookup trace")
	}
}

func TestCentralRegisterBatch(t *testing.T) {
	_, cli := newCentralPair(t)
	var ds []*svcdesc.Description
	for i := 0; i < 12; i++ {
		ds = append(ds, desc(fmt.Sprintf("n%d", i), fmt.Sprintf("svc/%d", i)))
	}
	if err := cli.RegisterBatch(ds); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Lookup(&svcdesc.Query{Name: "svc/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("lookup after batch = %d descriptions, want %d", len(got), len(ds))
	}
	if err := cli.RegisterBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	// A marshal failure surfaces and stops the batch.
	bad := []*svcdesc.Description{desc("ok", "svc/ok"), {}}
	if err := cli.RegisterBatch(bad); err == nil {
		t.Fatal("invalid description accepted in batch")
	}
}
