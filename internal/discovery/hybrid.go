package discovery

import (
	"errors"
	"fmt"
	"sync/atomic"

	"ndsm/internal/stats"
	"ndsm/internal/svcdesc"
)

// Mirrored is the hybrid organization (§3.3's "mirroring approaches ... to
// further increase scalability"): writes go to every mirror (succeeding when
// at least one accepts), reads rotate across mirrors and fail over, so the
// registry survives mirror crashes and spreads query load.
type Mirrored struct {
	mirrors []Registry
	next    atomic.Uint64

	// Ops counts per-mirror successes and failures.
	Ops stats.Counter
}

var _ Registry = (*Mirrored)(nil)

// NewMirrored wraps the given mirrors. At least one is required.
func NewMirrored(mirrors ...Registry) (*Mirrored, error) {
	if len(mirrors) == 0 {
		return nil, errors.New("discovery: mirrored registry needs at least one mirror")
	}
	return &Mirrored{mirrors: mirrors}, nil
}

// Register implements Registry: best-effort write to all mirrors; succeeds
// when any accepted.
func (m *Mirrored) Register(d *svcdesc.Description) error {
	return m.writeAll("register", func(r Registry) error { return r.Register(d) })
}

// Unregister implements Registry.
func (m *Mirrored) Unregister(key string) error {
	return m.writeAll("unregister", func(r Registry) error { return r.Unregister(key) })
}

// Renew implements Registry.
func (m *Mirrored) Renew(key string) error {
	return m.writeAll("renew", func(r Registry) error { return r.Renew(key) })
}

func (m *Mirrored) writeAll(op string, f func(Registry) error) error {
	var firstErr error
	okCount := 0
	for i, r := range m.mirrors {
		if err := f(r); err != nil {
			m.Ops.Inc(fmt.Sprintf("%s_fail_%d", op, i), 1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.Ops.Inc(fmt.Sprintf("%s_ok_%d", op, i), 1)
		okCount++
	}
	if okCount == 0 {
		return fmt.Errorf("discovery: all %d mirrors failed %s: %w", len(m.mirrors), op, firstErr)
	}
	return nil
}

// Lookup implements Registry: round-robin with fail-over. The rotation
// spreads load; the fail-over masks crashed mirrors.
func (m *Mirrored) Lookup(q *svcdesc.Query) ([]*svcdesc.Description, error) {
	start := int(m.next.Add(1)) % len(m.mirrors)
	var firstErr error
	for i := 0; i < len(m.mirrors); i++ {
		idx := (start + i) % len(m.mirrors)
		descs, err := m.mirrors[idx].Lookup(q)
		if err != nil {
			m.Ops.Inc(fmt.Sprintf("lookup_fail_%d", idx), 1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.Ops.Inc(fmt.Sprintf("lookup_ok_%d", idx), 1)
		return descs, nil
	}
	return nil, fmt.Errorf("discovery: all %d mirrors failed lookup: %w", len(m.mirrors), firstErr)
}

// Reconcile runs one anti-entropy round: it reads every mirror's full table
// and re-registers each advertisement into the mirrors missing it, so a
// mirror that was down during a registration converges once it returns. It
// returns how many copies were repaired.
func (m *Mirrored) Reconcile() (int, error) {
	type mirrorView struct {
		idx  int
		have map[string]bool
	}
	all := make(map[string]*svcdesc.Description)
	var views []mirrorView
	for i, r := range m.mirrors {
		descs, err := r.Lookup(&svcdesc.Query{})
		if err != nil {
			// A down mirror contributes nothing and receives nothing this
			// round.
			m.Ops.Inc(fmt.Sprintf("reconcile_skip_%d", i), 1)
			continue
		}
		have := make(map[string]bool, len(descs))
		for _, d := range descs {
			have[d.Key()] = true
			if _, ok := all[d.Key()]; !ok {
				all[d.Key()] = d
			}
		}
		views = append(views, mirrorView{idx: i, have: have})
	}
	repaired := 0
	var firstErr error
	for key, d := range all {
		for _, v := range views {
			if v.have[key] {
				continue
			}
			if err := m.mirrors[v.idx].Register(d); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			m.Ops.Inc(fmt.Sprintf("reconcile_copy_%d", v.idx), 1)
			repaired++
		}
	}
	return repaired, firstErr
}

// Close implements Registry, closing every mirror.
func (m *Mirrored) Close() error {
	var firstErr error
	for _, r := range m.mirrors {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
