// End-to-end tracing acceptance: one user-level interact/rpc call, with the
// supplier found through flood discovery over a simulated radio network,
// must yield a single connected causal tree — one trace ID, every span's
// parent present, spans from the consumer, the radio hops, the remote
// discovery handlers, and the rpc server.
package ndsm_test

import (
	"fmt"
	"testing"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/interact/rpc"
	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/svcdesc"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
)

func TestRPCThroughDiscoveryConnectedTraceTree(t *testing.T) {
	// One tracer shared by every component, one collector: the merged
	// timeline of the whole simulated world.
	col := trace.NewCollector(1024)
	tr := trace.New(trace.Options{Name: "world", Collector: col})

	// Radio layer: three nodes in a line, ranges only reach neighbours, so
	// the flood query takes a multi-hop path to the supplier.
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true, Tracer: tr})
	t.Cleanup(net.Close)
	agents := make([]*discovery.Agent, 3)
	for i := range agents {
		id := netsim.NodeID(fmt.Sprintf("n%d", i))
		if err := net.AddNode(id, netsim.Position{X: float64(i) * 10}); err != nil {
			t.Fatal(err)
		}
		mux, err := netmux.New(net, id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mux.Close)
		a := discovery.NewAgent(mux, discovery.AgentConfig{CollectWindow: 200 * time.Millisecond})
		a.SetTracer(tr)
		t.Cleanup(func() { _ = a.Close() })
		agents[i] = a
	}

	// Message layer: the supplier's rpc server on a shared mem fabric; its
	// dialable address doubles as the registered Provider.
	fabric := transport.NewFabric()
	mt := transport.NewMem(fabric)
	t.Cleanup(func() { _ = mt.Close() })
	l, err := mt.Listen("supplier")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(l)
	srv.SetTracer(tr)
	t.Cleanup(func() { _ = srv.Close() })
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	if err := agents[2].Register(&svcdesc.Description{
		Name: "sensor/bp", Provider: "supplier", Reliability: 0.9, PowerLevel: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// The user-level operation: discover, dial, call — all under one root.
	root, done := tr.Scope("user.request")
	if root == nil {
		t.Fatal("no root span")
	}
	descs, err := agents[0].Lookup(&svcdesc.Query{Name: "sensor/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 || descs[0].Provider != "supplier" {
		t.Fatalf("lookup = %+v", descs)
	}
	cli, err := rpc.Dial(transport.NewMem(fabric), descs[0].Provider, nil)
	if err != nil {
		t.Fatal(err)
	}
	cli.SetTracer(tr)
	t.Cleanup(func() { _ = cli.Close() })
	out, err := cli.Call("echo", []byte("ping"), 2*time.Second)
	if err != nil || string(out) != "ping" {
		t.Fatalf("call = %q, %v", out, err)
	}
	done()

	// The tree must be connected: one trace ID across everything, and every
	// non-root parent resolvable within the collected set.
	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	byID := make(map[uint64]trace.Span, len(spans))
	names := map[string]int{}
	for _, sp := range spans {
		byID[sp.SpanID] = sp
		names[sp.Name]++
	}
	rootCtx := root.Context()
	for _, sp := range spans {
		if sp.TraceID != rootCtx.TraceID {
			t.Errorf("span %s has trace %x, want the single trace %x", sp.Name, sp.TraceID, rootCtx.TraceID)
		}
		if sp.SpanID == rootCtx.SpanID {
			if sp.ParentID != 0 {
				t.Errorf("root span has parent %x", sp.ParentID)
			}
			continue
		}
		if sp.ParentID == 0 {
			t.Errorf("span %s is an orphan root inside the user trace", sp.Name)
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			t.Errorf("span %s: parent %x missing from the collected tree", sp.Name, sp.ParentID)
		}
	}
	// The tree must cover every layer the call crossed.
	for _, want := range []string{
		"user.request",       // the root
		"flood.lookup",       // consumer-side discovery
		"flood.round",        // a flood query round
		"radio.broadcast",    // netsim broadcast hop
		"radio.send",         // netsim unicast reply hop
		"flood.handle_query", // remote discovery handler
		"rpc.call",           // rpc client
		"rpc.serve",          // rpc server, parented across the wire
	} {
		if names[want] == 0 {
			t.Errorf("no %q span in the tree; got %v", want, names)
		}
	}
	// And the rpc server span must hang directly under the rpc client span.
	for _, sp := range spans {
		if sp.Name != "rpc.serve" {
			continue
		}
		parent, ok := byID[sp.ParentID]
		if !ok || parent.Name != "rpc.call" {
			t.Errorf("rpc.serve parent = %+v, want the rpc.call span", parent)
		}
	}
}
