module ndsm

go 1.22
