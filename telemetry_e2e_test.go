// End-to-end telemetry acceptance: a three-node simulated field publishes
// per-node metrics in-band — reports are ordinary requests over the same
// simulated radio the workload uses — into an aggregator hosted on one of
// the nodes' existing listeners. The merged cluster view must carry every
// node's request series with sim-time-monotone timestamps, and killing a
// node must flip it fresh→stale within the detection bound.
package ndsm_test

import (
	"testing"
	"time"

	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/endpoint"
	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/qos"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/telemetry"
	"ndsm/internal/transport"
)

func TestTelemetryClusterE2E(t *testing.T) {
	const publishEvery = time.Second // virtual
	const staleAfter = 5 * publishEvery / 2

	// Radio layer: three nodes all in range (the plane under test is
	// telemetry, not multi-hop routing).
	net := netsim.New(netsim.Config{Range: 500, InboxSize: 1024, Unlimited: true})
	t.Cleanup(net.Close)

	// Discovery is a shared in-process store; requests and telemetry go over
	// the simulated radio via each node's sim transport.
	store := discovery.NewStore(nil, 0)
	// Telemetry runs on a virtual clock: publish timestamps and freshness
	// verdicts land on a deterministic sim timeline. The transports
	// underneath still run wall time.
	vclock := simtime.NewVirtual(time.Unix(0, 0))

	ids := []string{"n0", "n1", "n2"}
	nodes := make(map[string]*core.Node, len(ids))
	pubs := make(map[string]*telemetry.Publisher, len(ids))
	var agg *telemetry.Aggregator
	for i, id := range ids {
		if err := net.AddNode(netsim.NodeID(id), netsim.Position{X: float64(i) * 10}); err != nil {
			t.Fatal(err)
		}
		tr, err := transport.NewSim(net, netsim.NodeID(id), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = tr.Close() })
		node, err := core.NewNode(core.Config{
			Name:      id,
			Transport: tr,
			Registry:  store,
			// A per-node registry is what gives the aggregator per-node
			// series instead of one merged blur.
			Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		nodes[id] = node
		if err := node.Serve(&svcdesc.Description{
			Name: "svc/" + id, Reliability: 0.9, PowerLevel: 1,
		}, func(p []byte) ([]byte, error) { return append([]byte(id+":"), p...), nil }); err != nil {
			t.Fatal(err)
		}

		if id == "n0" {
			// The aggregator rides n0's existing listener: no new port, no
			// side protocol — telemetry.Topic is just another topic.
			agg = telemetry.NewAggregator(telemetry.AggregatorOptions{
				Clock:      vclock,
				StaleAfter: staleAfter,
				Registry:   obs.NewRegistry(),
			})
			node.HandleTopic(telemetry.Topic, agg.Handler())
		}

		caller, err := endpoint.NewCaller(tr, "n0", endpoint.CallerOptions{Redial: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = caller.Close() })
		pub, err := telemetry.NewPublisher(telemetry.PublisherOptions{
			Node:     id,
			Registry: node.Metrics(),
			Clock:    vclock,
			Send:     telemetry.CallerSend(caller, id, "n0", 2*time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = pub.Close() })
		pubs[id] = pub
	}

	// Workload ring: each node binds its successor's service, so every node
	// accumulates server-side request counters.
	bindings := make(map[string]*core.Binding, len(ids))
	for i, id := range ids {
		next := ids[(i+1)%len(ids)]
		b, err := nodes[id].Bind(&qos.Spec{Query: svcdesc.Query{Name: "svc/" + next}}, core.BindOptions{})
		if err != nil {
			t.Fatalf("bind %s->%s: %v", id, next, err)
		}
		t.Cleanup(func() { _ = b.Close() })
		bindings[id] = b
	}

	// Drive rounds: requests around the ring, then one publish interval.
	round := func(alive map[string]bool) {
		t.Helper()
		for _, id := range ids {
			if !alive[id] {
				continue
			}
			if _, err := bindings[id].Request([]byte("ping")); err != nil && alive[ids[(indexOf(ids, id)+1)%len(ids)]] {
				t.Fatalf("%s request: %v", id, err)
			}
		}
		vclock.Advance(publishEvery)
		for _, id := range ids {
			if !alive[id] {
				continue
			}
			_ = pubs[id].Publish() // best-effort, like Start's loop
		}
	}
	all := map[string]bool{"n0": true, "n1": true, "n2": true}
	for i := 0; i < 4; i++ {
		round(all)
	}

	// Every node must appear in the merged view with a non-empty request
	// series whose timestamps are strictly monotone in sim time.
	view := agg.View()
	if len(view.Nodes) != len(ids) {
		t.Fatalf("cluster view has %d nodes (%v), want %d", len(view.Nodes), agg.Nodes(), len(ids))
	}
	for _, nv := range view.Nodes {
		if !nv.Fresh {
			t.Errorf("%s not fresh while publishing", nv.Node)
		}
		pts := nv.Series["core.node.requests"]
		if len(pts) == 0 {
			t.Fatalf("%s has no core.node.requests series; series: %v", nv.Node, seriesNames(nv))
		}
		for i := 1; i < len(pts); i++ {
			if !pts[i-1].T.Before(pts[i].T) {
				t.Errorf("%s series timestamps not monotone: %v then %v", nv.Node, pts[i-1].T, pts[i].T)
			}
			if pts[i].V < pts[i-1].V {
				t.Errorf("%s cumulative request count decreased: %v then %v", nv.Node, pts[i-1].V, pts[i].V)
			}
		}
		if last := pts[len(pts)-1]; last.V <= 0 {
			t.Errorf("%s served no requests according to telemetry", nv.Node)
		}
	}

	// Kill n2: its radio goes dark, so publishes stop and the aggregator
	// must mark it stale within the bound while the survivors stay fresh.
	if err := net.Kill("n2"); err != nil {
		t.Fatal(err)
	}
	if !agg.Fresh("n2") {
		t.Fatal("n2 stale immediately after kill — before the horizon passed")
	}
	alive := map[string]bool{"n0": true, "n1": true}
	staleWithin := int(staleAfter/publishEvery) + 1
	for i := 0; i < staleWithin; i++ {
		round(alive)
	}
	if agg.Fresh("n2") {
		t.Fatalf("n2 still fresh %d publish intervals after kill (bound %v)", staleWithin, staleAfter)
	}
	for _, id := range []string{"n0", "n1"} {
		if !agg.Fresh(id) {
			t.Errorf("%s went stale though it kept publishing", id)
		}
	}
}

func indexOf(ids []string, id string) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	return -1
}

func seriesNames(nv telemetry.NodeView) []string {
	out := make([]string, 0, len(nv.Series))
	for name := range nv.Series {
		out = append(out, name)
	}
	return out
}

// TestTelemetryDisabledZeroAlloc guards the tentpole's cost contract: with
// no publisher running, the request hot path must allocate exactly what it
// allocates in a telemetry-free process. Publishing is out-of-band by
// construction — nothing on the request path should even observe that a
// publisher was built.
func TestTelemetryDisabledZeroAlloc(t *testing.T) {
	setup := func(withPublisher bool) (*core.Binding, func()) {
		fabric := transport.NewFabric()
		store := discovery.NewStore(nil, 0)
		reg := obs.NewRegistry()
		sup, err := core.NewNode(core.Config{Name: "sup", Transport: transport.NewMem(fabric), Registry: store, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		if err := sup.Serve(&svcdesc.Description{Name: "svc", Reliability: 0.9, PowerLevel: 1},
			func(p []byte) ([]byte, error) { return p, nil }); err != nil {
			t.Fatal(err)
		}
		con, err := core.NewNode(core.Config{Name: "con", Transport: transport.NewMem(fabric), Registry: store, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		binding, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "svc"}}, core.BindOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cleanup := func() { _ = binding.Close(); _ = con.Close(); _ = sup.Close() }
		if withPublisher {
			// Constructed but never started: the telemetry-off configuration
			// of a node that could publish.
			pub, err := telemetry.NewPublisher(telemetry.PublisherOptions{
				Node:     "sup",
				Registry: reg,
				Send:     func(*telemetry.Report) error { return nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			old := cleanup
			cleanup = func() { _ = pub.Close(); old() }
		}
		return binding, cleanup
	}

	measure := func(withPublisher bool) float64 {
		binding, cleanup := setup(withPublisher)
		defer cleanup()
		payload := []byte("ping")
		if _, err := binding.Request(payload); err != nil { // warm the path
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := binding.Request(payload); err != nil {
				t.Fatal(err)
			}
		})
	}

	bare := measure(false)
	armed := measure(true)
	if armed > bare {
		t.Fatalf("idle telemetry costs the hot path: %.1f allocs/op with publisher built vs %.1f without", armed, bare)
	}
	t.Logf("request hot path: %.1f allocs/op (telemetry idle and absent identical: %v)", bare, armed == bare)
}
