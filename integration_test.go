// End-to-end integration tests over real TCP sockets: a registry server,
// supplier nodes, and consumers — the deployment shape of cmd/ndsm-registry
// + cmd/ndsm-node, in-process.
package ndsm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ndsm"
)

// tcpWorld spins up a TCP registry server and hands out nodes that talk to
// it over loopback sockets.
type tcpWorld struct {
	t        *testing.T
	server   *ndsm.RegistryServer
	registry string // host:port
}

func newTCPWorld(t *testing.T) *tcpWorld {
	t.Helper()
	tr := ndsm.NewTCPTransport(nil)
	t.Cleanup(func() { _ = tr.Close() })
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ndsm.NewRegistryServer(ndsm.NewStore(nil, 0), l)
	t.Cleanup(func() { _ = srv.Close() })
	return &tcpWorld{t: t, server: srv, registry: srv.Addr()}
}

// node starts a middleware node on an ephemeral TCP port with its own
// registry client.
func (w *tcpWorld) node() *ndsm.Node {
	w.t.Helper()
	tr := ndsm.NewTCPTransport(nil)
	w.t.Cleanup(func() { _ = tr.Close() })
	cli := ndsm.NewRegistryClient(tr, w.registry)
	w.t.Cleanup(func() { _ = cli.Close() })
	// Bind an ephemeral port first so the node's advertised name is its
	// actual dialable address.
	probe, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		w.t.Fatal(err)
	}
	addr := probe.Addr()
	_ = probe.Close()
	n, err := ndsm.NewNode(ndsm.NodeConfig{Name: addr, Transport: tr, Registry: cli})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestTCPEndToEnd(t *testing.T) {
	w := newTCPWorld(t)
	sup := w.node()
	desc := &ndsm.Description{
		Name:        "sensor/bp",
		Reliability: 0.95,
		PowerLevel:  1,
		Attributes:  map[string]string{"unit": "mmHg"},
	}
	if err := sup.Serve(desc, func(p []byte) ([]byte, error) {
		return append([]byte("tcp:"), p...), nil
	}); err != nil {
		t.Fatal(err)
	}

	con := w.node()
	b, err := con.Bind(&ndsm.Spec{
		Query:   ndsm.Query{Name: "sensor/bp", MinReliability: 0.9},
		Benefit: ndsm.Benefit{FullUntil: time.Second, ZeroAfter: 5 * time.Second},
	}, ndsm.BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck
	out, err := b.Request([]byte("read"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "tcp:read" {
		t.Fatalf("out = %q", out)
	}
	rep := b.Tracker().Report()
	if rep.Delivered != 1 || rep.MeanBenefit != 1 {
		t.Fatalf("tracker = %+v", rep)
	}
}

func TestTCPFailoverAcrossSockets(t *testing.T) {
	w := newTCPWorld(t)
	mk := func(rel float64, tag string) *ndsm.Node {
		n := w.node()
		desc := &ndsm.Description{Name: "svc", Reliability: rel, PowerLevel: 1}
		if err := n.Serve(desc, func(p []byte) ([]byte, error) {
			return []byte(tag), nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	primary := mk(0.99, "primary")
	_ = mk(0.70, "backup")

	con := w.node()
	b, err := con.Bind(&ndsm.Spec{
		Query:   ndsm.Query{Name: "svc"},
		Weights: ndsm.Weights{Reliability: 1},
		Benefit: ndsm.Benefit{FullUntil: 2 * time.Second, ZeroAfter: 5 * time.Second},
	}, ndsm.BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck
	out, err := b.Request(nil)
	if err != nil || string(out) != "primary" {
		t.Fatalf("first request: %q, %v", out, err)
	}

	// Kill the primary: withdraw its advertisement, then close the node.
	if err := primary.Withdraw("svc"); err != nil {
		t.Fatal(err)
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	out, err = b.Request(nil)
	if err != nil {
		t.Fatalf("failover request: %v", err)
	}
	if string(out) != "backup" {
		t.Fatalf("failover got %q", out)
	}
	if b.Rebinds.Load() != 1 {
		t.Fatalf("rebinds = %d", b.Rebinds.Load())
	}
}

func TestTCPLeaseExpiryRemovesDeadSupplier(t *testing.T) {
	w := newTCPWorld(t)
	sup := w.node()
	desc := &ndsm.Description{Name: "ephemeral", Reliability: 0.9, PowerLevel: 1, TTL: 300 * time.Millisecond}
	if err := sup.Serve(desc, func(p []byte) ([]byte, error) { return p, nil }); err != nil {
		t.Fatal(err)
	}
	// Visible now.
	tr := ndsm.NewTCPTransport(nil)
	t.Cleanup(func() { _ = tr.Close() })
	cli := ndsm.NewRegistryClient(tr, w.registry)
	t.Cleanup(func() { _ = cli.Close() })
	got, err := cli.Lookup(&ndsm.Query{Name: "ephemeral"})
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	// The supplier dies silently (no unregister) and stops renewing; the
	// lease expires.
	_ = sup.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := cli.Lookup(&ndsm.Query{Name: "ephemeral"})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("dead supplier never expired from the registry")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTCPConcurrentConsumers(t *testing.T) {
	w := newTCPWorld(t)
	sup := w.node()
	if err := sup.Serve(&ndsm.Description{Name: "svc", Reliability: 0.9, PowerLevel: 1},
		func(p []byte) ([]byte, error) { return p, nil }); err != nil {
		t.Fatal(err)
	}
	const consumers = 4
	const requests = 10
	var wg sync.WaitGroup
	errs := make(chan error, consumers)
	for i := 0; i < consumers; i++ {
		con := w.node()
		wg.Add(1)
		go func(i int, con *ndsm.Node) {
			defer wg.Done()
			b, err := con.Bind(&ndsm.Spec{Query: ndsm.Query{Name: "svc"}}, ndsm.BindOptions{})
			if err != nil {
				errs <- err
				return
			}
			defer b.Close() //nolint:errcheck
			for r := 0; r < requests; r++ {
				want := fmt.Sprintf("c%d-r%d", i, r)
				out, err := b.Request([]byte(want))
				if err != nil {
					errs <- err
					return
				}
				if string(out) != want {
					errs <- fmt.Errorf("cross-talk: sent %q got %q", want, out)
					return
				}
			}
		}(i, con)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPXMLCodecInterop(t *testing.T) {
	// A JSON-codec node and a binary-codec node interoperate through the
	// registry because frames are content-type tagged (§3.9).
	tr := ndsm.NewTCPTransport(nil) // registry side: binary
	t.Cleanup(func() { _ = tr.Close() })
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ndsm.NewRegistryServer(ndsm.NewStore(nil, 0), l)
	t.Cleanup(func() { _ = srv.Close() })

	jsonTr := ndsm.NewTCPTransport(ndsm.JSONCodec{})
	t.Cleanup(func() { _ = jsonTr.Close() })
	cli := ndsm.NewRegistryClient(jsonTr, srv.Addr())
	t.Cleanup(func() { _ = cli.Close() })
	if err := cli.Register(&ndsm.Description{Name: "svc", Provider: "p", Reliability: 0.9, PowerLevel: 1}); err != nil {
		t.Fatal(err)
	}
	xmlTr := ndsm.NewTCPTransport(ndsm.XMLCodec{})
	t.Cleanup(func() { _ = xmlTr.Close() })
	cli2 := ndsm.NewRegistryClient(xmlTr, srv.Addr())
	t.Cleanup(func() { _ = cli2.Close() })
	got, err := cli2.Lookup(&ndsm.Query{Name: "svc"})
	if err != nil || len(got) != 1 || got[0].Provider != "p" {
		t.Fatalf("cross-codec lookup = %v, %v", got, err)
	}
}
