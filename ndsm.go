// Package ndsm is the public API of the Network-based Distributed Systems
// Middleware — a full implementation of the middleware feature catalog from
// Carvalho, Murphy, Heinzelman & Coelho, "Network-Based Distributed Systems
// Middleware" (MIDDLEWARE 2003).
//
// The middleware connects service suppliers and service consumers through a
// network (§3.1). A process participates by starting a Node on a Transport
// with a discovery Registry; it then hosts services with Node.Serve and
// consumes them with Node.Bind, which returns a QoS-managed Binding that
// re-matches suppliers automatically when they fail (graceful degradation,
// §3.4).
//
// The feature areas of the paper map onto this API as follows:
//
//   - Network independence (§3.2): Transport — NewMemTransport,
//     NewTCPTransport, NewSimTransport (simulated radio; see package simnet).
//   - Plug and play (§3.3): Registry organizations — NewStore (in-process),
//     NewRegistryServer/NewRegistryClient (centralized), NewFloodAgent
//     (distributed), NewMirrored (hybrid), NewAdaptive (adaptive).
//   - QoS (§3.4): Spec, Benefit, Weights, Score/Rank/Select, Tracker.
//   - Locating & routing (§3.5): package simnet (location service, multi-hop
//     strategies).
//   - Transactions (§3.6): Link (reliable delivery), schedules (Periodic,
//     Predictor, Demand), and the interaction styles in
//     internal/interact (RPC, message queues, publish-subscribe, tuple
//     spaces) surfaced through subpackages of this module.
//   - Scheduling (§3.7): Queue, Dispatcher, TokenBucket, RMAdmissible,
//     HandoffManager.
//   - Recovery (§3.8): WAL, RecoveryManager.
//   - Interoperability (§3.9): Transcode, Gateway, codecs (Binary/XML/JSON).
//   - MiLAN (§4): package milan.
package ndsm

import (
	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/discovery/cluster"
	"ndsm/internal/interop"
	"ndsm/internal/netsim"
	"ndsm/internal/qos"
	"ndsm/internal/recovery"
	"ndsm/internal/scheduler"
	"ndsm/internal/simtime"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// --- kernel (§3.1) ---

// Node is one middleware endpoint: it hosts suppliers and opens consumer
// bindings.
type Node = core.Node

// NodeConfig assembles a Node.
type NodeConfig = core.Config

// NewNode starts a node.
func NewNode(cfg NodeConfig) (*Node, error) { return core.NewNode(cfg) }

// Handler serves one request of a hosted service.
type Handler = core.Handler

// Binding is a QoS-managed attachment to the best feasible supplier.
type Binding = core.Binding

// BindOptions tunes a binding's degradation policy.
type BindOptions = core.BindOptions

// Event is a kernel notification; EventType classifies it.
type (
	Event     = core.Event
	EventType = core.EventType
)

// Kernel event types.
const (
	EventServiceUp   = core.EventServiceUp
	EventServiceDown = core.EventServiceDown
	EventBound       = core.EventBound
	EventRebound     = core.EventRebound
	EventBindingLost = core.EventBindingLost
	EventQoSViolated = core.EventQoSViolated
)

// --- service descriptions and matching (§3.3) ---

// Description advertises a service; Query requests one.
type (
	Description = svcdesc.Description
	Query       = svcdesc.Query
	Constraint  = svcdesc.Constraint
	Op          = svcdesc.Op
	Location    = svcdesc.Location
)

// Constraint operators.
const (
	OpEq       = svcdesc.OpEq
	OpNe       = svcdesc.OpNe
	OpLt       = svcdesc.OpLt
	OpLe       = svcdesc.OpLe
	OpGt       = svcdesc.OpGt
	OpGe       = svcdesc.OpGe
	OpContains = svcdesc.OpContains
	OpExists   = svcdesc.OpExists
)

// HashPassword hashes a service password for Description.PasswordHash.
func HashPassword(plain string) string { return svcdesc.HashPassword(plain) }

// MarshalDescription / UnmarshalDescription expose the XML interchange form.
func MarshalDescription(d *Description) ([]byte, error) { return svcdesc.MarshalDescription(d) }

// UnmarshalDescription parses the XML interchange form.
func UnmarshalDescription(data []byte) (*Description, error) {
	return svcdesc.UnmarshalDescription(data)
}

// --- QoS (§3.4) ---

// Spec is a consumer's full QoS requirement; Benefit its time-constraint
// curve; Weights its soft preferences; Tracker measures achieved QoS.
type (
	Spec    = qos.Spec
	Benefit = qos.Benefit
	Weights = qos.Weights
	Tracker = qos.Tracker
	Ranked  = qos.Ranked
)

// Score, Rank, and Select evaluate suppliers against a Spec.
var (
	Score  = qos.Score
	Rank   = qos.Rank
	Select = qos.Select
)

// --- discovery (§3.3) ---

// Resolver is the uniform discovery API all organizations implement;
// Registry is its historical alias.
type (
	Resolver = discovery.Resolver
	Registry = discovery.Registry
)

// Store is the in-process leased advertisement table.
type Store = discovery.Store

// NewStore creates an in-process registry (also the server-side table of the
// centralized organization).
var NewStore = discovery.NewStore

// Centralized organization.
type (
	RegistryServer = discovery.Server
	RegistryClient = discovery.Client
)

// NewRegistryServer serves a store over a transport listener;
// NewRegistryClient talks to one.
var (
	NewRegistryServer = discovery.NewServer
	NewRegistryClient = discovery.NewClient
)

// Distributed organization (flooding agent over a simulated radio).
type (
	FloodAgent  = discovery.Agent
	AgentConfig = discovery.AgentConfig
)

// NewFloodAgent starts a distributed discovery agent on a netmux.
var NewFloodAgent = discovery.NewAgent

// Hybrid and adaptive organizations.
type (
	Mirrored = discovery.Mirrored
	Adaptive = discovery.Adaptive
)

// NewMirrored builds the hybrid organization; NewAdaptive the adaptive one.
var (
	NewMirrored = discovery.NewMirrored
	NewAdaptive = discovery.NewAdaptive
)

// DensityPolicy is the default adaptive mode policy.
var DensityPolicy = discovery.DensityPolicy

// Cached wraps any Resolver with a client-side lookup lease cache:
// steady-state lookups are local hits that revalidate asynchronously.
type (
	CachedResolver = discovery.Cached
	CacheOptions   = discovery.CacheOptions
)

// NewCachedResolver builds the caching layer.
var NewCachedResolver = discovery.NewCached

// Replicated sharded registry cluster (consistent-hash placement, gossip
// anti-entropy at replication factor R, quorum scatter-gather lookups).
type (
	ClusterNode            = cluster.Node
	ClusterNodeOptions     = cluster.NodeOptions
	ClusterResolver        = cluster.Resolver
	ClusterResolverOptions = cluster.ResolverOptions
)

// NewClusterNode runs one registry cluster member; NewClusterResolver is the
// client side that fans writes to replica owners and quorum-reads lookups.
var (
	NewClusterNode     = cluster.NewNode
	NewClusterResolver = cluster.NewResolver
)

// --- transports (§3.2) ---

// Transport moves messages; Conn is one stream; Listener accepts them.
type (
	Transport = transport.Transport
	Conn      = transport.Conn
	Listener  = transport.Listener
	Fabric    = transport.Fabric
)

// NewFabric creates an in-process switchboard for mem transports.
var NewFabric = transport.NewFabric

// NewMemTransport creates the in-process transport.
func NewMemTransport(f *Fabric) Transport { return transport.NewMem(f) }

// NewTCPTransport creates the wireline transport (codec nil = binary).
func NewTCPTransport(codec Codec) Transport { return transport.NewTCP(codec) }

// NewSimTransport creates the simulated-radio transport for one node.
var NewSimTransport = transport.NewSim

// --- wire & interoperability (§3.9) ---

// Message is the transport-independent envelope; Codec serializes it.
type (
	Message = wire.Message
	Codec   = wire.Codec
)

// The three codecs.
type (
	BinaryCodec = wire.Binary
	XMLCodec    = wire.XML
	JSONCodec   = wire.JSON
)

// Transcode re-encodes a message between codecs.
var Transcode = interop.Transcode

// Gateway bridges two middleware domains; Rule rewrites crossing messages.
type (
	Gateway       = interop.Gateway
	GatewayConfig = interop.GatewayConfig
	Rule          = interop.Rule
)

// NewGateway starts a domain bridge; the Rule constructors filter and map.
var (
	NewGateway      = interop.NewGateway
	TopicPrefixRule = interop.TopicPrefixRule
	HeaderRule      = interop.HeaderRule
	DropTopicRule   = interop.DropTopicRule
)

// --- transactions (§3.6) ---

// Link layers at-least-once delivery over a Conn; LinkConfig tunes it.
type (
	Link       = transaction.Link
	LinkConfig = transaction.LinkConfig
)

// NewLink wraps a connection with delivery guarantees.
var NewLink = transaction.NewLink

// Transaction schedules (the paper's classes).
type (
	Schedule  = transaction.Schedule
	Periodic  = transaction.Periodic
	Predictor = transaction.Predictor
	Demand    = transaction.Demand
	Pump      = transaction.Pump
)

// NewPump drives proactive transmissions under a schedule.
var NewPump = transaction.NewPump

// --- scheduling (§3.7) ---

// Scheduling primitives.
type (
	SchedulerQueue   = scheduler.Queue
	SchedulerItem    = scheduler.Item
	Dispatcher       = scheduler.Dispatcher
	DispatcherConfig = scheduler.DispatcherConfig
	TokenBucket      = scheduler.TokenBucket
	RTTask           = scheduler.Task
	HandoffManager   = scheduler.HandoffManager
)

// Dispatch policies.
const (
	PolicyFIFO     = scheduler.FIFO
	PolicyPriority = scheduler.PriorityOrder
	PolicyEDF      = scheduler.EDF
)

// Scheduler constructors and admission tests.
var (
	NewSchedulerQueue = scheduler.NewQueue
	NewDispatcher     = scheduler.NewDispatcher
	NewTokenBucket    = scheduler.NewTokenBucket
	RMAdmissible      = scheduler.RMAdmissible
	EDFAdmissible     = scheduler.EDFAdmissible
	NewHandoffManager = scheduler.NewHandoffManager
)

// --- recovery (§3.8) ---

// Recovery primitives.
type (
	WAL             = recovery.WAL
	WALOptions      = recovery.WALOptions
	WALRecord       = recovery.Record
	RecoveryManager = recovery.Manager
	StateMachine    = recovery.StateMachine
)

// Recovery constructors.
var (
	OpenWAL            = recovery.OpenWAL
	NewRecoveryManager = recovery.NewManager
)

// --- clocks ---

// Clock abstracts time; VirtualClock is the deterministic test clock.
type (
	Clock        = simtime.Clock
	RealClock    = simtime.Real
	VirtualClock = simtime.Virtual
)

// NewVirtualClock creates a deterministic clock for tests and simulations.
var NewVirtualClock = simtime.NewVirtual

// --- simulated network identity re-export (used across the API) ---

// NodeID names a simulated network node.
type NodeID = netsim.NodeID
