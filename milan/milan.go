// Package milan is the public API of MiLAN — Middleware Linking Applications
// and Networks — the paper's own middleware system (§4): it computes, from
// an application's per-state QoS requirements and each sensor's QoS
// contributions, the feasible sensor sets, selects the one that maximizes
// network lifetime, and configures the (simulated) network accordingly.
//
// See package simnet for the radio substrate MiLAN configures.
package milan

import (
	internal "ndsm/internal/milan"
)

// Core model types.
type (
	// Variable names an application-level quantity ("blood-pressure").
	Variable = internal.Variable
	// State names an application state with its own QoS requirements.
	State = internal.State
	// AppSpec declares the application's per-state, per-variable QoS needs.
	AppSpec = internal.AppSpec
	// Sensor describes one sensor's QoS contributions and sample size.
	Sensor = internal.Sensor
	// System is the full MiLAN problem: app + sensors + combine rule.
	System = internal.System
	// Energies snapshots per-sensor residual energy.
	Energies = internal.Energies
	// Combine merges per-sensor qualities into a set quality.
	Combine = internal.Combine
	// Selector picks the operating sensor set.
	Selector = internal.Selector
	// Manager is MiLAN's runtime over a simulated network.
	Manager = internal.Manager
	// Stats reports a run.
	Stats = internal.Stats
)

// Selectors.
type (
	// Exhaustive is MiLAN's optimal subset search.
	Exhaustive = internal.Exhaustive
	// Greedy is the scalable heuristic.
	Greedy = internal.Greedy
	// AllSensors is the no-middleware baseline.
	AllSensors = internal.AllSensors
	// RandomFeasible is the unoptimized-feasible baseline.
	RandomFeasible = internal.RandomFeasible
)

// Combine rules.
var (
	// CombineProb treats sensors as independent evidence (1-∏(1-q)).
	CombineProb = internal.CombineProb
	// CombineMax takes the single best sensor.
	CombineMax = internal.CombineMax
)

// Role is a node's network assignment under the current configuration.
type Role = internal.Role

// Network roles.
const (
	RoleSource  = internal.RoleSource
	RoleRouter  = internal.RoleRouter
	RoleSleeper = internal.RoleSleeper
	RoleSink    = internal.RoleSink
)

// ErrInfeasible reports that no sensor subset meets the state's QoS — the
// end of the network's useful lifetime.
var ErrInfeasible = internal.ErrInfeasible

// NewManager validates the system and selects the initial configuration.
var NewManager = internal.NewManager
