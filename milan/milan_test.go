package milan_test

import (
	"errors"
	"testing"

	"ndsm/milan"
	"ndsm/simnet"
)

const (
	varBP milan.Variable = "blood-pressure"

	stNormal    milan.State = "normal"
	stEmergency milan.State = "emergency"
)

// smokeSystem is a minimal two-sensor system: either BP sensor alone meets
// the normal state, but the emergency state needs both (CombineProb of two
// 0.8 sensors is 0.96).
func smokeSystem() *milan.System {
	return &milan.System{
		App: milan.AppSpec{
			Variables: []milan.Variable{varBP},
			Required: map[milan.State]map[milan.Variable]float64{
				stNormal:    {varBP: 0.7},
				stEmergency: {varBP: 0.9},
			},
		},
		Sensors: []milan.Sensor{
			{Node: "bp-0", QoS: map[milan.Variable]float64{varBP: 0.8}, SampleBytes: 100},
			{Node: "bp-1", QoS: map[milan.Variable]float64{varBP: 0.8}, SampleBytes: 100},
		},
		Sink:  "sink",
		Range: 30,
	}
}

func smokeField(t *testing.T, sys *milan.System) *simnet.Network {
	t.Helper()
	net := simnet.New(simnet.Config{Range: sys.Range})
	if err := net.AddNodeEnergy(sys.Sink, sys.SinkPos, 1e6); err != nil {
		t.Fatalf("AddNodeEnergy(sink): %v", err)
	}
	for i, sn := range sys.Sensors {
		if err := net.AddNodeEnergy(sn.Node, simnet.Position{X: 5 + float64(i)*5}, 1); err != nil {
			t.Fatalf("AddNodeEnergy(%s): %v", sn.Node, err)
		}
	}
	return net
}

// TestManagerSelectsAndReconfigures smokes the public MiLAN API: build a
// system, run the exhaustive selector, switch states, and run a round.
func TestManagerSelectsAndReconfigures(t *testing.T) {
	sys := smokeSystem()
	net := smokeField(t, sys)
	defer net.Close()

	mgr, err := milan.NewManager(sys, net, milan.Exhaustive{}, stNormal)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if got := len(mgr.Active()); got != 1 {
		t.Fatalf("normal state should run exactly 1 sensor, got %d (%v)", got, mgr.Active())
	}
	if err := mgr.SetState(stEmergency); err != nil {
		t.Fatalf("SetState(emergency): %v", err)
	}
	if got := len(mgr.Active()); got != 2 {
		t.Fatalf("emergency state needs both sensors, got %d (%v)", got, mgr.Active())
	}
	if err := mgr.Round(); err != nil {
		t.Fatalf("Round: %v", err)
	}
	if mgr.Stats().Rounds != 1 {
		t.Fatalf("Stats().Rounds = %d, want 1", mgr.Stats().Rounds)
	}
}

// TestCombineRules pins the two exported combine rules' semantics.
func TestCombineRules(t *testing.T) {
	qs := []float64{0.8, 0.8}
	if got := milan.CombineProb(qs); got < 0.959 || got > 0.961 {
		t.Fatalf("CombineProb(0.8, 0.8) = %v, want 0.96", got)
	}
	if got := milan.CombineMax(qs); got != 0.8 {
		t.Fatalf("CombineMax(0.8, 0.8) = %v, want 0.8", got)
	}
}

// TestInfeasible checks the exported lifetime-end error surfaces.
func TestInfeasible(t *testing.T) {
	sys := smokeSystem()
	sys.App.Required[stEmergency][varBP] = 0.999 // beyond both sensors combined
	net := smokeField(t, sys)
	defer net.Close()

	if _, err := milan.NewManager(sys, net, milan.Exhaustive{}, stEmergency); !errors.Is(err, milan.ErrInfeasible) {
		t.Fatalf("NewManager = %v, want ErrInfeasible", err)
	}
}
