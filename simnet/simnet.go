// Package simnet is the public API of the simulated network substrate and
// the middleware-level locating & routing layer (§3.5). It stands in for the
// wireless testbeds (Bluetooth, 802.11, sensor radios) the paper assumes:
// a planar radio field with a first-order energy model, loss, latency,
// mobility, and partitions, plus multi-hop routing strategies and a
// physical/logical location service.
package simnet

import (
	"ndsm/internal/location"
	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/routing"
)

// Radio field.
type (
	// Network is the simulated radio field.
	Network = netsim.Network
	// Config parameterizes it.
	Config = netsim.Config
	// NodeID names a node; Position places it.
	NodeID = netsim.NodeID
	// Position is a point on the field in meters.
	Position = netsim.Position
	// Packet is a delivered datagram.
	Packet = netsim.Packet
	// RadioParams is the energy model.
	RadioParams = netsim.RadioParams
	// Waypoint is the random-waypoint mobility model.
	Waypoint = netsim.Waypoint
)

// Field constructors and helpers.
var (
	// New creates a network.
	New = netsim.New
	// DefaultRadio returns the LEACH first-order energy constants.
	DefaultRadio = netsim.DefaultRadio
	// UniformField and GridField place node populations.
	UniformField = netsim.UniformField
	GridField    = netsim.GridField
	// Connected reports single-component connectivity.
	Connected = netsim.Connected
	// NewWaypoint creates a mobility model.
	NewWaypoint = netsim.NewWaypoint
)

// Protocol multiplexing (several agents sharing one radio).
type Mux = netmux.Mux

// NewMux starts a protocol demultiplexer for a node.
var NewMux = netmux.New

// Routing (§3.5).
type (
	// Router is one node's multi-hop routing agent.
	Router = routing.Router
	// Strategy is a pluggable routing algorithm.
	Strategy = routing.Strategy
	// Mesh manages one router per node.
	Mesh = routing.Mesh
	// Flooding, DistanceVector and Geographic are the strategies.
	Flooding       = routing.Flooding
	DistanceVector = routing.DistanceVector
	Geographic     = routing.Geographic
	// CostFunc prices links for the distance-vector metric.
	CostFunc = routing.CostFunc
)

// Routing constructors and metrics.
var (
	NewRouter           = routing.New
	NewRouterWithSource = routing.NewWithSource
	NewMesh             = routing.NewMesh
	NewDistanceVector   = routing.NewDistanceVector
	HopCost             = routing.HopCost
	EnergyCost          = routing.EnergyCost
)

// ErrNoRoute reports an unreachable destination.
var ErrNoRoute = routing.ErrNoRoute

// Location service (§3.5): physical and logical location, prediction.
type (
	LocationService = location.Service
	LocationEntry   = location.Entry
)

// NewLocationService creates an empty location registry.
var NewLocationService = location.NewService
