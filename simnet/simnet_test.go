package simnet_test

import (
	"testing"
	"time"

	"ndsm/internal/svcdesc"
	"ndsm/simnet"
)

// TestFieldAndRouting smokes the public substrate API end to end: place a
// grid, check connectivity, and deliver a packet across the mesh with the
// flooding strategy.
func TestFieldAndRouting(t *testing.T) {
	net := simnet.New(simnet.Config{Range: 15})
	defer net.Close()

	ids, err := simnet.GridField(net, "n", 9, 10)
	if err != nil {
		t.Fatalf("GridField: %v", err)
	}
	if len(ids) != 9 {
		t.Fatalf("GridField returned %d ids, want 9", len(ids))
	}
	if !simnet.Connected(net) {
		t.Fatal("10m-spaced grid with 15m range should be connected")
	}

	mesh, err := simnet.NewMesh(net, func() simnet.Strategy { return simnet.Flooding{} })
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	defer mesh.Close()

	src, dst := ids[0], ids[len(ids)-1]
	recv, err := mesh.Router(dst).Recv(dst)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := mesh.Router(src).Send(src, dst, []byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case pkt := <-recv:
		if string(pkt.Data) != "ping" {
			t.Fatalf("delivered %q, want %q", pkt.Data, "ping")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet not delivered across the mesh")
	}
}

// TestMux smokes the protocol demultiplexer re-export.
func TestMux(t *testing.T) {
	net := simnet.New(simnet.Config{Range: 25})
	defer net.Close()
	for _, id := range []simnet.NodeID{"a", "b"} {
		if err := net.AddNode(id, simnet.Position{}); err != nil {
			t.Fatalf("AddNode(%s): %v", id, err)
		}
	}
	ma, err := simnet.NewMux(net, "a")
	if err != nil {
		t.Fatalf("NewMux(a): %v", err)
	}
	defer ma.Close()
	mb, err := simnet.NewMux(net, "b")
	if err != nil {
		t.Fatalf("NewMux(b): %v", err)
	}
	defer mb.Close()

	ch := mb.Channel(0x7E)
	if err := ma.Send("b", []byte{0x7E, 'h', 'i'}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case pkt := <-ch:
		if string(pkt.Data[1:]) != "hi" {
			t.Fatalf("mux delivered %q", pkt.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("mux did not demultiplex the packet")
	}
}

// TestLocationService smokes the location-service re-export.
func TestLocationService(t *testing.T) {
	ls := simnet.NewLocationService()
	now := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	ls.Update("printer-1", svcdesc.Location{X: 3, Y: 4}, "floor-2", now)
	e, err := ls.Get("printer-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e.Logical != "floor-2" {
		t.Fatalf("logical area = %q, want floor-2", e.Logical)
	}
	if got := ls.NearestK(svcdesc.Location{}, 1); len(got) != 1 {
		t.Fatalf("NearestK returned %d entries, want 1", len(got))
	}
}
