// Public-API tests: everything here uses only the exported facade, the way
// a downstream user would.
package ndsm_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ndsm"
	"ndsm/milan"
	"ndsm/sensorsim"
	"ndsm/simnet"
)

func TestPublicQuickstartFlow(t *testing.T) {
	fabric := ndsm.NewFabric()
	registry := ndsm.NewStore(nil, 0)

	sup, err := ndsm.NewNode(ndsm.NodeConfig{
		Name: "sup", Transport: ndsm.NewMemTransport(fabric), Registry: registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close() //nolint:errcheck
	err = sup.Serve(&ndsm.Description{Name: "svc", Reliability: 0.9, PowerLevel: 1},
		func(p []byte) ([]byte, error) { return append([]byte("got:"), p...), nil })
	if err != nil {
		t.Fatal(err)
	}

	con, err := ndsm.NewNode(ndsm.NodeConfig{
		Name: "con", Transport: ndsm.NewMemTransport(fabric), Registry: registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer con.Close() //nolint:errcheck
	b, err := con.Bind(&ndsm.Spec{Query: ndsm.Query{Name: "svc"}}, ndsm.BindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close() //nolint:errcheck
	out, err := b.Request([]byte("x"))
	if err != nil || string(out) != "got:x" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestPublicCodecsAndTranscode(t *testing.T) {
	m := &ndsm.Message{ID: 1, Kind: 1 /* KindRequest */, Topic: "t", Payload: []byte("p")}
	data, err := ndsm.BinaryCodec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	xml, err := ndsm.Transcode(data, ndsm.BinaryCodec{}, ndsm.XMLCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(xml), "<message") {
		t.Fatalf("xml = %s", xml)
	}
}

func TestPublicQoSSelection(t *testing.T) {
	now := time.Now()
	spec := &ndsm.Spec{Query: ndsm.Query{Name: "p"}, Weights: ndsm.Weights{Reliability: 1}}
	best := ndsm.Select(spec, []*ndsm.Description{
		{Name: "p", Provider: "a", Reliability: 0.2, PowerLevel: 1},
		{Name: "p", Provider: "b", Reliability: 0.9, PowerLevel: 1},
	}, now)
	if best == nil || best.Provider != "b" {
		t.Fatalf("best = %+v", best)
	}
}

func TestPublicSchedulerAndRecovery(t *testing.T) {
	if !ndsm.RMAdmissible([]ndsm.RTTask{{C: time.Millisecond, T: 10 * time.Millisecond}}) {
		t.Fatal("trivial task set rejected")
	}
	w, err := ndsm.OpenWAL(t.TempDir()+"/wal.log", ndsm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //nolint:errcheck
	if _, err := w.Append(ndsm.WALRecord{Type: 1, Data: []byte("op")}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSimnetAndMilan(t *testing.T) {
	net := simnet.New(simnet.Config{Range: 30})
	defer net.Close()
	if err := net.AddNodeEnergy("sink", simnet.Position{}, 1000); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNodeEnergy("s1", simnet.Position{X: 10}, 0.5); err != nil {
		t.Fatal(err)
	}
	sys := &milan.System{
		App: milan.AppSpec{
			Variables: []milan.Variable{"v"},
			Required:  map[milan.State]map[milan.Variable]float64{"on": {"v": 0.5}},
		},
		Sensors: []milan.Sensor{{Node: "s1", QoS: map[milan.Variable]float64{"v": 0.8}, SampleBytes: 50}},
		Sink:    "sink",
		Range:   30,
	}
	mgr, err := milan.NewManager(sys, net, milan.Exhaustive{}, "on")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Round(); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().Delivered != 1 {
		t.Fatalf("stats = %+v", mgr.Stats())
	}
}

func TestPublicMilanInfeasible(t *testing.T) {
	sys := &milan.System{
		App: milan.AppSpec{
			Variables: []milan.Variable{"v"},
			Required:  map[milan.State]map[milan.Variable]float64{"on": {"v": 0.99}},
		},
		Sensors: []milan.Sensor{{Node: "s1", QoS: map[milan.Variable]float64{"v": 0.5}}},
		Sink:    "sink",
	}
	_, err := (milan.Exhaustive{}).Select(sys, "on", milan.Energies{"s1": 1}, nil)
	if !errors.Is(err, milan.ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicSensorsim(t *testing.T) {
	g := sensorsim.BloodPressure(1)
	r := g.Next()
	decoded, err := sensorsim.DecodeReading(r.Encode())
	if err != nil || decoded.Unit != "mmHg" {
		t.Fatalf("decoded = %+v, %v", decoded, err)
	}
	c := sensorsim.Classifier{Low: 90, High: 140}
	if v := c.Classify(sensorsim.Reading{Value: 200}); v != "high" {
		t.Fatalf("classify = %s", v)
	}
}

func TestPublicLocationService(t *testing.T) {
	ls := simnet.NewLocationService()
	ls.Update("n1", ndsm.Location{X: 1, Y: 2}, "ward/3", time.Now())
	e, err := ls.Get("n1")
	if err != nil || e.Logical != "ward/3" {
		t.Fatalf("entry = %+v, %v", e, err)
	}
}

func TestPublicEvents(t *testing.T) {
	fabric := ndsm.NewFabric()
	registry := ndsm.NewStore(nil, 0)
	n, err := ndsm.NewNode(ndsm.NodeConfig{Name: "n", Transport: ndsm.NewMemTransport(fabric), Registry: registry})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close() //nolint:errcheck
	events := n.Events.Subscribe()
	if err := n.Serve(&ndsm.Description{Name: "s", Reliability: 1, PowerLevel: 1},
		func(p []byte) ([]byte, error) { return p, nil }); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Type != ndsm.EventServiceUp {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event")
	}
}
