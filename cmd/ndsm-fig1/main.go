// Command ndsm-fig1 regenerates the paper's Figure 1 (middleware references
// per year in IEEE Xplore, 1989-2001) as an ASCII chart, and optionally as
// CSV.
//
// Usage:
//
//	ndsm-fig1 [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"ndsm/internal/bibliometrics"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of the ASCII chart")
	flag.Parse()
	if err := run(*csv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(csv bool) error {
	series := bibliometrics.Figure1()
	if csv {
		_, err := fmt.Print(bibliometrics.CSV(series))
		return err
	}
	fmt.Print(bibliometrics.Chart(series, 50))
	fmt.Printf("total references 1989-2001: %d\n", bibliometrics.Total(series))
	return nil
}
