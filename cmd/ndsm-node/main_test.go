package main

import (
	"encoding/json"
	"testing"
)

func TestHandlerFor(t *testing.T) {
	kinds := []string{"", "echo", "bloodpressure", "heartrate", "temperature", "accelerometer"}
	for _, kind := range kinds {
		h, err := handlerFor(kind)
		if err != nil || h == nil {
			t.Fatalf("handlerFor(%q) = %v, %v", kind, h, err)
		}
		if _, err := h([]byte("x")); err != nil {
			t.Fatalf("handler %q failed: %v", kind, err)
		}
	}
	if _, err := handlerFor("quantum"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestEchoHandlerEchoes(t *testing.T) {
	h, err := handlerFor("echo")
	if err != nil {
		t.Fatal(err)
	}
	out, err := h([]byte("ping"))
	if err != nil || string(out) != "ping" {
		t.Fatalf("out=%q err=%v", out, err)
	}
}

func TestNodeConfigParsing(t *testing.T) {
	raw := `{
	  "services": [
	    {"name": "sensor/bp", "kind": "bloodpressure", "reliability": 0.95,
	     "attributes": {"unit": "mmHg"}, "x": 10, "y": 20, "ttlSeconds": 15}
	  ]
	}`
	var cfg nodeConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Services) != 1 {
		t.Fatalf("services = %d", len(cfg.Services))
	}
	sc := cfg.Services[0]
	if sc.Name != "sensor/bp" || sc.Kind != "bloodpressure" || sc.Reliability != 0.95 ||
		sc.Attributes["unit"] != "mmHg" || sc.X != 10 || sc.TTLSeconds != 15 {
		t.Fatalf("parsed = %+v", sc)
	}
}
