// Command ndsm-node runs a middleware node over TCP: it hosts services
// described in a JSON config (serving synthetic sensor streams or echo
// handlers) against an ndsm-registry, or performs one-shot lookups.
//
// Serve:
//
//	ndsm-node -registry 127.0.0.1:7400 -listen 127.0.0.1:7500 -config node.json
//
// with node.json like:
//
//	{
//	  "services": [
//	    {"name": "sensor/bp", "kind": "bloodpressure", "reliability": 0.95,
//	     "attributes": {"unit": "mmHg"}, "x": 10, "y": 20}
//	  ]
//	}
//
// Lookup:
//
//	ndsm-node -registry 127.0.0.1:7400 -lookup "sensor/*"
//	ndsm-node -registry 127.0.0.1:7400 -lookup sensor/bp -call
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/discovery/cluster"
	"ndsm/internal/endpoint"
	"ndsm/internal/flightrec"
	"ndsm/internal/obs"
	"ndsm/internal/qos"
	"ndsm/internal/recovery"
	"ndsm/internal/reqlog"
	"ndsm/internal/sensors"
	"ndsm/internal/slo"
	"ndsm/internal/svcdesc"
	"ndsm/internal/telemetry"
	"ndsm/internal/trace"
	"ndsm/internal/transport"
	"ndsm/internal/webbridge"
)

// serviceConfig is one hosted service in the JSON config.
type serviceConfig struct {
	Name        string            `json:"name"`
	Kind        string            `json:"kind"` // bloodpressure|heartrate|temperature|accelerometer|echo
	Reliability float64           `json:"reliability"`
	Attributes  map[string]string `json:"attributes"`
	X           float64           `json:"x"`
	Y           float64           `json:"y"`
	TTLSeconds  int               `json:"ttlSeconds"`
}

type nodeConfig struct {
	Services []serviceConfig `json:"services"`
}

func main() {
	registry := flag.String("registry", "127.0.0.1:7400", "ndsm-registry address")
	registryCluster := flag.String("registry-cluster", "", "comma-separated registry cluster member addresses; overrides -registry")
	listen := flag.String("listen", "127.0.0.1:7500", "this node's service address")
	config := flag.String("config", "", "JSON config of services to host")
	lookup := flag.String("lookup", "", "one-shot lookup of a service name pattern")
	call := flag.Bool("call", false, "with -lookup: bind best supplier and request one sample")
	httpAddr := flag.String("http", "", "also serve the HTTP bridge (GET /services, POST /call/<svc>, GET /metrics) on this address")
	traced := flag.Bool("trace", false, "collect causal spans process-wide; the HTTP bridge serves them at GET /trace")
	renewEvery := flag.Duration("renew", 10*time.Second, "lease renewal interval")
	walPath := flag.String("wal", "", "journal service registrations to this write-ahead log file")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling endpoints at /debug/pprof/ on the HTTP bridge (opt-in)")
	aggregate := flag.Bool("aggregate", false, "host a telemetry aggregator on this node's listener; the HTTP bridge serves GET /cluster and GET /dash")
	publish := flag.String("publish", "", "publish this node's telemetry reports in-band to the aggregator node at this address")
	publishEvery := flag.Duration("publish-every", 5*time.Second, "telemetry publish interval (with -publish)")
	sloOn := flag.Bool("slo", false, "with -aggregate: run the burn-rate SLO engine over the aggregated telemetry; the HTTP bridge serves GET /alerts and GET /flight")
	sloConfig := flag.String("slo-config", "", "JSON array of declarative SLO objectives (implies -slo; default: the built-in freshness and telemetry-reject objectives)")
	sloWindow := flag.Duration("slo-window", time.Minute, "long burn window for the built-in objectives (with -slo)")
	reqlogOn := flag.Bool("reqlog", false, "record one wide event per request with tail sampling; the HTTP bridge serves GET /requests and GET /topk, and -publish ships sketch digests")
	reqlogSample := flag.Int("reqlog-sample", 0, "keep 1 in N healthy requests as exemplars (with -reqlog; default 64)")
	topicLanes := flag.String("topic-lanes", "", "JSON object mapping topic patterns (trailing * for prefixes) to admission lanes for this node's outbound calls")
	flag.Parse()
	if *traced {
		// One process-wide tracer: every trace.Ref in the stack follows it,
		// and the web bridge's GET /trace serves the collected timeline.
		trace.SetDefault(trace.New(trace.Options{Name: *listen}))
	}
	opts := serveOptions{
		HTTPAddr:     *httpAddr,
		WALPath:      *walPath,
		RenewEvery:   *renewEvery,
		Pprof:        *pprofOn,
		Aggregate:    *aggregate,
		PublishTo:    *publish,
		PublishEvery: *publishEvery,
		SLO:          *sloOn || *sloConfig != "",
		SLOConfig:    *sloConfig,
		SLOWindow:    *sloWindow,
		ReqLog:       *reqlogOn,
		ReqLogSample: *reqlogSample,
		TopicLanes:   *topicLanes,
	}
	opts.RegistryCluster = *registryCluster
	if err := run(*registry, *listen, *config, *lookup, *call, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// serveOptions carries serve's optional subsystems: the HTTP bridge, the
// registration WAL, and the telemetry plane's two roles (aggregator host
// and report publisher).
type serveOptions struct {
	HTTPAddr     string
	WALPath      string
	RenewEvery   time.Duration
	Pprof        bool
	Aggregate    bool
	PublishTo    string
	PublishEvery time.Duration
	// RegistryCluster lists registry cluster member addresses; when set the
	// node resolves through the quorum scatter-gather cluster resolver with a
	// client-side lookup cache instead of a single central client.
	RegistryCluster string
	// SLO runs the burn-rate engine (and a flight recorder) over the hosted
	// aggregator's series; SLOConfig optionally replaces the built-in
	// objectives with a declarative JSON set, and SLOWindow sizes the
	// built-ins' long window.
	SLO       bool
	SLOConfig string
	SLOWindow time.Duration
	// ReqLog enables the per-request wide-event recorder (GET /requests and
	// GET /topk on the bridge, digests in published reports, the tail ring in
	// flight bundles); ReqLogSample is its healthy-request keep rate (1-in-N,
	// 0 for the default).
	ReqLog       bool
	ReqLogSample int
	// TopicLanes is a JSON file mapping topic patterns to admission lanes,
	// applied to the node's outbound binding calls.
	TopicLanes string
}

func run(registryAddr, listen, configPath, lookup string, call bool, opts serveOptions) error {
	// Instrument makes every TCP connection feed the process-wide metrics
	// registry, surfaced over the HTTP bridge's GET /metrics.
	tr := transport.Instrument(transport.NewTCP(nil), nil)
	defer tr.Close() //nolint:errcheck
	var registry discovery.Resolver
	if opts.RegistryCluster != "" {
		var members []string
		for _, m := range strings.Split(opts.RegistryCluster, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		cres, err := cluster.NewResolver(tr, cluster.ResolverOptions{Members: members})
		if err != nil {
			return err
		}
		// Steady-state lookups are local cache hits that revalidate in the
		// background; writes still fan out to the replica owners.
		registry = discovery.NewCached(cres, discovery.CacheOptions{
			TTL:      10 * time.Second,
			StaleFor: 30 * time.Second,
		})
		fmt.Printf("resolving through %d-member registry cluster\n", len(members))
	} else {
		registry = discovery.NewClient(tr, registryAddr)
	}
	defer registry.Close() //nolint:errcheck

	if lookup != "" {
		return doLookup(tr, registry, listen, lookup, call)
	}
	if configPath == "" {
		return fmt.Errorf("need -config to serve or -lookup to query")
	}
	return serve(tr, registry, listen, configPath, opts)
}

func doLookup(tr transport.Transport, registry discovery.Resolver, listen, pattern string, call bool) error {
	descs, err := registry.Lookup(&svcdesc.Query{Name: pattern})
	if err != nil {
		return err
	}
	if len(descs) == 0 {
		fmt.Println("no services found")
		return nil
	}
	for _, d := range descs {
		loc := ""
		if d.Location != nil {
			loc = fmt.Sprintf(" @(%.0f,%.0f)", d.Location.X, d.Location.Y)
		}
		fmt.Printf("%-24s provider=%s reliability=%.2f%s\n", d.Name, d.Provider, d.Reliability, loc)
	}
	if !call {
		return nil
	}
	node, err := core.NewNode(core.Config{Name: listen, Transport: tr, Registry: registry})
	if err != nil {
		return err
	}
	defer node.Close() //nolint:errcheck
	binding, err := node.Bind(&qos.Spec{Query: svcdesc.Query{Name: pattern}}, core.BindOptions{})
	if err != nil {
		return err
	}
	defer binding.Close() //nolint:errcheck
	out, err := binding.Request([]byte("read"))
	if err != nil {
		return err
	}
	fmt.Printf("sample from %s: %s\n", binding.Peer(), out)
	return nil
}

func serve(tr transport.Transport, registry discovery.Resolver, listen, configPath string, opts serveOptions) error {
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg nodeConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse %s: %w", configPath, err)
	}
	if len(cfg.Services) == 0 {
		return fmt.Errorf("%s declares no services", configPath)
	}

	// Optional registration journal (§3.8 recovery system): every service this
	// node registers is appended as a durable RecordOp, so an operator can
	// reconstruct what the node had advertised before a crash.
	var wal *recovery.WAL
	if opts.WALPath != "" {
		wal, err = recovery.OpenWAL(opts.WALPath, recovery.WALOptions{SyncEveryAppend: true})
		if err != nil {
			return err
		}
		defer wal.Close() //nolint:errcheck
		prior := 0
		if err := wal.Replay(func(recovery.Record) error { prior++; return nil }); err != nil {
			return err
		}
		fmt.Printf("wal %s: %d prior registration records\n", opts.WALPath, prior)
	}

	// Request analytics plane: the recorder lands one wide event per dispatch,
	// shed, and binding call, with tail-based retention. The lane table is
	// parsed before the node exists so a bad config fails fast.
	var rec *reqlog.Recorder
	if opts.ReqLog {
		sample := opts.ReqLogSample
		if sample <= 0 {
			sample = 64 // the recorder's own default, echoed for the log line
		}
		rec = reqlog.New(reqlog.Options{SampleEvery: sample})
		fmt.Printf("request analytics on (healthy sample 1-in-%d)\n", sample)
	}
	var lanes *endpoint.LaneTable
	if opts.TopicLanes != "" {
		raw, err := os.ReadFile(opts.TopicLanes)
		if err != nil {
			return err
		}
		if lanes, err = endpoint.ParseTopicLanes(raw); err != nil {
			return fmt.Errorf("parse %s: %w", opts.TopicLanes, err)
		}
		fmt.Printf("topic-lane table: %d rules\n", lanes.Len())
	}

	node, err := core.NewNode(core.Config{
		Name: listen, Transport: tr, Registry: registry,
		ReqLog: rec, TopicLanes: lanes,
	})
	if err != nil {
		return err
	}
	defer node.Close() //nolint:errcheck

	for _, sc := range cfg.Services {
		handler, err := handlerFor(sc.Kind)
		if err != nil {
			return err
		}
		desc := &svcdesc.Description{
			Name:        sc.Name,
			Provider:    listen,
			Reliability: sc.Reliability,
			PowerLevel:  1,
			Attributes:  sc.Attributes,
			TTL:         time.Duration(sc.TTLSeconds) * time.Second,
		}
		if sc.X != 0 || sc.Y != 0 {
			desc.Location = &svcdesc.Location{X: sc.X, Y: sc.Y}
		}
		if desc.Reliability == 0 {
			desc.Reliability = 0.9
		}
		if err := node.Serve(desc, handler); err != nil {
			return err
		}
		if wal != nil {
			payload, err := svcdesc.MarshalDescription(desc)
			if err != nil {
				return err
			}
			if _, err := wal.Append(recovery.Record{
				Type:  recovery.RecordOp,
				OpKey: desc.Name,
				Data:  payload,
			}); err != nil {
				return err
			}
		}
		fmt.Printf("serving %s (%s) on %s\n", sc.Name, sc.Kind, listen)
	}

	// Telemetry plane. -aggregate turns this node into the cluster's
	// collection point: reports arrive as requests on the node's existing
	// listener (no extra port, no side protocol) and the HTTP bridge serves
	// the merged view. -publish makes this node a reporter, shipping its
	// metrics delta in-band to whichever node aggregates.
	var agg *telemetry.Aggregator
	if opts.Aggregate {
		agg = telemetry.NewAggregator(telemetry.AggregatorOptions{
			StaleAfter: 3 * opts.PublishEvery,
		})
		node.HandleTopic(telemetry.Topic, agg.Handler())
		fmt.Printf("telemetry aggregator on %s (topic %s)\n", listen, telemetry.Topic)
	}
	if opts.PublishTo != "" {
		caller, err := endpoint.NewCaller(tr, opts.PublishTo, endpoint.CallerOptions{Redial: true})
		if err != nil {
			return fmt.Errorf("telemetry caller: %w", err)
		}
		defer caller.Close() //nolint:errcheck
		pub, err := telemetry.NewPublisher(telemetry.PublisherOptions{
			Node:     listen,
			Spans:    trace.Default().Collector(),
			ReqLog:   rec,
			Interval: opts.PublishEvery,
			Send:     telemetry.CallerSend(caller, listen, opts.PublishTo, 0),
		})
		if err != nil {
			return fmt.Errorf("telemetry publisher: %w", err)
		}
		pub.Start()
		defer pub.Close() //nolint:errcheck
		fmt.Printf("publishing telemetry to %s every %v\n", opts.PublishTo, opts.PublishEvery)
	}

	// Alerting plane. The SLO engine judges the hosted aggregator's series
	// on a fixed cadence; critical transitions cut a flight-recorder bundle
	// (recent spans, metrics delta, per-node freshness) the bridge serves at
	// GET /flight for post-mortems.
	var eng *slo.Engine
	var flight *flightrec.Recorder
	if opts.SLO {
		if agg == nil {
			return fmt.Errorf("-slo needs -aggregate: the engine judges the aggregated telemetry")
		}
		eng, err = slo.New(slo.Options{Aggregator: agg})
		if err != nil {
			return err
		}
		defer eng.Close() //nolint:errcheck
		objectives := slo.DefaultObjectives(opts.SLOWindow)
		if opts.SLOConfig != "" {
			raw, err := os.ReadFile(opts.SLOConfig)
			if err != nil {
				return err
			}
			if objectives, err = slo.ParseObjectives(raw); err != nil {
				return err
			}
		}
		for _, o := range objectives {
			if err := eng.Add(o); err != nil {
				return fmt.Errorf("slo objective %q: %w", o.Name, err)
			}
		}
		flight = flightrec.NewRecorder(flightrec.Options{
			MinInterval: opts.PublishEvery,
			Spans:       trace.Default().Collector(),
			Metrics:     obs.Or(nil),
			Aggregator:  agg,
			ReqLog:      rec,
		})
		eng.Alerts().Notify(func(t slo.Transition) {
			if t.To != slo.Critical {
				return
			}
			flight.Snapshot(flightrec.Trigger{
				Objective: t.Objective,
				Node:      t.Node,
				Severity:  t.To.String(),
				Windows: map[string]float64{
					"burnLong":    t.BurnLong,
					"burnShort":   t.BurnShort,
					"badFraction": t.BadFraction,
				},
			})
			fmt.Fprintf(os.Stderr, "SLO CRITICAL %s node=%s burnLong=%.2f burnShort=%.2f\n",
				t.Objective, t.Node, t.BurnLong, t.BurnShort)
		})
		eng.Start(opts.PublishEvery)
		fmt.Printf("slo engine: %d objectives, evaluating every %v\n", len(objectives), opts.PublishEvery)
	}

	// Runtime introspection gauges ride the process-default registry whether
	// or not the bridge is up: a -publish node ships them in its reports.
	sampleRuntime := obs.RuntimeGauges(nil)

	// Optional embedded web server (§2 of the paper: HTTP access to the
	// middleware from browsers and plain web clients).
	var httpSrv *http.Server
	if opts.HTTPAddr != "" {
		bridge := webbridge.New(registry, node)
		defer bridge.Close() //nolint:errcheck
		bridge.EnableRuntimeMetrics()
		if agg != nil {
			bridge.SetAggregator(agg)
		}
		if eng != nil {
			bridge.SetSLO(eng)
			bridge.SetFlightRecorder(flight)
		}
		if rec != nil {
			bridge.SetReqLog(rec)
		}
		if opts.Pprof {
			bridge.EnablePprof()
			fmt.Printf("pprof enabled at /debug/pprof/ on %s\n", opts.HTTPAddr)
		}
		httpSrv = webbridge.NewHTTPServer(opts.HTTPAddr, bridge)
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "http bridge: %v\n", err)
			}
		}()
		fmt.Printf("http bridge on %s (GET /services, POST /call/<svc>, GET /metrics, GET /healthz, GET /trace, GET /cluster, GET /dash, GET /alerts, GET /flight)\n", opts.HTTPAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(opts.RenewEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Refresh the runtime gauges on the renewal beat so published
			// reports and /metrics reads stay near-current.
			sampleRuntime()
			if err := node.RenewLeases(); err != nil {
				fmt.Fprintf(os.Stderr, "lease renewal: %v\n", err)
			}
		case sig := <-stop:
			fmt.Printf("shutting down on %v\n", sig)
			if httpSrv != nil {
				// Drain in-flight HTTP exchanges before the node (and its
				// bindings) go away underneath them; give slow clients a
				// bounded grace period, then cut them off.
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := httpSrv.Shutdown(ctx); err != nil {
					_ = httpSrv.Close()
				}
				cancel()
			}
			return nil
		}
	}
}

// handlerFor returns the request handler for a service kind.
func handlerFor(kind string) (core.Handler, error) {
	switch kind {
	case "echo", "":
		return func(p []byte) ([]byte, error) { return p, nil }, nil
	case "bloodpressure":
		g := sensors.BloodPressure(time.Now().UnixNano())
		return func([]byte) ([]byte, error) { return g.Next().Encode(), nil }, nil
	case "heartrate":
		g := sensors.HeartRate(time.Now().UnixNano())
		return func([]byte) ([]byte, error) { return g.Next().Encode(), nil }, nil
	case "temperature":
		g := sensors.Temperature(time.Now().UnixNano())
		return func([]byte) ([]byte, error) { return g.Next().Encode(), nil }, nil
	case "accelerometer":
		g := sensors.Accelerometer(time.Now().UnixNano())
		return func([]byte) ([]byte, error) { return g.Next().Encode(), nil }, nil
	default:
		return nil, fmt.Errorf("unknown service kind %q", kind)
	}
}
