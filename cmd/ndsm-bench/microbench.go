package main

import (
	"io"
	"testing"
	"time"

	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/endpoint"
	"ndsm/internal/obs"
	"ndsm/internal/qos"
	"ndsm/internal/reqlog"
	"ndsm/internal/simtime"
	"ndsm/internal/slo"
	"ndsm/internal/svcdesc"
	"ndsm/internal/telemetry"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// microbench is one named benchmark the baseline records ns/op for.
type microbench struct {
	Name string
	Run  func(b *testing.B)
}

// microbenches is the hot-path suite behind `-baseline`: the operations
// whose regressions the compare gate watches. Package-level so tests can
// swap in fast stubs.
var microbenches = []microbench{
	{"wire.binary.encode", benchWireEncode},
	{"wire.binary.encodeAppend", benchWireEncodeAppend},
	{"wire.binary.decode", benchWireDecode},
	{"wire.batch.send", benchBatchSend},
	{"endpoint.oneway.go", benchOneWayGo},
	{"endpoint.lane.request", benchLaneRequest},
	{"obs.counter.inc", benchCounterInc},
	{"kernel.request", benchKernelRequest},
	{"telemetry.publish", benchTelemetryPublish},
	{"slo.evaluate", benchSLOEvaluate},
	{"reqlog.record", benchReqLogRecord},
}

func benchMessage() *wire.Message {
	return &wire.Message{
		ID:       42,
		Kind:     wire.KindRequest,
		Src:      "consumer-1",
		Dst:      "supplier-7",
		Topic:    "sensor/bp",
		Priority: 3,
		Deadline: time.Unix(1000, 0),
		Headers:  map[string]string{"trace": "abc123"},
		Payload:  make([]byte, 64),
	}
}

func benchWireEncode(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (wire.Binary{}).Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireEncodeAppend is the zero-alloc serialization path the batched
// endpoint hot path rides: append-encoding into a caller-owned buffer.
func benchWireEncodeAppend(b *testing.B) {
	m := benchMessage()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := (wire.Binary{}).AppendEncode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// benchBatchSend times one message through the coalescing frame writer —
// serialize, frame, CRC, and the (uncontended) flush.
func benchBatchSend(b *testing.B) {
	bw := wire.NewBatchWriter(io.Discard, wire.Binary{})
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bw.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOneWayGo times the fire-and-forget call path end to end over the
// in-memory transport: pooled request envelope, no waiter, no reply.
func benchOneWayGo(b *testing.B) {
	fabric := transport.NewFabric()
	srvTr := transport.NewMem(fabric)
	l, err := srvTr.Listen("srv")
	if err != nil {
		b.Fatal(err)
	}
	srv := endpoint.NewServer(l, endpoint.ServerOptions{
		OneWayKinds: []wire.Kind{wire.KindData},
	})
	srv.Handle("bench", func(*wire.Message) (*wire.Message, error) { return nil, nil })
	defer srv.Close() //nolint:errcheck
	caller, err := endpoint.NewCaller(transport.NewMem(fabric), "srv", endpoint.CallerOptions{Eager: true})
	if err != nil {
		b.Fatal(err)
	}
	defer caller.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fut := caller.Go(&endpoint.Call{Topic: "bench", Payload: payload, OneWay: true})
		if _, err := fut.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLaneRequest measures an admitted round-trip through the lane-aware
// admission controller: the header stamp, the lane parse, and the
// quota-accounted acquire/release on an uncontended server. This is the
// per-request cost of priority lanes when nothing sheds — the overhead the
// flat MaxInFlight bound was traded against.
func benchLaneRequest(b *testing.B) {
	fabric := transport.NewFabric()
	srvTr := transport.NewMem(fabric)
	l, err := srvTr.Listen("srv")
	if err != nil {
		b.Fatal(err)
	}
	srv := endpoint.NewServer(l, endpoint.ServerOptions{
		Name:        "bench.lane",
		MaxInFlight: 64,
		Metrics:     obs.NewRegistry(),
		Lanes:       &endpoint.LaneConfig{Quota: map[endpoint.Lane]int{endpoint.LaneControl: 8}},
	})
	srv.Handle("bench", func(m *wire.Message) (*wire.Message, error) {
		return &wire.Message{Kind: wire.KindReply}, nil
	})
	defer srv.Close() //nolint:errcheck
	caller, err := endpoint.NewCaller(transport.NewMem(fabric), "srv", endpoint.CallerOptions{
		Eager: true,
		Lane:  endpoint.LaneControl,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer caller.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caller.Do(&endpoint.Call{Topic: "bench", Payload: payload, Timeout: endpoint.NoTimeout}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireDecode(b *testing.B) {
	data, err := (wire.Binary{}).Encode(benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (wire.Binary{}).Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(1)
	}
}

// benchKernelRequest times the full consumer→supplier roundtrip through the
// endpoint engine over the in-memory transport — the same shape as the root
// BenchmarkKernelRequest, reproduced here so the baseline file captures it.
func benchKernelRequest(b *testing.B) {
	fabric := transport.NewFabric()
	registry := discovery.NewStore(nil, 0)
	sup, err := core.NewNode(core.Config{Name: "sup", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		b.Fatal(err)
	}
	defer sup.Close() //nolint:errcheck
	if err := sup.Serve(&svcdesc.Description{Name: "svc", Reliability: 0.9, PowerLevel: 1},
		func(p []byte) ([]byte, error) { return p, nil }); err != nil {
		b.Fatal(err)
	}
	con, err := core.NewNode(core.Config{Name: "con", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		b.Fatal(err)
	}
	defer con.Close() //nolint:errcheck
	binding, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "svc"}}, core.BindOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer binding.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binding.Request(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTelemetryPublish(b *testing.B) {
	reg := obs.NewRegistry()
	reg.Counter("reqs").Inc(100)
	p, err := telemetry.NewPublisher(telemetry.PublisherOptions{
		Node:     "bench",
		Registry: reg,
		Send:     func(*telemetry.Report) error { return nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("reqs").Inc(1)
		if err := p.Publish(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSLOEvaluate times one burn-rate pass over a realistic alerting plane:
// three reporting nodes, a ratio objective per node plus a fleet-wide
// freshness objective, and a window's worth of counter history to walk. This
// is the per-tick cost a node pays for having SLOs configured (the
// no-objectives path is held to zero allocations by the internal/slo guard).
func benchSLOEvaluate(b *testing.B) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	agg := telemetry.NewAggregator(telemetry.AggregatorOptions{
		Clock:      clock,
		StaleAfter: 10 * time.Second,
		Registry:   obs.NewRegistry(),
	})
	nodes := []string{"n1", "n2", "n3"}
	for seq := 1; seq <= 60; seq++ {
		clock.Advance(time.Second)
		for _, n := range nodes {
			if err := agg.Ingest(&telemetry.Report{
				Node: n,
				Seq:  uint64(seq),
				Time: clock.Now(),
				Counters: map[string]int64{
					"rpc.total": int64(20 * seq),
					"rpc.err":   int64(seq / 10),
				},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	eng, err := slo.New(slo.Options{Aggregator: agg, Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range nodes {
		if err := eng.Add(slo.Objective{
			Name:        "rpc-errors-" + n,
			Kind:        slo.KindRatio,
			Node:        n,
			BadSeries:   "rpc.err",
			TotalSeries: "rpc.total",
			Window:      30 * time.Second,
			ShortWindow: 5 * time.Second,
			Budget:      0.1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Add(slo.Objective{
		Name:        "telemetry-freshness",
		Kind:        slo.KindFreshness,
		Window:      30 * time.Second,
		ShortWindow: 5 * time.Second,
		Budget:      0.25,
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Evaluate()
	}
}

// benchReqLogRecord times the wide-event recorder's steady-state hot path:
// a healthy record on a warm topic that the exemplar sampler drops — the
// per-request cost every instrumented server pays. The compare gate's
// zero-alloc rule pins this path allocation-free.
func benchReqLogRecord(b *testing.B) {
	rec := reqlog.New(reqlog.Options{
		SampleEvery: 1 << 30,
		Registry:    obs.NewRegistry(),
	})
	r := reqlog.Record{
		Time:    time.Unix(0, 0),
		Kind:    reqlog.KindServer,
		Topic:   "bench",
		Outcome: reqlog.OutcomeOK,
		Latency: 2 * time.Millisecond,
	}
	for i := 0; i < 4096; i++ {
		rec.Record(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(r)
	}
}

// runMicrobenches executes the suite under the standard benchmark harness
// and returns one BenchResult per entry.
func runMicrobenches() map[string]BenchResult {
	out := make(map[string]BenchResult, len(microbenches))
	for _, mb := range microbenches {
		r := testing.Benchmark(mb.Run)
		out[mb.Name] = BenchResult{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	return out
}
