package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchSink defeats dead-code elimination in the stub benchmark.
var benchSink int

// fastSuite swaps the real microbenchmark suite for a near-instant stub so
// the baseline machinery can be tested in milliseconds. The stub must still
// cost a measurable >=1 ns/op, or regression math has no reference.
func fastSuite(t *testing.T) {
	t.Helper()
	saved := microbenches
	microbenches = []microbench{
		{"stub.fast", func(b *testing.B) {
			x := 0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 64; j++ {
					x += j ^ i
				}
			}
			benchSink = x
		}},
	}
	t.Cleanup(func() { microbenches = saved })
}

func TestBaselineFileIsValidJSON(t *testing.T) {
	fastSuite(t)
	path := filepath.Join(t.TempDir(), "b.json")
	if err := realMain(cliOptions{quick: true, run: "F1,E1", baseline: path}); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline not valid JSON: %v\n%s", err, data)
	}
	if b.Schema != baselineSchema || !b.Quick {
		t.Fatalf("baseline header = %+v", b)
	}
	if len(b.Experiments["F1"]) == 0 || len(b.Experiments["E1"]) == 0 {
		t.Fatalf("experiment metrics missing: %+v", b.Experiments)
	}
	if b.Benchmarks["stub.fast"].NsPerOp <= 0 {
		t.Fatalf("benchmark ns/op missing: %+v", b.Benchmarks)
	}
}

func TestCompareSelfPasses(t *testing.T) {
	fastSuite(t)
	path := filepath.Join(t.TempDir(), "b.json")
	if err := realMain(cliOptions{quick: true, run: "F1", baseline: path}); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	// File-vs-file self-compare: identical baselines cannot regress.
	if err := realMain(cliOptions{quick: true, compare: path, compareNew: path}); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	fastSuite(t)
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	if err := realMain(cliOptions{quick: true, run: "F1", baseline: oldPath}); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	old, err := readBaseline(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	// Doctor a 2× slowdown into the new baseline.
	doctored := *old
	doctored.Benchmarks = map[string]BenchResult{}
	for name, r := range old.Benchmarks {
		r.NsPerOp *= 2
		doctored.Benchmarks[name] = r
	}
	newPath := filepath.Join(dir, "new.json")
	if err := writeBaseline(newPath, &doctored); err != nil {
		t.Fatal(err)
	}
	err = realMain(cliOptions{quick: true, compare: oldPath, compareNew: newPath})
	if err == nil {
		t.Fatal("2x regression passed the compare gate")
	}
	if _, ok := err.(errRegression); !ok {
		t.Fatalf("compare failed with %T (%v), want errRegression", err, err)
	}
	// The reverse direction — new is 2x faster — must pass.
	if err := realMain(cliOptions{quick: true, compare: newPath, compareNew: oldPath}); err != nil {
		t.Fatalf("speedup flagged as regression: %v", err)
	}
}

func TestCompareToleratesSmallDrift(t *testing.T) {
	old := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"x": {NsPerOp: 100}},
		Experiments: map[string]map[string]float64{
			"E1": {"t/r/c": 10},
		},
	}
	within := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"x": {NsPerOp: 110}}, // +10% < 15%
		Experiments: map[string]map[string]float64{
			"E1": {"t/r/c": 30}, // experiment drift warns, never fails
		},
	}
	regs, warns := compareBaselines(old, within, regressionTolerance)
	if len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	if len(warns) == 0 {
		t.Fatal("experiment drift produced no warning")
	}

	over := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"x": {NsPerOp: 120}}, // +20% > 15%
	}
	regs, _ = compareBaselines(old, over, regressionTolerance)
	if len(regs) != 1 {
		t.Fatalf("+20%% not flagged: %v", regs)
	}
}

func TestCompareGatesE13ControlMissRate(t *testing.T) {
	const e13Key = "E13: deadline miss rate vs offered load/lanes 2.0x/control miss %"
	old := &Baseline{Schema: baselineSchema}
	clean := &Baseline{
		Schema: baselineSchema,
		Experiments: map[string]map[string]float64{
			"E13": {e13Key: 0},
		},
	}
	if regs, _ := compareBaselines(old, clean, regressionTolerance); len(regs) != 0 {
		t.Fatalf("0%% control miss flagged: %v", regs)
	}
	// The gate is absolute: a new baseline missing control deadlines at 2x
	// overload fails regardless of what the old baseline recorded.
	broken := &Baseline{
		Schema: baselineSchema,
		Experiments: map[string]map[string]float64{
			"E13": {e13Key: 12.5},
		},
	}
	regs, _ := compareBaselines(old, broken, regressionTolerance)
	if len(regs) != 1 {
		t.Fatalf("12.5%% control miss at 2x overload passed the gate: %v", regs)
	}
}

func TestReadBaselineRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(bad); err == nil {
		t.Fatal("garbage baseline accepted")
	}
	wrongSchema := filepath.Join(dir, "schema.json")
	if err := os.WriteFile(wrongSchema, []byte(`{"schema":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(wrongSchema); err == nil {
		t.Fatal("wrong-schema baseline accepted")
	}
	if _, err := readBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	old := &Baseline{
		Schema: baselineSchema,
		Benchmarks: map[string]BenchResult{
			"zero": {NsPerOp: 100, AllocsPerOp: 0},
			"some": {NsPerOp: 100, AllocsPerOp: 10},
		},
	}
	// A zero-alloc path growing a single allocation must fail the gate.
	grew := &Baseline{
		Schema: baselineSchema,
		Benchmarks: map[string]BenchResult{
			"zero": {NsPerOp: 100, AllocsPerOp: 1},
			"some": {NsPerOp: 100, AllocsPerOp: 10},
		},
	}
	regs, _ := compareBaselines(old, grew, regressionTolerance)
	if len(regs) != 1 {
		t.Fatalf("0->1 allocs not flagged: %v", regs)
	}
	// +1 alloc on a 10-alloc budget is within tolerance+slack; +3 is not.
	within := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"zero": {NsPerOp: 100}, "some": {NsPerOp: 100, AllocsPerOp: 11}},
	}
	if regs, _ := compareBaselines(old, within, regressionTolerance); len(regs) != 0 {
		t.Fatalf("within-slack alloc growth flagged: %v", regs)
	}
	over := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"zero": {NsPerOp: 100}, "some": {NsPerOp: 100, AllocsPerOp: 13}},
	}
	if regs, _ := compareBaselines(old, over, regressionTolerance); len(regs) != 1 {
		t.Fatalf("+3 allocs on 10 not flagged: %v", regs)
	}
}

func TestCompareGatesLoadThroughput(t *testing.T) {
	old := &Baseline{
		Schema: baselineSchema,
		Load: map[string]LoadPoint{
			"sim/1000/batched": {ReqPerSec: 100000, AllocsPerOp: 20},
		},
	}
	// The load servers run instrumented, so a big req/s drop is the
	// wide-event overhead contract failing: a hard regression, not a
	// warning. Alloc growth at a load point stays advisory.
	slower := &Baseline{
		Schema: baselineSchema,
		Load: map[string]LoadPoint{
			"sim/1000/batched": {ReqPerSec: 50000, AllocsPerOp: 40},
		},
	}
	regs, warns := compareBaselines(old, slower, regressionTolerance)
	if len(regs) != 1 {
		t.Fatalf("-50%% load throughput not gated: %v", regs)
	}
	if len(warns) != 1 {
		t.Fatalf("want alloc warning, got %v", warns)
	}
	// Within the 5% tolerance: noise, nothing flagged.
	noisy := &Baseline{
		Schema: baselineSchema,
		Load: map[string]LoadPoint{
			"sim/1000/batched": {ReqPerSec: 96000, AllocsPerOp: 20},
		},
	}
	if regs, warns := compareBaselines(old, noisy, regressionTolerance); len(regs) != 0 || len(warns) != 0 {
		t.Fatalf("within-tolerance load drift flagged: regs=%v warns=%v", regs, warns)
	}
	if _, warns := compareBaselines(old, &Baseline{Schema: baselineSchema}, regressionTolerance); len(warns) == 0 {
		t.Fatal("missing load point produced no warning")
	}
}

func TestReadBaselineAcceptsSchemaOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"benchmarks":{"x":{"nsPerOp":5}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := readBaseline(path)
	if err != nil {
		t.Fatalf("schema-1 baseline rejected: %v", err)
	}
	if b.Benchmarks["x"].NsPerOp != 5 {
		t.Fatalf("schema-1 contents lost: %+v", b)
	}
}

func TestParseConsumerSweep(t *testing.T) {
	got, err := parseConsumerSweep("100, 2000")
	if err != nil || len(got) != 2 || got[0] != 100 || got[1] != 2000 {
		t.Fatalf("parse = %v, %v", got, err)
	}
	if _, err := parseConsumerSweep("abc"); err == nil {
		t.Fatal("garbage sweep accepted")
	}
	if got, err := parseConsumerSweep(""); err != nil || got != nil {
		t.Fatalf("empty sweep = %v, %v", got, err)
	}
}

// TestLoadSuiteSmoke runs a miniature sweep end to end over both transports:
// every request answered, sane numbers, baseline keys present.
func TestLoadSuiteSmoke(t *testing.T) {
	for _, tr := range []string{"sim", "tcp"} {
		cfg := loadConfig{Transport: tr, Consumers: []int{50}, Requests: 8, Conns: 2, Suppliers: 1, Window: 4}
		var sb strings.Builder
		points, err := runLoadSuite(cfg, &sb)
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		for _, mode := range []string{"unbatched", "batched"} {
			p, ok := points[loadKey(tr, 50, mode)]
			if !ok || p.ReqPerSec <= 0 || p.P99Micros < p.P50Micros {
				t.Fatalf("%s/%s: bad point %+v (have %v)", tr, mode, p, points)
			}
		}
		if !strings.Contains(sb.String(), "batched") {
			t.Fatalf("%s: table missing rows:\n%s", tr, sb.String())
		}
	}
}
