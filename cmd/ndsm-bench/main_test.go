package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// benchSink defeats dead-code elimination in the stub benchmark.
var benchSink int

// fastSuite swaps the real microbenchmark suite for a near-instant stub so
// the baseline machinery can be tested in milliseconds. The stub must still
// cost a measurable >=1 ns/op, or regression math has no reference.
func fastSuite(t *testing.T) {
	t.Helper()
	saved := microbenches
	microbenches = []microbench{
		{"stub.fast", func(b *testing.B) {
			x := 0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 64; j++ {
					x += j ^ i
				}
			}
			benchSink = x
		}},
	}
	t.Cleanup(func() { microbenches = saved })
}

func TestBaselineFileIsValidJSON(t *testing.T) {
	fastSuite(t)
	path := filepath.Join(t.TempDir(), "b.json")
	if err := realMain(true, "F1,E1", false, false, "", path, "", ""); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline not valid JSON: %v\n%s", err, data)
	}
	if b.Schema != baselineSchema || !b.Quick {
		t.Fatalf("baseline header = %+v", b)
	}
	if len(b.Experiments["F1"]) == 0 || len(b.Experiments["E1"]) == 0 {
		t.Fatalf("experiment metrics missing: %+v", b.Experiments)
	}
	if b.Benchmarks["stub.fast"].NsPerOp <= 0 {
		t.Fatalf("benchmark ns/op missing: %+v", b.Benchmarks)
	}
}

func TestCompareSelfPasses(t *testing.T) {
	fastSuite(t)
	path := filepath.Join(t.TempDir(), "b.json")
	if err := realMain(true, "F1", false, false, "", path, "", ""); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	// File-vs-file self-compare: identical baselines cannot regress.
	if err := realMain(true, "", false, false, "", "", path, path); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	fastSuite(t)
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	if err := realMain(true, "F1", false, false, "", oldPath, "", ""); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	old, err := readBaseline(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	// Doctor a 2× slowdown into the new baseline.
	doctored := *old
	doctored.Benchmarks = map[string]BenchResult{}
	for name, r := range old.Benchmarks {
		r.NsPerOp *= 2
		doctored.Benchmarks[name] = r
	}
	newPath := filepath.Join(dir, "new.json")
	if err := writeBaseline(newPath, &doctored); err != nil {
		t.Fatal(err)
	}
	err = realMain(true, "", false, false, "", "", oldPath, newPath)
	if err == nil {
		t.Fatal("2x regression passed the compare gate")
	}
	if _, ok := err.(errRegression); !ok {
		t.Fatalf("compare failed with %T (%v), want errRegression", err, err)
	}
	// The reverse direction — new is 2x faster — must pass.
	if err := realMain(true, "", false, false, "", "", newPath, oldPath); err != nil {
		t.Fatalf("speedup flagged as regression: %v", err)
	}
}

func TestCompareToleratesSmallDrift(t *testing.T) {
	old := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"x": {NsPerOp: 100}},
		Experiments: map[string]map[string]float64{
			"E1": {"t/r/c": 10},
		},
	}
	within := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"x": {NsPerOp: 110}}, // +10% < 15%
		Experiments: map[string]map[string]float64{
			"E1": {"t/r/c": 30}, // experiment drift warns, never fails
		},
	}
	regs, warns := compareBaselines(old, within, regressionTolerance)
	if len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	if len(warns) == 0 {
		t.Fatal("experiment drift produced no warning")
	}

	over := &Baseline{
		Schema:     baselineSchema,
		Benchmarks: map[string]BenchResult{"x": {NsPerOp: 120}}, // +20% > 15%
	}
	regs, _ = compareBaselines(old, over, regressionTolerance)
	if len(regs) != 1 {
		t.Fatalf("+20%% not flagged: %v", regs)
	}
}

func TestReadBaselineRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(bad); err == nil {
		t.Fatal("garbage baseline accepted")
	}
	wrongSchema := filepath.Join(dir, "schema.json")
	if err := os.WriteFile(wrongSchema, []byte(`{"schema":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(wrongSchema); err == nil {
		t.Fatal("wrong-schema baseline accepted")
	}
	if _, err := readBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
