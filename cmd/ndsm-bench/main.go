// Command ndsm-bench runs the reproduction experiment suite (F1 and E1-E11
// from DESIGN.md) and prints one table per experiment — the data behind
// EXPERIMENTS.md.
//
// Usage:
//
//	ndsm-bench                 # full suite
//	ndsm-bench -quick          # shrunken workloads (seconds)
//	ndsm-bench -run E6,E1      # selected experiments
//	ndsm-bench -list           # list experiment IDs
//	ndsm-bench -quick -metrics # append the middleware metrics snapshot (JSON)
//	ndsm-bench -quick -trace out.json
//	                           # capture the run's causal spans as Chrome
//	                           # trace-event JSON (open in chrome://tracing
//	                           # or https://ui.perfetto.dev)
//	ndsm-bench -quick -baseline BENCH.json
//	                           # machine-readable baseline: every numeric
//	                           # experiment cell + hot-path ns/op
//	ndsm-bench -quick -compare old.json
//	                           # rebuild the baseline and fail (exit 1) on
//	                           # >15% benchmark regressions against old.json
//	ndsm-bench -compare old.json new.json
//	                           # compare two baseline files without running
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ndsm/internal/experiments"
	"ndsm/internal/obs"
	"ndsm/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run shrunken workloads")
	run := flag.String("run", "", "comma-separated experiment IDs (default all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	metrics := flag.Bool("metrics", false, "after the run, dump the middleware metrics snapshot as JSON")
	traceFile := flag.String("trace", "", "capture causal spans and write them as Chrome trace-event JSON to this file")
	baseline := flag.String("baseline", "", "write a machine-readable baseline (experiment metrics + ns/op) to this file")
	compare := flag.String("compare", "", "compare against this baseline file; exit non-zero on >15% benchmark regressions")
	flag.Parse()
	if err := realMain(*quick, *run, *list, *metrics, *traceFile, *baseline, *compare, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func realMain(quick bool, run string, list, metrics bool, traceFile, baseline, compare, compareNew string) error {
	if list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	// File-vs-file compare: judge two existing baselines without running
	// anything (what CI does against the committed seed).
	if compare != "" && compareNew != "" {
		oldB, err := readBaseline(compare)
		if err != nil {
			return err
		}
		newB, err := readBaseline(compareNew)
		if err != nil {
			return err
		}
		regressions, warnings := compareBaselines(oldB, newB, regressionTolerance)
		return reportComparison(os.Stdout, compare, regressions, warnings)
	}
	if baseline != "" || compare != "" {
		built, err := buildBaseline(quick, benchIDs(run))
		if err != nil {
			return err
		}
		if baseline != "" {
			if err := writeBaseline(baseline, built); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "ndsm-bench: wrote baseline (%d experiments, %d benchmarks) to %s\n",
				len(built.Experiments), len(built.Benchmarks), baseline)
		}
		if compare != "" {
			oldB, err := readBaseline(compare)
			if err != nil {
				return err
			}
			regressions, warnings := compareBaselines(oldB, built, regressionTolerance)
			return reportComparison(os.Stdout, compare, regressions, warnings)
		}
		return nil
	}
	var collector *trace.Collector
	if traceFile != "" {
		// Installing a process-default tracer turns on every trace.Ref in the
		// stack at once: endpoint callers, discovery, bindings, radio hops.
		collector = trace.NewCollector(1 << 18)
		trace.SetDefault(trace.New(trace.Options{Name: "bench", Collector: collector}))
		defer trace.SetDefault(nil)
	}
	runner := experiments.Runner{QuickMode: quick}
	if run == "" {
		if err := runner.RunAll(os.Stdout); err != nil {
			return err
		}
	} else {
		for _, id := range strings.Split(run, ",") {
			res, err := runner.Run(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			fmt.Print(experiments.Render(res))
		}
	}
	if metrics {
		if err := dumpMetrics(os.Stdout); err != nil {
			return err
		}
	}
	if collector != nil {
		if err := trace.WriteChromeFile(traceFile, collector.Spans()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ndsm-bench: wrote %d spans (%d dropped) to %s\n",
			collector.Len(), collector.Dropped(), traceFile)
	}
	return nil
}

// dumpMetrics prints the process-wide observability snapshot — every counter,
// gauge, and histogram the experiments touched — as indented JSON.
func dumpMetrics(w *os.File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obs.Default().Snapshot())
}
