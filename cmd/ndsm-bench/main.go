// Command ndsm-bench runs the reproduction experiment suite (F1 and E1-E11
// from DESIGN.md) and prints one table per experiment — the data behind
// EXPERIMENTS.md.
//
// Usage:
//
//	ndsm-bench                 # full suite
//	ndsm-bench -quick          # shrunken workloads (seconds)
//	ndsm-bench -run E6,E1      # selected experiments
//	ndsm-bench -list           # list experiment IDs
//	ndsm-bench -quick -metrics # append the middleware metrics snapshot (JSON)
//	ndsm-bench -quick -trace out.json
//	                           # capture the run's causal spans as Chrome
//	                           # trace-event JSON (open in chrome://tracing
//	                           # or https://ui.perfetto.dev)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ndsm/internal/experiments"
	"ndsm/internal/obs"
	"ndsm/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run shrunken workloads")
	run := flag.String("run", "", "comma-separated experiment IDs (default all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	metrics := flag.Bool("metrics", false, "after the run, dump the middleware metrics snapshot as JSON")
	traceFile := flag.String("trace", "", "capture causal spans and write them as Chrome trace-event JSON to this file")
	flag.Parse()
	if err := realMain(*quick, *run, *list, *metrics, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func realMain(quick bool, run string, list, metrics bool, traceFile string) error {
	if list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	var collector *trace.Collector
	if traceFile != "" {
		// Installing a process-default tracer turns on every trace.Ref in the
		// stack at once: endpoint callers, discovery, bindings, radio hops.
		collector = trace.NewCollector(1 << 18)
		trace.SetDefault(trace.New(trace.Options{Name: "bench", Collector: collector}))
		defer trace.SetDefault(nil)
	}
	runner := experiments.Runner{QuickMode: quick}
	if run == "" {
		if err := runner.RunAll(os.Stdout); err != nil {
			return err
		}
	} else {
		for _, id := range strings.Split(run, ",") {
			res, err := runner.Run(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			fmt.Print(experiments.Render(res))
		}
	}
	if metrics {
		if err := dumpMetrics(os.Stdout); err != nil {
			return err
		}
	}
	if collector != nil {
		if err := trace.WriteChromeFile(traceFile, collector.Spans()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ndsm-bench: wrote %d spans (%d dropped) to %s\n",
			collector.Len(), collector.Dropped(), traceFile)
	}
	return nil
}

// dumpMetrics prints the process-wide observability snapshot — every counter,
// gauge, and histogram the experiments touched — as indented JSON.
func dumpMetrics(w *os.File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obs.Default().Snapshot())
}
