// Command ndsm-bench runs the reproduction experiment suite (F1 and E1-E10
// from DESIGN.md) and prints one table per experiment — the data behind
// EXPERIMENTS.md.
//
// Usage:
//
//	ndsm-bench                 # full suite
//	ndsm-bench -quick          # shrunken workloads (seconds)
//	ndsm-bench -run E6,E1      # selected experiments
//	ndsm-bench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ndsm/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run shrunken workloads")
	run := flag.String("run", "", "comma-separated experiment IDs (default all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()
	if err := realMain(*quick, *run, *list); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func realMain(quick bool, run string, list bool) error {
	if list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	runner := experiments.Runner{QuickMode: quick}
	if run == "" {
		return runner.RunAll(os.Stdout)
	}
	for _, id := range strings.Split(run, ",") {
		res, err := runner.Run(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		fmt.Print(experiments.Render(res))
	}
	return nil
}
