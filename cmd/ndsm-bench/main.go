// Command ndsm-bench runs the reproduction experiment suite (F1 and E1-E11
// from DESIGN.md) and prints one table per experiment — the data behind
// EXPERIMENTS.md.
//
// Usage:
//
//	ndsm-bench                 # full suite
//	ndsm-bench -quick          # shrunken workloads (seconds)
//	ndsm-bench -run E6,E1      # selected experiments
//	ndsm-bench -list           # list experiment IDs
//	ndsm-bench -quick -metrics # append the middleware metrics snapshot (JSON)
//	ndsm-bench -quick -trace out.json
//	                           # capture the run's causal spans as Chrome
//	                           # trace-event JSON (open in chrome://tracing
//	                           # or https://ui.perfetto.dev)
//	ndsm-bench -quick -baseline BENCH.json
//	                           # machine-readable baseline: every numeric
//	                           # experiment cell + hot-path ns/op + allocs/op
//	ndsm-bench -quick -compare old.json
//	                           # rebuild the baseline and fail (exit 1) on
//	                           # >15% benchmark regressions against old.json
//	ndsm-bench -compare old.json new.json
//	                           # compare two baseline files without running
//	ndsm-bench -load           # sustained-load harness: N consumers × M
//	                           # suppliers, batched vs unbatched, req/s and
//	                           # latency percentiles (see -load-* flags)
//	ndsm-bench -load -quick -baseline BENCH.json
//	                           # include the load matrix in the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ndsm/internal/experiments"
	"ndsm/internal/obs"
	"ndsm/internal/trace"
)

// cliOptions is everything the flags select; realMain takes it whole so
// tests can drive the binary without re-parsing argv.
type cliOptions struct {
	quick      bool
	run        string
	list       bool
	metrics    bool
	traceFile  string
	baseline   string
	compare    string
	compareNew string
	load       bool
	loadCfg    loadConfig
}

func main() {
	var opts cliOptions
	flag.BoolVar(&opts.quick, "quick", false, "run shrunken workloads")
	flag.StringVar(&opts.run, "run", "", "comma-separated experiment IDs (default all)")
	flag.BoolVar(&opts.list, "list", false, "list experiment IDs and exit")
	flag.BoolVar(&opts.metrics, "metrics", false, "after the run, dump the middleware metrics snapshot as JSON")
	flag.StringVar(&opts.traceFile, "trace", "", "capture causal spans and write them as Chrome trace-event JSON to this file")
	flag.StringVar(&opts.baseline, "baseline", "", "write a machine-readable baseline (experiment metrics + ns/op) to this file")
	flag.StringVar(&opts.compare, "compare", "", "compare against this baseline file; exit non-zero on >15% benchmark regressions")
	flag.BoolVar(&opts.load, "load", false, "run the sustained-load harness (batched vs unbatched endpoint hot path)")
	flag.StringVar(&opts.loadCfg.Transport, "load-transport", "sim", "load harness transport: sim (netsim datagrams) or tcp (loopback)")
	consumers := flag.String("load-consumers", "", "comma-separated consumer counts to sweep (default 1000,10000; -quick default 500)")
	flag.IntVar(&opts.loadCfg.Requests, "load-requests", 0, "requests per consumer (0: auto-size to ~60k total)")
	flag.IntVar(&opts.loadCfg.Window, "load-window", 32, "pipeline window per consumer in the batched phase")
	flag.DurationVar(&opts.loadCfg.Airtime, "load-airtime", 0, "per-datagram channel occupancy on the sim substrate (default 25µs; negative disables)")
	flag.IntVar(&opts.loadCfg.Repeat, "load-repeat", 0, "runs per load point, keeping the best req/s (default 3; 1 for a quick smoke)")
	flag.Parse()
	opts.compareNew = flag.Arg(0)
	sweep, err := parseConsumerSweep(*consumers)
	if err == nil {
		if sweep == nil && opts.quick {
			sweep = []int{500}
		}
		opts.loadCfg.Consumers = sweep
		err = realMain(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func realMain(opts cliOptions) error {
	if opts.list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	// File-vs-file compare: judge two existing baselines without running
	// anything (what CI does against the committed seed).
	if opts.compare != "" && opts.compareNew != "" {
		oldB, err := readBaseline(opts.compare)
		if err != nil {
			return err
		}
		newB, err := readBaseline(opts.compareNew)
		if err != nil {
			return err
		}
		regressions, warnings := compareBaselines(oldB, newB, regressionTolerance)
		return reportComparison(os.Stdout, opts.compare, regressions, warnings)
	}
	if opts.baseline != "" || opts.compare != "" {
		built, err := buildBaseline(opts.quick, benchIDs(opts.run))
		if err != nil {
			return err
		}
		if opts.load {
			built.Load, err = runLoadSuite(opts.loadCfg, os.Stdout)
			if err != nil {
				return err
			}
		}
		if opts.baseline != "" {
			if err := writeBaseline(opts.baseline, built); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "ndsm-bench: wrote baseline (%d experiments, %d benchmarks, %d load points) to %s\n",
				len(built.Experiments), len(built.Benchmarks), len(built.Load), opts.baseline)
		}
		if opts.compare != "" {
			oldB, err := readBaseline(opts.compare)
			if err != nil {
				return err
			}
			regressions, warnings := compareBaselines(oldB, built, regressionTolerance)
			return reportComparison(os.Stdout, opts.compare, regressions, warnings)
		}
		return nil
	}
	// Standalone load run: the harness replaces the experiment suite.
	if opts.load {
		_, err := runLoadSuite(opts.loadCfg, os.Stdout)
		return err
	}
	var collector *trace.Collector
	if opts.traceFile != "" {
		// Installing a process-default tracer turns on every trace.Ref in the
		// stack at once: endpoint callers, discovery, bindings, radio hops.
		collector = trace.NewCollector(1 << 18)
		trace.SetDefault(trace.New(trace.Options{Name: "bench", Collector: collector}))
		defer trace.SetDefault(nil)
	}
	runner := experiments.Runner{QuickMode: opts.quick}
	if opts.run == "" {
		if err := runner.RunAll(os.Stdout); err != nil {
			return err
		}
	} else {
		for _, id := range strings.Split(opts.run, ",") {
			res, err := runner.Run(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			fmt.Print(experiments.Render(res))
		}
	}
	if opts.metrics {
		if err := dumpMetrics(os.Stdout); err != nil {
			return err
		}
	}
	if collector != nil {
		if err := trace.WriteChromeFile(opts.traceFile, collector.Spans()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ndsm-bench: wrote %d spans (%d dropped) to %s\n",
			collector.Len(), collector.Dropped(), opts.traceFile)
	}
	return nil
}

// dumpMetrics prints the process-wide observability snapshot — every counter,
// gauge, and histogram the experiments touched — as indented JSON.
func dumpMetrics(w *os.File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obs.Default().Snapshot())
}
