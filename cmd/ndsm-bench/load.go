package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndsm/internal/endpoint"
	"ndsm/internal/netsim"
	"ndsm/internal/obs"
	"ndsm/internal/reqlog"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// loadTopic is the echo method the sustained-load servers expose.
const loadTopic = "load.echo"

// loadTotalBudget is the total request count a phase is auto-sized to when
// -load-requests is 0: per-consumer request counts shrink as the consumer
// count grows, so a 100k-consumer sweep stays bounded in wall time.
const loadTotalBudget = 60000

// loadConfig sizes one sustained-load run (the -load flags).
type loadConfig struct {
	Transport string        // "sim" (netsim datagrams) or "tcp" (loopback sockets)
	Consumers []int         // sweep of simulated-consumer counts
	Suppliers int           // echo servers
	Conns     int           // caller connections the consumers multiplex over
	Requests  int           // requests per consumer (0: auto from loadTotalBudget)
	Window    int           // pipeline depth per consumer in the batched phase
	Payload   int           // request payload bytes
	Airtime   time.Duration // per-datagram channel occupancy on sim (<0: none)
	Repeat    int           // runs per point; the best (max req/s) is kept
}

func (c loadConfig) withDefaults() loadConfig {
	if c.Transport == "" {
		c.Transport = "sim"
	}
	if len(c.Consumers) == 0 {
		c.Consumers = []int{1000, 10000}
	}
	if c.Suppliers <= 0 {
		c.Suppliers = 2
	}
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Payload <= 0 {
		c.Payload = 64
	}
	if c.Airtime == 0 {
		c.Airtime = 25 * time.Microsecond
	}
	if c.Airtime < 0 {
		c.Airtime = 0
	}
	if c.Repeat <= 0 {
		c.Repeat = 3
	}
	return c
}

// airtimeService models the shared radio medium netsim leaves free: every
// datagram occupies the channel for a fixed airtime, and transmissions
// serialize the way CSMA serializes a cell. Without this, the in-process
// simulator under-represents the per-packet cost a real radio pays — the
// very cost frame coalescing exists to amortize. The occupancy is a
// calibrated spin while holding the medium: timer-based sleeps are
// millisecond-grained under load and would swamp a microsecond airtime.
type airtimeService struct {
	transport.DatagramService
	airtime   time.Duration
	datagrams atomic.Int64

	mu sync.Mutex // the medium: held for the duration of a transmission
}

func (s *airtimeService) Send(from, to netsim.NodeID, data []byte) error {
	s.datagrams.Add(1)
	if s.airtime > 0 {
		s.mu.Lock()
		for end := time.Now().Add(s.airtime); time.Now().Before(end); {
		}
		s.mu.Unlock()
	}
	return s.DatagramService.Send(from, to, data)
}

// parseConsumerSweep reads the -load-consumers flag ("1000,10000").
func parseConsumerSweep(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("load: bad consumer count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// LoadPoint is one (transport, consumers, mode) cell of the sustained-load
// matrix, recorded in the baseline so -compare can watch throughput and
// allocation drift across commits.
type LoadPoint struct {
	ReqPerSec   float64 `json:"reqPerSec"`
	P50Micros   float64 `json:"p50Micros"`
	P99Micros   float64 `json:"p99Micros"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	// MsgsPerDatagram is the coalescing factor on the sim substrate: wire
	// messages (requests + replies) per radio datagram (0 on tcp).
	MsgsPerDatagram float64 `json:"msgsPerDatagram,omitempty"`
	// Speedup is batched req/s over unbatched req/s (batched rows only).
	Speedup float64 `json:"speedup,omitempty"`
}

// loadWorld is one phase's servers, callers, and everything to tear down.
type loadWorld struct {
	callers []*endpoint.Caller
	servers []*endpoint.Server
	closers []io.Closer
	svc     *airtimeService // sim only: the shared medium (datagram counts)
}

func (w *loadWorld) Close() {
	for _, c := range w.callers {
		_ = c.Close()
	}
	for _, s := range w.servers {
		_ = s.Close()
	}
	for _, c := range w.closers {
		_ = c.Close()
	}
}

func loadEcho(req *wire.Message) (*wire.Message, error) {
	return &wire.Message{Kind: wire.KindReply, Payload: req.Payload}, nil
}

// buildLoadWorld stands up the suppliers and caller connections for one
// phase. In batched mode the sim transports coalesce datagrams (both
// directions: requests and replies); TCP coalesces unconditionally, so there
// the phases differ only in pipelining.
func buildLoadWorld(cfg loadConfig, batched bool) (*loadWorld, error) {
	w := &loadWorld{}
	serve := func(l transport.Listener) {
		// Every load server records wide events: the sustained-load matrix
		// measures the *instrumented* request path, so the committed
		// baseline's req/s already carries the recorder's cost and the
		// compare gate's 5% load bound holds analytics to its overhead
		// budget on the workload that matters.
		s := endpoint.NewServer(l, endpoint.ServerOptions{
			Kinds:  []wire.Kind{wire.KindRequest},
			ReqLog: reqlog.New(reqlog.Options{SampleEvery: 1024, Registry: obs.NewRegistry()}),
		})
		s.Handle(loadTopic, loadEcho)
		w.servers = append(w.servers, s)
	}
	switch cfg.Transport {
	case "sim":
		// One flat radio cell: every node in range, lossless, no energy
		// deaths, inboxes deep enough that the unbatched phase's datagram
		// flood is not silently dropped.
		net := netsim.New(netsim.Config{Range: 1e6, Unlimited: true, InboxSize: 1 << 16})
		svc := &airtimeService{DatagramService: net, airtime: cfg.Airtime}
		w.svc = svc
		addSim := func(id string) (*transport.Sim, error) {
			if err := net.AddNode(netsim.NodeID(id), netsim.Position{}); err != nil {
				return nil, err
			}
			tr, err := transport.NewSim(svc, netsim.NodeID(id), nil)
			if err != nil {
				return nil, err
			}
			tr.SetBatching(batched)
			w.closers = append(w.closers, tr)
			return tr, nil
		}
		supIDs := make([]string, cfg.Suppliers)
		for i := range supIDs {
			supIDs[i] = fmt.Sprintf("sup%d", i)
			tr, err := addSim(supIDs[i])
			if err != nil {
				w.Close()
				return nil, err
			}
			l, err := tr.Listen(supIDs[i])
			if err != nil {
				w.Close()
				return nil, err
			}
			serve(l)
		}
		for i := 0; i < cfg.Conns; i++ {
			tr, err := addSim(fmt.Sprintf("cli%d", i))
			if err != nil {
				w.Close()
				return nil, err
			}
			c, err := endpoint.NewCaller(tr, supIDs[i%len(supIDs)], endpoint.CallerOptions{Eager: true})
			if err != nil {
				w.Close()
				return nil, err
			}
			w.callers = append(w.callers, c)
		}
	case "tcp":
		tr := transport.NewTCP(nil)
		w.closers = append(w.closers, tr)
		addrs := make([]string, cfg.Suppliers)
		for i := range addrs {
			l, err := tr.Listen("127.0.0.1:0")
			if err != nil {
				w.Close()
				return nil, err
			}
			addrs[i] = l.Addr()
			serve(l)
		}
		for i := 0; i < cfg.Conns; i++ {
			c, err := endpoint.NewCaller(tr, addrs[i%len(addrs)], endpoint.CallerOptions{Eager: true})
			if err != nil {
				w.Close()
				return nil, err
			}
			w.callers = append(w.callers, c)
		}
	default:
		return nil, fmt.Errorf("load: unknown transport %q (want sim or tcp)", cfg.Transport)
	}
	return w, nil
}

// runLoadPhase drives n simulated consumers against the world and measures
// the sustained request rate. Unbatched: each consumer issues synchronous
// round-trips (endpoint.Do) over per-message datagrams. Batched: each
// consumer pipelines a window of async calls (endpoint.Go) and the
// transports coalesce frames.
func runLoadPhase(cfg loadConfig, n int, batched bool) (LoadPoint, error) {
	world, err := buildLoadWorld(cfg, batched)
	if err != nil {
		return LoadPoint{}, err
	}
	defer world.Close()

	perConsumer := cfg.Requests
	if perConsumer <= 0 {
		perConsumer = loadTotalBudget / n
		if perConsumer < 4 {
			perConsumer = 4
		}
	}
	window := cfg.Window
	if window > perConsumer {
		window = perConsumer
	}
	total := n * perConsumer
	payload := make([]byte, cfg.Payload)

	// Latency slabs are allocated before the measured region so allocs/op
	// reflects the request path plus goroutine startup, not bookkeeping.
	latencies := make([][]time.Duration, n)
	for j := range latencies {
		latencies[j] = make([]time.Duration, 0, perConsumer)
	}
	var failures atomic.Int64
	var firstErr atomic.Value // error — the first failure, for the report
	fail := func(err error) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			c := world.callers[j%len(world.callers)]
			lats := latencies[j]
			call := func() *endpoint.Call {
				return &endpoint.Call{Topic: loadTopic, Payload: payload, Timeout: 2 * time.Minute}
			}
			if !batched {
				for r := 0; r < perConsumer; r++ {
					t0 := time.Now()
					if _, err := c.Do(call()); err != nil {
						fail(err)
						continue
					}
					lats = append(lats, time.Since(t0))
				}
			} else {
				// Sliding window of in-flight futures: up to `window`
				// requests are on the wire before the oldest is awaited.
				type inflight struct {
					fut *endpoint.Future
					t0  time.Time
				}
				win := make([]inflight, window)
				settle := func(f inflight) {
					if _, err := f.fut.Wait(); err != nil {
						fail(err)
						return
					}
					lats = append(lats, time.Since(f.t0))
				}
				for r := 0; r < perConsumer; r++ {
					slot := r % window
					if r >= window {
						settle(win[slot])
					}
					win[slot] = inflight{fut: c.Go(call()), t0: time.Now()}
				}
				first := perConsumer - window
				if first < 0 {
					first = 0
				}
				for r := first; r < perConsumer; r++ {
					settle(win[r%window])
				}
			}
			latencies[j] = lats
		}(j)
	}
	wg.Wait()
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if f := failures.Load(); f > 0 {
		return LoadPoint{}, fmt.Errorf("load: %d/%d requests failed (%s, %d consumers, batched=%v): first: %v",
			f, total, cfg.Transport, n, batched, firstErr.Load())
	}
	merged := make([]time.Duration, 0, total)
	for _, lats := range latencies {
		merged = append(merged, lats...)
	}
	sort.Slice(merged, func(i, k int) bool { return merged[i] < merged[k] })
	pct := func(p float64) float64 {
		if len(merged) == 0 {
			return 0
		}
		idx := int(p * float64(len(merged)-1))
		return float64(merged[idx]) / float64(time.Microsecond)
	}
	point := LoadPoint{
		ReqPerSec:   float64(total) / wall.Seconds(),
		P50Micros:   pct(0.50),
		P99Micros:   pct(0.99),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(total),
	}
	if world.svc != nil {
		if d := world.svc.datagrams.Load(); d > 0 {
			point.MsgsPerDatagram = float64(2*total) / float64(d)
		}
	}
	return point, nil
}

// runLoadPhaseBest runs one (consumers, mode) point cfg.Repeat times and
// keeps the run with the highest request rate. A single sustained-load draw
// swings tens of percent with scheduler and background noise; the max over a
// few draws is a far more stable capacity estimate, which is what lets
// -compare hold load req/s to a tight regression bound.
func runLoadPhaseBest(cfg loadConfig, n int, batched bool) (LoadPoint, error) {
	var best LoadPoint
	for i := 0; i < cfg.Repeat; i++ {
		p, err := runLoadPhase(cfg, n, batched)
		if err != nil {
			return LoadPoint{}, err
		}
		if p.ReqPerSec > best.ReqPerSec {
			best = p
		}
	}
	return best, nil
}

// runLoadSuite sweeps the consumer counts, printing one table row per
// (consumers, mode) pair, and returns the baseline-ready matrix keyed
// "transport/consumers/mode".
func runLoadSuite(cfg loadConfig, w io.Writer) (map[string]LoadPoint, error) {
	cfg = cfg.withDefaults()
	out := make(map[string]LoadPoint)
	fmt.Fprintf(w, "Sustained load (%s transport, %d suppliers, %d conns, window %d):\n\n",
		cfg.Transport, cfg.Suppliers, cfg.Conns, cfg.Window)
	fmt.Fprintf(w, "%-10s %-10s %12s %10s %10s %11s %8s %9s\n",
		"consumers", "mode", "req/s", "p50(µs)", "p99(µs)", "allocs/op", "msg/dg", "speedup")
	for _, n := range cfg.Consumers {
		unbatched, err := runLoadPhaseBest(cfg, n, false)
		if err != nil {
			return nil, err
		}
		out[loadKey(cfg.Transport, n, "unbatched")] = unbatched
		fmt.Fprintf(w, "%-10d %-10s %12.0f %10.1f %10.1f %11.1f %8.1f %9s\n",
			n, "unbatched", unbatched.ReqPerSec, unbatched.P50Micros, unbatched.P99Micros,
			unbatched.AllocsPerOp, unbatched.MsgsPerDatagram, "")
		batched, err := runLoadPhaseBest(cfg, n, true)
		if err != nil {
			return nil, err
		}
		if unbatched.ReqPerSec > 0 {
			batched.Speedup = batched.ReqPerSec / unbatched.ReqPerSec
		}
		out[loadKey(cfg.Transport, n, "batched")] = batched
		fmt.Fprintf(w, "%-10d %-10s %12.0f %10.1f %10.1f %11.1f %8.1f %8.1fx\n",
			n, "batched", batched.ReqPerSec, batched.P50Micros, batched.P99Micros,
			batched.AllocsPerOp, batched.MsgsPerDatagram, batched.Speedup)
	}
	fmt.Fprintln(w)
	return out, nil
}

func loadKey(transport string, consumers int, mode string) string {
	return fmt.Sprintf("%s/%d/%s", transport, consumers, mode)
}
