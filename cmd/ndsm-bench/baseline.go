package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ndsm/internal/experiments"
)

// baselineSchema versions the baseline file format. Schema 2 added the
// sustained-load matrix and allocs/op gating; schema 1 files are still
// readable (they simply carry no load points).
const baselineSchema = 2

// minBaselineSchema is the oldest schema readBaseline still accepts.
const minBaselineSchema = 1

// regressionTolerance is how much slower a benchmark may get before the
// compare gate fails (fractional; 0.15 = 15%).
const regressionTolerance = 0.15

// loadRegressionTolerance is the tighter bound on sustained-load req/s: the
// load servers run with wide-event recorders attached, and the analytics
// plane's contract is that instrumentation costs the representative workload
// less than 5% of its throughput.
const loadRegressionTolerance = 0.05

// BenchResult is one microbenchmark's measured cost.
type BenchResult struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// Baseline is the machine-readable output of `-baseline`: every numeric cell
// of every experiment table, plus ns/op for the hot-path microbenchmarks.
// The compare gate fails only on benchmark time regressions — experiment
// metrics vary with workload sizing, so their drift is reported as warnings.
type Baseline struct {
	Schema int  `json:"schema"`
	Quick  bool `json:"quick"`
	// Experiments maps experiment ID → "table/rowKey/column" → value.
	Experiments map[string]map[string]float64 `json:"experiments"`
	// Benchmarks maps microbenchmark name → measured cost.
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	// Load maps "transport/consumers/mode" → sustained-load measurements
	// (present when the baseline was built with -load).
	Load map[string]LoadPoint `json:"load,omitempty"`
}

// buildBaseline runs the selected experiments and the microbenchmark suite
// and assembles the baseline.
func buildBaseline(quick bool, ids []string) (*Baseline, error) {
	base := &Baseline{
		Schema:      baselineSchema,
		Quick:       quick,
		Experiments: make(map[string]map[string]float64),
		Benchmarks:  runMicrobenches(),
	}
	runner := experiments.Runner{QuickMode: quick}
	for _, id := range ids {
		res, err := runner.Run(id)
		if err != nil {
			return nil, fmt.Errorf("baseline: experiment %s: %w", id, err)
		}
		base.Experiments[res.ID] = flattenResult(res)
	}
	return base, nil
}

// flattenResult extracts every numeric cell of an experiment's tables, keyed
// "table/rowKey/column" (the row key is the first cell).
func flattenResult(res experiments.Result) map[string]float64 {
	out := make(map[string]float64)
	for _, tbl := range res.Tables {
		for _, row := range tbl.Rows {
			if len(row) == 0 {
				continue
			}
			for i := 1; i < len(row) && i < len(tbl.Headers); i++ {
				v, err := strconv.ParseFloat(row[i], 64)
				if err != nil {
					continue
				}
				out[tbl.Title+"/"+row[0]+"/"+tbl.Headers[i]] = v
			}
		}
	}
	return out
}

// writeBaseline writes the baseline as indented JSON.
func writeBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readBaseline loads and validates a baseline file.
func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Schema < minBaselineSchema || b.Schema > baselineSchema {
		return nil, fmt.Errorf("baseline %s: schema %d, tool expects %d..%d",
			path, b.Schema, minBaselineSchema, baselineSchema)
	}
	return &b, nil
}

// compareBaselines judges new against old. Regressions (benchmark ns/op more
// than tolerance slower) are gate failures; everything else — experiment
// metric drift, added or dropped entries — comes back as warnings.
func compareBaselines(old, new *Baseline, tolerance float64) (regressions, warnings []string) {
	for _, name := range sortedKeys(old.Benchmarks) {
		prev := old.Benchmarks[name]
		cur, ok := new.Benchmarks[name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("benchmark %s missing from new baseline", name))
			continue
		}
		if prev.NsPerOp > 0 && cur.NsPerOp > prev.NsPerOp*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"benchmark %s: %.0f ns/op vs %.0f ns/op baseline (+%.0f%%, tolerance %.0f%%)",
				name, cur.NsPerOp, prev.NsPerOp,
				100*(cur.NsPerOp/prev.NsPerOp-1), 100*tolerance))
		}
		// Allocation regressions gate too: a zero-alloc path growing any
		// allocation fails outright; non-zero paths get the tolerance plus
		// half an alloc of slack so counter jitter on tiny budgets does not
		// flap the gate.
		if float64(cur.AllocsPerOp) > float64(prev.AllocsPerOp)*(1+tolerance)+0.5 {
			regressions = append(regressions, fmt.Sprintf(
				"benchmark %s: %d allocs/op vs %d allocs/op baseline (tolerance %.0f%%)",
				name, cur.AllocsPerOp, prev.AllocsPerOp, 100*tolerance))
		}
	}
	for name := range new.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			warnings = append(warnings, fmt.Sprintf("benchmark %s new since baseline (no reference)", name))
		}
	}
	if old.Quick != new.Quick {
		warnings = append(warnings, fmt.Sprintf(
			"comparing quick=%v against quick=%v: experiment metrics are not like-for-like", new.Quick, old.Quick))
	}
	for _, id := range sortedKeys(old.Experiments) {
		prevCells := old.Experiments[id]
		curCells, ok := new.Experiments[id]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("experiment %s missing from new baseline", id))
			continue
		}
		for _, key := range sortedKeys(prevCells) {
			prev := prevCells[key]
			cur, ok := curCells[key]
			if !ok {
				warnings = append(warnings, fmt.Sprintf("experiment %s cell %q missing from new baseline", id, key))
				continue
			}
			if prev != 0 && drift(prev, cur) > tolerance {
				warnings = append(warnings, fmt.Sprintf(
					"experiment %s cell %q drifted: %v vs %v baseline", id, key, cur, prev))
			}
		}
	}
	// Load req/s gates at 5%: the load servers record wide events, so this
	// is the bound that keeps request analytics inside its overhead budget
	// on the representative workload. Everything else about a load point
	// warns — sustained throughput is machine-sensitive, and CI treats the
	// whole compare as advisory anyway (quiet local hardware is the judge).
	for _, key := range sortedKeys(old.Load) {
		prev := old.Load[key]
		cur, ok := new.Load[key]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("load point %s missing from new baseline", key))
			continue
		}
		if prev.ReqPerSec > 0 && cur.ReqPerSec < prev.ReqPerSec*(1-loadRegressionTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"load point %s throughput dropped: %.0f req/s vs %.0f req/s baseline (-%.1f%%, tolerance %.0f%%)",
				key, cur.ReqPerSec, prev.ReqPerSec,
				100*(1-cur.ReqPerSec/prev.ReqPerSec), 100*loadRegressionTolerance))
		}
		if cur.AllocsPerOp > prev.AllocsPerOp*(1+tolerance)+0.5 {
			warnings = append(warnings, fmt.Sprintf(
				"load point %s allocations grew: %.1f allocs/op vs %.1f allocs/op baseline",
				key, cur.AllocsPerOp, prev.AllocsPerOp))
		}
	}
	// E13's control-lane miss rate at 2x overload gates absolutely, not by
	// drift: the priority-lane contract is "~0% misses under overload", so
	// any new baseline where the control lane misses more than 1% of its
	// deadlines has broken admission isolation, whatever the old number was.
	if cells, ok := new.Experiments["E13"]; ok {
		const e13Key = "E13: deadline miss rate vs offered load/lanes 2.0x/control miss %"
		if miss, ok := cells[e13Key]; ok && miss > 1.0 {
			regressions = append(regressions, fmt.Sprintf(
				"experiment E13: control-lane deadline-miss rate %.2f%% at 2x overload exceeds the 1%% isolation gate", miss))
		}
	}
	// E14's alerting-plane contract gates absolutely too: every fault class
	// must reach critical within its bound, a calm world must raise nothing,
	// and the quota adapter must actually stop the control-lane misses it
	// was built to stop. Detection that is slow, noisy, or toothless is a
	// regression whatever the old baseline measured.
	if cells, ok := new.Experiments["E14"]; ok {
		const detect = "E14: time to alert by fault class (virtual time)/"
		const adapt = "E14: overload adaptation (real time)/"
		gates := []struct {
			key   string
			bound float64
			desc  string
		}{
			{detect + "partition (telemetry-freshness)/alert ticks", 10,
				"partition detection latency"},
			{detect + "registry member kills (lookup-availability)/alert ticks", 15,
				"member-kill detection latency"},
			{detect + "calm soak/transitions", 0,
				"calm-world false-positive alerts"},
			{adapt + "adapter/ctl miss % post-adapt", 1.0,
				"control-lane miss rate after the quota adapter reacted"},
		}
		for _, g := range gates {
			if v, ok := cells[g.key]; ok && v > g.bound {
				regressions = append(regressions, fmt.Sprintf(
					"experiment E14: %s %.2f exceeds the %.0f gate (%q)", g.desc, v, g.bound, g.key))
			}
		}
	}
	// E15's request-analytics contracts gate absolutely: the injected hot
	// topic must rank #1 in the cluster-merged top-k, the merged t-digest p99
	// must sit within 5% of the exact distribution, the sampled-out recorder
	// path must stay allocation-free, and the recorder's absolute cost on a
	// worst-case no-op closed loop must stay under 2µs per request (measured
	// ~0.3–0.9µs: two clock reads plus the lock-cheap Record; the bound is
	// where the path has clearly grown a lock fight or an allocation). The
	// percentage form of the overhead contract is the 5% load gate above —
	// the load servers record wide events, so load req/s is instrumented
	// req/s. Attribution that misranks, misestimates, or taxes the hot path
	// is a regression whatever the old baseline measured.
	if cells, ok := new.Experiments["E15"]; ok {
		const attr = "E15: cluster attribution from merged sketches/hot/"
		maxGates := []struct {
			key   string
			bound float64
			desc  string
		}{
			{attr + "rank", 1, "hot-topic rank in the merged top-k"},
			{attr + "p99 err %", 5, "merged-sketch p99 error vs exact"},
			{"E15: sampled-out hot path/recorder.Record (sampled out)/allocs/op", 0,
				"sampled-out recorder allocations"},
			{"E15: endpoint throughput with wide events/closed loop/overhead ns/req", 2000,
				"wide-event overhead per request (closed-loop echo)"},
		}
		for _, g := range maxGates {
			if v, ok := cells[g.key]; ok && v > g.bound {
				regressions = append(regressions, fmt.Sprintf(
					"experiment E15: %s %.2f exceeds the %.0f gate (%q)", g.desc, v, g.bound, g.key))
			}
		}
	}
	return regressions, warnings
}

func drift(prev, cur float64) float64 {
	d := (cur - prev) / prev
	if d < 0 {
		d = -d
	}
	return d
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// errRegression distinguishes a failed compare gate from an operational
// error, so main can exit non-zero with the report already printed.
type errRegression struct{ count int }

func (e errRegression) Error() string {
	return fmt.Sprintf("ndsm-bench: %d benchmark regression(s) beyond %.0f%%", e.count, 100*regressionTolerance)
}

// reportComparison prints the verdict and returns errRegression when the
// gate fails.
func reportComparison(w *os.File, oldPath string, regressions, warnings []string) error {
	for _, msg := range warnings {
		fmt.Fprintf(w, "warning: %s\n", msg)
	}
	for _, msg := range regressions {
		fmt.Fprintf(w, "REGRESSION: %s\n", msg)
	}
	if len(regressions) > 0 {
		return errRegression{count: len(regressions)}
	}
	fmt.Fprintf(w, "ndsm-bench: no regressions against %s (%d warning(s))\n", oldPath, len(warnings))
	return nil
}

// benchIDs resolves the -run selection for baseline building (default all).
func benchIDs(run string) []string {
	if run == "" {
		return experiments.IDs()
	}
	var out []string
	for _, id := range strings.Split(run, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}
