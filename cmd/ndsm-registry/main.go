// Command ndsm-registry runs a standalone centralized discovery registry
// (§3.3) over TCP, either as a single node or as one member of a replicated
// sharded registry cluster. Middleware nodes point their registry clients at
// it (single) or at the member list (cluster).
//
// Usage:
//
//	ndsm-registry [-listen 127.0.0.1:7400] [-ttl 30s] [-sweep 5s]
//	ndsm-registry -listen 127.0.0.1:7400 \
//	    -cluster 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402 [-sync 2s]
//
// In cluster mode the -listen address doubles as this member's identity and
// must appear in -cluster; every member runs the same command with its own
// -listen. Descriptions are sharded by consistent hash, replicated to RF
// owners, and repaired by gossip anti-entropy every -sync.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/discovery/cluster"
	"ndsm/internal/endpoint"
	"ndsm/internal/telemetry"
	"ndsm/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7400", "address to listen on (cluster mode: also this member's identity)")
	ttl := flag.Duration("ttl", 30*time.Second, "default advertisement lease")
	sweep := flag.Duration("sweep", 5*time.Second, "expired-entry sweep interval")
	members := flag.String("cluster", "", "comma-separated member addresses; enables replicated cluster mode")
	sync := flag.Duration("sync", 2*time.Second, "anti-entropy gossip interval (cluster mode)")
	rf := flag.Int("rf", 0, "replication factor (cluster mode; default 2, clamped to the member count)")
	publish := flag.String("publish", "", "publish this registry's telemetry reports in-band to the aggregator node at this address (so an SLO engine's freshness objective notices a dead member)")
	publishEvery := flag.Duration("publish-every", 5*time.Second, "telemetry publish interval (with -publish)")
	flag.Parse()
	if err := run(*listen, *ttl, *sweep, *members, *sync, *rf, *publish, *publishEvery); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(listen string, ttl, sweepEvery time.Duration, members string, syncEvery time.Duration, rf int, publishTo string, publishEvery time.Duration) error {
	tr := transport.NewTCP(nil)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen(listen)
	if err != nil {
		return err
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// Optional telemetry reporting: the registry describes itself to an
	// aggregator node like any other reporter, so a member that dies shows
	// up as a stale node on the aggregator's dashboard — and trips its
	// telemetry-freshness SLO — instead of failing silently.
	if publishTo != "" {
		caller, err := endpoint.NewCaller(tr, publishTo, endpoint.CallerOptions{Redial: true})
		if err != nil {
			return fmt.Errorf("telemetry caller: %w", err)
		}
		defer caller.Close() //nolint:errcheck
		pub, err := telemetry.NewPublisher(telemetry.PublisherOptions{
			Node:     listen,
			Interval: publishEvery,
			Send:     telemetry.CallerSend(caller, listen, publishTo, 0),
		})
		if err != nil {
			return fmt.Errorf("telemetry publisher: %w", err)
		}
		pub.Start()
		defer pub.Close() //nolint:errcheck
		fmt.Printf("publishing telemetry to %s every %v\n", publishTo, publishEvery)
	}

	if members != "" {
		var peers []string
		for _, m := range strings.Split(members, ",") {
			if m = strings.TrimSpace(m); m != "" {
				peers = append(peers, m)
			}
		}
		node, err := cluster.NewNode(tr, l, cluster.NodeOptions{
			Self:              listen,
			Members:           peers,
			ReplicationFactor: rf,
			DefaultTTL:        ttl,
			SyncEvery:         syncEvery,
			SweepEvery:        sweepEvery,
		})
		if err != nil {
			return err
		}
		defer node.Close() //nolint:errcheck
		fmt.Printf("ndsm-registry member %s of %d-node cluster (lease %v, gossip every %v)\n",
			listen, len(peers), ttl, syncEvery)
		sig := <-stop
		fmt.Printf("shutting down on %v\n", sig)
		return nil
	}

	// Single node: lease expiry is driven by the server's own sweep ticker —
	// a quiet registry sheds dead leases without waiting for traffic.
	srv := discovery.NewResolverServer(discovery.NewStore(nil, ttl), l, discovery.ServerOptions{
		SweepEvery: sweepEvery,
	})
	defer srv.Close() //nolint:errcheck
	fmt.Printf("ndsm-registry listening on %s (lease %v, sweep every %v)\n", srv.Addr(), ttl, sweepEvery)
	sig := <-stop
	fmt.Printf("shutting down on %v\n", sig)
	return nil
}
