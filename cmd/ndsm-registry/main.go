// Command ndsm-registry runs a standalone centralized discovery registry
// (§3.3) over TCP. Middleware nodes point their registry clients at it.
//
// Usage:
//
//	ndsm-registry [-listen 127.0.0.1:7400] [-ttl 30s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndsm/internal/discovery"
	"ndsm/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7400", "address to listen on")
	ttl := flag.Duration("ttl", 30*time.Second, "default advertisement lease")
	sweep := flag.Duration("sweep", 5*time.Second, "expired-entry sweep interval")
	flag.Parse()
	if err := run(*listen, *ttl, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(listen string, ttl, sweepEvery time.Duration) error {
	tr := transport.NewTCP(nil)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen(listen)
	if err != nil {
		return err
	}
	store := discovery.NewStore(nil, ttl)
	srv := discovery.NewServer(store, l)
	defer srv.Close() //nolint:errcheck
	fmt.Printf("ndsm-registry listening on %s (lease %v)\n", srv.Addr(), ttl)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(sweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if removed := store.Sweep(); removed > 0 {
				fmt.Printf("swept %d expired advertisements (%d live)\n", removed, store.Len())
			}
		case sig := <-stop:
			fmt.Printf("shutting down on %v\n", sig)
			return nil
		}
	}
}
