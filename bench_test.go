// Root benchmark harness: one benchmark per reproduced table/figure (F1,
// E1–E11) plus the ablations DESIGN.md calls out. cmd/ndsm-bench prints the
// full tables; these benchmarks time the hot cores of each experiment so
// `go test -bench=. -benchmem` regenerates the performance side.
package ndsm

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ndsm/internal/bibliometrics"
	"ndsm/internal/core"
	"ndsm/internal/discovery"
	"ndsm/internal/interact/mq"
	"ndsm/internal/interact/pubsub"
	"ndsm/internal/interact/rpc"
	"ndsm/internal/interact/tuplespace"
	"ndsm/internal/interop"
	"ndsm/internal/milan"
	"ndsm/internal/netmux"
	"ndsm/internal/netsim"
	"ndsm/internal/qos"
	"ndsm/internal/recovery"
	"ndsm/internal/routing"
	"ndsm/internal/scheduler"
	"ndsm/internal/svcdesc"
	"ndsm/internal/transaction"
	"ndsm/internal/transport"
	"ndsm/internal/wire"
)

// --- F1 ---

func BenchmarkFig1Render(b *testing.B) {
	series := bibliometrics.Figure1()
	for i := 0; i < b.N; i++ {
		_ = bibliometrics.Chart(series, 50)
	}
}

// --- E1/E2: discovery ---

func BenchmarkDiscoveryStoreLookup(b *testing.B) {
	store := discovery.NewStore(nil, 0)
	for i := 0; i < 200; i++ {
		d := &svcdesc.Description{
			Name:        fmt.Sprintf("svc-%d", i%20),
			Provider:    fmt.Sprintf("node-%d", i),
			Reliability: 0.9,
			PowerLevel:  1,
		}
		if err := store.Register(d); err != nil {
			b.Fatal(err)
		}
	}
	q := &svcdesc.Query{Name: "svc-7"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Lookup(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoveryCentralLookup(b *testing.B) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("registry")
	if err != nil {
		b.Fatal(err)
	}
	srv := discovery.NewServer(discovery.NewStore(nil, 0), l)
	defer srv.Close() //nolint:errcheck
	cli := discovery.NewClient(transport.NewMem(fabric), "registry")
	defer cli.Close() //nolint:errcheck
	if err := cli.Register(&svcdesc.Description{Name: "svc", Provider: "p", Reliability: 0.9, PowerLevel: 1}); err != nil {
		b.Fatal(err)
	}
	q := &svcdesc.Query{Name: "svc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Lookup(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoveryFloodLookup(b *testing.B) {
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	defer net.Close()
	ids, err := netsim.GridField(net, "n", 9, 10)
	if err != nil {
		b.Fatal(err)
	}
	var agents []*discovery.Agent
	for _, id := range ids {
		mux, err := netmux.New(net, id)
		if err != nil {
			b.Fatal(err)
		}
		defer mux.Close()
		a := discovery.NewAgent(mux, discovery.AgentConfig{
			QueryTTL: 8, CollectWindow: 30 * time.Millisecond, MaxResults: 1,
		})
		defer a.Close() //nolint:errcheck
		agents = append(agents, a)
	}
	if err := agents[len(agents)-1].Register(&svcdesc.Description{
		Name: "svc", Provider: string(ids[len(ids)-1]), Reliability: 0.9, PowerLevel: 1,
	}); err != nil {
		b.Fatal(err)
	}
	q := &svcdesc.Query{Name: "svc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agents[0].Lookup(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: QoS matching ---

func BenchmarkQoSMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var cands []*svcdesc.Description
	for i := 0; i < 100; i++ {
		cands = append(cands, &svcdesc.Description{
			Name:        "printer",
			Provider:    fmt.Sprintf("p-%d", i),
			Reliability: rng.Float64(),
			PowerLevel:  1,
			Location:    &svcdesc.Location{X: rng.Float64() * 200, Y: rng.Float64() * 200},
		})
	}
	spec := &qos.Spec{
		Query:          svcdesc.Query{Name: "printer"},
		Weights:        qos.Weights{Reliability: 0.4, Proximity: 0.6},
		Near:           &svcdesc.Location{X: 50, Y: 50},
		ProximityScale: 200,
	}
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if qos.Select(spec, cands, now) == nil {
			b.Fatal("no selection")
		}
	}
}

// --- E4: kernel request path ---

func BenchmarkKernelRequest(b *testing.B) {
	fabric := transport.NewFabric()
	registry := discovery.NewStore(nil, 0)
	sup, err := core.NewNode(core.Config{Name: "sup", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		b.Fatal(err)
	}
	defer sup.Close() //nolint:errcheck
	if err := sup.Serve(&svcdesc.Description{Name: "svc", Reliability: 0.9, PowerLevel: 1},
		func(p []byte) ([]byte, error) { return p, nil }); err != nil {
		b.Fatal(err)
	}
	con, err := core.NewNode(core.Config{Name: "con", Transport: transport.NewMem(fabric), Registry: registry})
	if err != nil {
		b.Fatal(err)
	}
	defer con.Close() //nolint:errcheck
	binding, err := con.Bind(&qos.Spec{Query: svcdesc.Query{Name: "svc"}}, core.BindOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer binding.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binding.Request(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: routing ---

func benchRouting(b *testing.B, factory func() routing.Strategy, converge int) {
	net := netsim.New(netsim.Config{Range: 12, Unlimited: true})
	defer net.Close()
	ids, err := netsim.GridField(net, "n", 16, 10)
	if err != nil {
		b.Fatal(err)
	}
	mesh, err := routing.NewMesh(net, factory)
	if err != nil {
		b.Fatal(err)
	}
	defer mesh.Close()
	if converge > 0 {
		mesh.Converge(converge)
	}
	src, dst := ids[0], ids[len(ids)-1]
	rx, err := mesh.Router(dst).Recv(dst)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mesh.Router(src).Send(src, dst, payload); err != nil {
			b.Fatal(err)
		}
		select {
		case <-rx:
		case <-time.After(10 * time.Second):
			b.Fatal("delivery timed out")
		}
	}
}

func BenchmarkRoutingFlooding(b *testing.B) {
	benchRouting(b, func() routing.Strategy { return routing.Flooding{} }, 0)
}

func BenchmarkRoutingDVHop(b *testing.B) {
	benchRouting(b, func() routing.Strategy { return routing.NewDistanceVector(routing.HopCost) }, 8)
}

func BenchmarkRoutingDVEnergy(b *testing.B) {
	benchRouting(b, func() routing.Strategy {
		return routing.NewDistanceVector(routing.EnergyCost(128, 0.05))
	}, 8)
}

func BenchmarkRoutingGeographic(b *testing.B) {
	benchRouting(b, func() routing.Strategy { return routing.Geographic{} }, 0)
}

// --- E6: MiLAN selection (ablation: exhaustive vs greedy) ---

func milanBenchSystem(nPerVar int) (*milan.System, milan.Energies, map[netsim.NodeID]netsim.Position) {
	rng := rand.New(rand.NewSource(3))
	sys := &milan.System{
		App: milan.AppSpec{
			Variables: []milan.Variable{"bp", "hr"},
			Required: map[milan.State]map[milan.Variable]float64{
				"normal": {"bp": 0.8, "hr": 0.8},
			},
		},
		Sink:    "sink",
		SinkPos: netsim.Position{},
		Range:   30,
	}
	energies := make(milan.Energies)
	positions := make(map[netsim.NodeID]netsim.Position)
	for v, variable := range []milan.Variable{"bp", "hr"} {
		for i := 0; i < nPerVar; i++ {
			id := netsim.NodeID(fmt.Sprintf("s%d-%d", v, i))
			sys.Sensors = append(sys.Sensors, milan.Sensor{
				Node:        id,
				QoS:         map[milan.Variable]float64{variable: 0.6 + rng.Float64()*0.35},
				SampleBytes: 100,
			})
			energies[id] = 1
			positions[id] = netsim.Position{X: rng.Float64() * 25, Y: rng.Float64() * 25}
		}
	}
	return sys, energies, positions
}

func BenchmarkMilanSelectExhaustive(b *testing.B) {
	sys, energies, positions := milanBenchSystem(7) // 14 sensors: 16k subsets
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (milan.Exhaustive{}).Select(sys, "normal", energies, positions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMilanSelectGreedy(b *testing.B) {
	sys, energies, positions := milanBenchSystem(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (milan.Greedy{}).Select(sys, "normal", energies, positions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMilanRound(b *testing.B) {
	sys, _, _ := milanBenchSystem(4)
	net := netsim.New(netsim.Config{Range: sys.Range, Unlimited: true})
	defer net.Close()
	if err := net.AddNodeEnergy(sys.Sink, sys.SinkPos, 1e6); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, sn := range sys.Sensors {
		if err := net.AddNodeEnergy(sn.Node, netsim.Position{X: 5 + rng.Float64()*20, Y: rng.Float64() * 20}, 10); err != nil {
			b.Fatal(err)
		}
	}
	mgr, err := milan.NewManager(sys, net, milan.Greedy{}, "normal")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mgr.Round(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: interaction styles ---

func BenchmarkInteractRPC(b *testing.B) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("svc")
	if err != nil {
		b.Fatal(err)
	}
	srv := rpc.NewServer(l)
	defer srv.Close() //nolint:errcheck
	srv.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	cli, err := rpc.Dial(transport.NewMem(fabric), "svc", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call("echo", payload, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInteractMQ(b *testing.B) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("broker")
	if err != nil {
		b.Fatal(err)
	}
	br := mq.NewBroker(l, 0, nil)
	defer br.Close() //nolint:errcheck
	cli, err := mq.Dial(transport.NewMem(fabric), "broker")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Push("q", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := cli.Pop("q", time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInteractPubSub(b *testing.B) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("bus")
	if err != nil {
		b.Fatal(err)
	}
	br := pubsub.NewBroker(l)
	defer br.Close() //nolint:errcheck
	cli, err := pubsub.Dial(transport.NewMem(fabric), "bus")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	events, err := cli.Subscribe("t")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Publish("t", payload); err != nil {
			b.Fatal(err)
		}
		<-events
	}
}

func BenchmarkInteractTupleSpace(b *testing.B) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("space")
	if err != nil {
		b.Fatal(err)
	}
	srv := tuplespace.NewServer(tuplespace.NewSpace(nil), l)
	defer srv.Close() //nolint:errcheck
	cli, err := tuplespace.Dial(transport.NewMem(fabric), "space")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Out(tuplespace.Tuple{"k", "v"}); err != nil {
			b.Fatal(err)
		}
		if _, err := cli.In(tuplespace.Tuple{"k", "*"}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleSpaceLocal(b *testing.B) {
	s := tuplespace.NewSpace(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Out(tuplespace.Tuple{"k", "v"})
		if _, ok := s.InP(tuplespace.Tuple{"k", "*"}); !ok {
			b.Fatal("lost tuple")
		}
	}
}

// --- E8: scheduling ---

func BenchmarkSchedulerQueueEDF(b *testing.B) {
	q := scheduler.NewQueue(scheduler.EDF)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(scheduler.Item{Deadline: now.Add(time.Duration(i%100) * time.Millisecond)})
		if i%2 == 1 {
			if _, err := q.Pop(); err != nil {
				b.Fatal(err)
			}
			if _, err := q.Pop(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTokenBucket(b *testing.B) {
	bucket := scheduler.NewTokenBucket(1e9, 1e9, time.Now())
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Microsecond)
		bucket.Take(100, now)
	}
}

// --- E9: recovery (ablation: sync policy) ---

func BenchmarkRecoveryWALAppend(b *testing.B) {
	w, err := recovery.OpenWAL(b.TempDir()+"/wal.log", recovery.WALOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(recovery.Record{Type: recovery.RecordOp, Data: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryWALAppendSync(b *testing.B) {
	w, err := recovery.OpenWAL(b.TempDir()+"/wal.log", recovery.WALOptions{SyncEveryAppend: true})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close() //nolint:errcheck
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(recovery.Record{Type: recovery.RecordOp, Data: payload}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryReplay(b *testing.B) {
	w, err := recovery.OpenWAL(b.TempDir()+"/wal.log", recovery.WALOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close() //nolint:errcheck
	payload := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		if _, err := w.Append(recovery.Record{Type: recovery.RecordOp, Data: payload}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := w.Replay(func(recovery.Record) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != 1000 {
			b.Fatalf("replayed %d", count)
		}
	}
}

// --- E10: codecs and bridging ---

func benchMessage() *wire.Message {
	return &wire.Message{
		ID: 42, Kind: wire.KindRequest, Src: "a", Dst: "b",
		Topic:   "sensors/bp",
		Headers: map[string]string{"trace": "t1"},
		Payload: []byte("42|120.2500|mmHg"),
	}
}

func benchCodecEncode(b *testing.B, c wire.Codec) {
	m := benchMessage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCodecDecode(b *testing.B, c wire.Codec) {
	m := benchMessage()
	data, err := c.Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecBinaryEncode(b *testing.B) { benchCodecEncode(b, wire.Binary{}) }
func BenchmarkCodecBinaryDecode(b *testing.B) { benchCodecDecode(b, wire.Binary{}) }
func BenchmarkCodecJSONEncode(b *testing.B)   { benchCodecEncode(b, wire.JSON{}) }
func BenchmarkCodecJSONDecode(b *testing.B)   { benchCodecDecode(b, wire.JSON{}) }
func BenchmarkCodecXMLEncode(b *testing.B)    { benchCodecEncode(b, wire.XML{}) }
func BenchmarkCodecXMLDecode(b *testing.B)    { benchCodecDecode(b, wire.XML{}) }

func BenchmarkTranscodeBinaryToXML(b *testing.B) {
	data, err := wire.Binary{}.Encode(benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interop.Transcode(data, wire.Binary{}, wire.XML{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- transaction link ---

func BenchmarkLinkReliableSend(b *testing.B) {
	fabric := transport.NewFabric()
	tr := transport.NewMem(fabric)
	defer tr.Close() //nolint:errcheck
	l, err := tr.Listen("peer")
	if err != nil {
		b.Fatal(err)
	}
	dialed, err := tr.Dial("peer")
	if err != nil {
		b.Fatal(err)
	}
	accepted, err := l.Accept()
	if err != nil {
		b.Fatal(err)
	}
	la := transaction.NewLink(dialed, transaction.LinkConfig{})
	lb := transaction.NewLink(accepted, transaction.LinkConfig{})
	defer la.Close() //nolint:errcheck
	defer lb.Close() //nolint:errcheck
	go func() {
		for {
			if _, err := lb.Recv(); err != nil {
				return
			}
		}
	}()
	m := &wire.Message{Kind: wire.KindData, Src: "a", Payload: make([]byte, 64)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := la.SendReliable(m); err != nil {
			b.Fatal(err)
		}
	}
}
