// Package sensorsim is the public API of the synthetic sensor substrate:
// deterministic, seedable signal generators (blood pressure, heart rate,
// temperature, MEMS accelerometer) standing in for the physical sensors the
// paper's scenarios assume.
package sensorsim

import "ndsm/internal/sensors"

// Reading is one sensor sample; Generator produces a waveform of them;
// Classifier labels readings against a normal band.
type (
	Reading    = sensors.Reading
	Generator  = sensors.Generator
	Classifier = sensors.Classifier
)

// Constructors and codecs.
var (
	// NewGenerator builds a custom waveform generator.
	NewGenerator = sensors.NewGenerator
	// BloodPressure, HeartRate, Temperature, and Accelerometer are the
	// preset generators.
	BloodPressure = sensors.BloodPressure
	HeartRate     = sensors.HeartRate
	Temperature   = sensors.Temperature
	Accelerometer = sensors.Accelerometer
	// DecodeReading parses a Reading.Encode payload.
	DecodeReading = sensors.DecodeReading
)
