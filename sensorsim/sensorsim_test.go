package sensorsim_test

import (
	"testing"

	"ndsm/sensorsim"
)

// TestGeneratorsDeterministic smokes every preset generator and pins the
// determinism contract: the same seed yields the same waveform.
func TestGeneratorsDeterministic(t *testing.T) {
	presets := map[string]func(int64) *sensorsim.Generator{
		"blood-pressure": sensorsim.BloodPressure,
		"heart-rate":     sensorsim.HeartRate,
		"temperature":    sensorsim.Temperature,
		"accelerometer":  sensorsim.Accelerometer,
	}
	for name, mk := range presets {
		a, b := mk(7), mk(7)
		for i := 0; i < 5; i++ {
			ra, rb := a.Next(), b.Next()
			if ra.Value != rb.Value || ra.Unit != rb.Unit {
				t.Fatalf("%s: same seed diverged at sample %d: %v vs %v", name, i, ra, rb)
			}
		}
		if c := mk(8); c.Next().Value == mk(7).Next().Value {
			t.Logf("%s: seeds 7 and 8 coincide on first sample (allowed, but suspicious)", name)
		}
	}
}

// TestReadingRoundTrip pins the Encode/DecodeReading wire format.
func TestReadingRoundTrip(t *testing.T) {
	r := sensorsim.BloodPressure(1).Next()
	got, err := sensorsim.DecodeReading(r.Encode())
	if err != nil {
		t.Fatalf("DecodeReading: %v", err)
	}
	// Encode quantises the value to 4 decimal places, so compare within that.
	if diff := got.Value - r.Value; diff > 1e-4 || diff < -1e-4 || got.Unit != r.Unit || got.Seq != r.Seq {
		t.Fatalf("round trip changed reading: %v -> %v", r, got)
	}
	if _, err := sensorsim.DecodeReading([]byte("not a reading")); err == nil {
		t.Fatal("DecodeReading should reject garbage")
	}
}

// TestClassifier smokes the normal-band classifier.
func TestClassifier(t *testing.T) {
	c := sensorsim.Classifier{Low: 90, High: 140}
	cases := map[float64]string{50: "low", 120: "normal", 200: "high"}
	for v, want := range cases {
		if got := c.Classify(sensorsim.Reading{Value: v}); got != want {
			t.Fatalf("Classify(%v) = %q, want %q", v, got, want)
		}
	}
}
